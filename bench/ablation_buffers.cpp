// Ablation: buffer sizing and where the system blocks.
//
//   1. Channel (TCP) buffer depth: deeper buffers make blocking rarer and
//      later (the Section 4.4 "late indicator" effect); shallower buffers
//      sharpen the signal but cost smoothing.
//   2. Merger model: eager/unbounded (the paper's implementation, blocks
//      at the splitter) vs bounded reorder queues (block at the merger) —
//      the alternative the paper notes would be "equally correct".
//
// Scenario: 4 PEs, 1,000-multiply tuples, one PE 10x loaded (static);
// LB-adaptive. Reported: mean throughput and the share of blocking time
// observed on the loaded connection (signal concentration).
#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

struct Result {
  double mean_tput_mtps = 0.0;
  double loaded_block_share = 0.0;
  Weight final_w0 = 0;
};

Result run(std::size_t channel_buf, std::size_t merge_buf,
           double duration_s) {
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = duration_s;
  spec.loads.push_back({{0}, 10.0, -1.0});

  RegionConfig cfg = build_region_config(spec);
  cfg.send_buffer = channel_buf;
  cfg.recv_buffer = channel_buf;
  cfg.merge_buffer = merge_buf;
  Region region(cfg, make_policy(PolicyKind::kLbAdaptive, spec),
                build_load_profile(spec), spec.hosts);

  // Signal concentration is an *early* property: measure the loaded
  // connection's share of blocking over the first 10 periods, before the
  // controller has reshaped the weights.
  Result result;
  int periods = 0;
  region.set_sample_hook([&](Region& r) {
    if (++periods != 10) return;
    const std::vector<DurationNs> blocked = r.counters().sample();
    DurationNs total = 0;
    for (DurationNs b : blocked) total += b;
    result.loaded_block_share =
        total > 0
            ? static_cast<double>(blocked[0]) / static_cast<double>(total)
            : 0.0;
  });
  region.run_for(spec.scale.from_paper_seconds(duration_s));

  const double virtual_s =
      duration_s * static_cast<double>(spec.scale.paper_second) / 1e9;
  result.mean_tput_mtps =
      static_cast<double>(region.emitted()) / virtual_s / 1e6;
  result.final_w0 = region.policy().weights()[0];
  return result;
}

}  // namespace

int main() {
  const double duration_s = 150 * bench::duration_scale();
  CsvWriter csv(bench::results_dir() + "/ablation_buffers.csv");
  csv.header({"channel_buffer", "merger", "mean_tput_mtps",
              "loaded_block_share", "final_w0"});

  bench::print_header(
      "Ablation: channel buffer depth (eager merger; 4 PEs, one 10x "
      "loaded, LB-adaptive)");
  std::printf("  %-10s %16s %22s %10s\n", "buffer", "mean tput (M/s)",
              "block share on loaded", "final w0");
  for (std::size_t buf : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const Result r = run(buf, 0, duration_s);
    std::printf("  %-10zu %16.3f %22.2f %10d\n", buf, r.mean_tput_mtps,
                r.loaded_block_share, r.final_w0);
    csv.row({std::to_string(buf), "eager",
             CsvWriter::format(r.mean_tput_mtps),
             CsvWriter::format(r.loaded_block_share),
             std::to_string(r.final_w0)});
  }

  bench::print_header(
      "Ablation: merger model (channel buffer 32) — blocking location "
      "changes the signal");
  std::printf("  %-18s %16s %22s %10s\n", "merger", "mean tput (M/s)",
              "block share on loaded", "final w0");
  for (std::size_t merge : {std::size_t{0}, std::size_t{256},
                            std::size_t{64}, std::size_t{16}}) {
    const Result r = run(32, merge, duration_s);
    const std::string name =
        merge == 0 ? "eager (paper)" : "bounded(" + std::to_string(merge) + ")";
    std::printf("  %-18s %16.3f %22.2f %10d\n", name.c_str(),
                r.mean_tput_mtps, r.loaded_block_share, r.final_w0);
    csv.row({name, std::to_string(merge),
             CsvWriter::format(r.mean_tput_mtps),
             CsvWriter::format(r.loaded_block_share),
             std::to_string(r.final_w0)});
  }
  std::printf(
      "\n  reading: the eager merger concentrates blocking on the loaded "
      "connection (high share -> strong signal -> low final w0); tightly "
      "bounded mergers smear it.\n");
  std::printf("  CSV: %s/ablation_buffers.csv\n",
              bench::results_dir().c_str());
  return 0;
}
