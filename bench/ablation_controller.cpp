// Ablation: the controller design choices DESIGN.md calls out.
//
//   1. Exploration decay factor (1.0 = LB-static ... 0.5 = aggressive):
//      recovery speed after load removal vs stability under static load.
//   2. Zero-observation sample weight: the paper records data only for
//      connections that blocked; we optionally also record "no blocking
//      at weight w" with a small weight.
//   3. Per-update step bounds (m_j/M_j): unconstrained vs incremental.
//
// Scenario for all three: 4 PEs, 1,000-multiply tuples, two PEs 10x
// loaded until t/4. Reported: final throughput (recovery quality) and
// time-averaged throughput (overall cost of the choice).
#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

struct AblationResult {
  double mean_tput_mtps = 0.0;
  double final_tput_mtps = 0.0;
  WeightVector final_weights;
};

AblationResult run(const ControllerConfig& cc, double duration_s) {
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = duration_s;
  spec.controller = cc;
  spec.loads.push_back({{0, 1}, 10.0, duration_s / 4.0});

  // Force the adaptive path even when decay == 1.0 (that IS the ablation).
  auto policy = std::make_unique<LoadBalancingPolicy>(spec.workers, cc);
  Region region(build_region_config(spec), std::move(policy),
                build_load_profile(spec), spec.hosts);

  AblationResult result;
  std::vector<std::uint64_t> per_period;
  region.set_sample_hook(
      [&](Region& r) { per_period.push_back(r.emitted_last_period()); });
  region.run_for(spec.scale.from_paper_seconds(duration_s));

  const double period_s =
      static_cast<double>(spec.scale.paper_second) / 1e9;
  double total = 0;
  for (std::uint64_t v : per_period) total += static_cast<double>(v);
  result.mean_tput_mtps =
      total / (static_cast<double>(per_period.size()) * period_s) / 1e6;
  double tail = 0;
  const std::size_t tail_n = per_period.size() / 10;
  for (std::size_t i = per_period.size() - tail_n; i < per_period.size();
       ++i) {
    tail += static_cast<double>(per_period[i]);
  }
  result.final_tput_mtps =
      tail / (static_cast<double>(tail_n) * period_s) / 1e6;
  result.final_weights = region.policy().weights();
  return result;
}

}  // namespace

int main() {
  const double duration_s = 240 * bench::duration_scale();
  CsvWriter csv(bench::results_dir() + "/ablation_controller.csv");
  csv.header({"knob", "value", "mean_tput_mtps", "final_tput_mtps"});

  bench::print_header(
      "Ablation 1: exploration decay factor (4 PEs, 10x load on half "
      "until t/4)");
  std::printf("  %-8s %18s %18s\n", "decay", "mean tput (M/s)",
              "final tput (M/s)");
  for (double decay : {1.0, 0.95, 0.9, 0.8, 0.5}) {
    ControllerConfig cc;
    cc.decay_factor = decay;
    const AblationResult r = run(cc, duration_s);
    std::printf("  %-8.2f %18.3f %18.3f\n", decay, r.mean_tput_mtps,
                r.final_tput_mtps);
    csv.row({"decay", CsvWriter::format(decay),
             CsvWriter::format(r.mean_tput_mtps),
             CsvWriter::format(r.final_tput_mtps)});
  }

  bench::print_header("Ablation 2: zero-observation sample weight");
  std::printf("  %-8s %18s %18s\n", "weight", "mean tput (M/s)",
              "final tput (M/s)");
  for (double zw : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    ControllerConfig cc;
    cc.zero_sample_weight = zw;
    const AblationResult r = run(cc, duration_s);
    std::printf("  %-8.2f %18.3f %18.3f\n", zw, r.mean_tput_mtps,
                r.final_tput_mtps);
    csv.row({"zero_weight", CsvWriter::format(zw),
             CsvWriter::format(r.mean_tput_mtps),
             CsvWriter::format(r.final_tput_mtps)});
  }

  bench::print_header(
      "Ablation 3: per-update step bounds (m_j/M_j around current "
      "weights)");
  std::printf("  %-8s %18s %18s\n", "step", "mean tput (M/s)",
              "final tput (M/s)");
  for (Weight step : {kWeightUnits, 200, 100, 50, 20}) {
    ControllerConfig cc;
    cc.max_step_up = step;
    cc.max_step_down = step;
    const AblationResult r = run(cc, duration_s);
    std::printf("  %-8d %18.3f %18.3f\n", step, r.mean_tput_mtps,
                r.final_tput_mtps);
    csv.row({"step_bound", std::to_string(step),
             CsvWriter::format(r.mean_tput_mtps),
             CsvWriter::format(r.final_tput_mtps)});
  }
  std::printf("\n  CSV: %s/ablation_controller.csv\n",
              bench::results_dir().c_str());
  return 0;
}
