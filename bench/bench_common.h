// Shared helpers for the figure-reproduction benches: consistent table
// printing, normalized-to-Oracle* reporting (the paper's presentation),
// CSV dumping, and a global duration scale for quick smoke runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/harness.h"
#include "sim/trace.h"

namespace slb::bench {

/// Multiplies every experiment duration; set SLB_BENCH_SCALE=0.25 for a
/// fast smoke pass. Default 1.0.
inline double duration_scale() {
  if (const char* env = std::getenv("SLB_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

/// Directory for CSV traces (created if missing). Default ./bench_results.
inline std::string results_dir() {
  const char* env = std::getenv("SLB_BENCH_RESULTS");
  const std::string dir = env != nullptr ? env : "bench_results";
  const std::string cmd = "mkdir -p '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) return ".";
  return dir;
}

inline void print_header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

/// Prints the paper's standard comparison row set for one PE count:
/// execution time normalized to Oracle* plus absolute final throughput.
inline void print_alternatives_table(
    const std::vector<sim::ExperimentResult>& results) {
  const double oracle_time = results.front().exec_time_paper_s;
  std::printf("  %-12s %14s %14s %16s %10s\n", "policy", "exec(paper s)",
              "norm vs Orc*", "final tput(M/s)", "done");
  for (const sim::ExperimentResult& r : results) {
    std::printf("  %-12s %14.1f %14.2f %16.3f %10s\n",
                sim::policy_name(r.kind).c_str(), r.exec_time_paper_s,
                r.exec_time_paper_s / oracle_time, r.final_throughput_mtps,
                r.completed ? "yes" : "DEADLINE");
  }
}

}  // namespace slb::bench
