// Extension study: worker failure, degraded operation, and recovery.
//
// The paper assumes workers stay up; this bench measures what its
// mechanism does when one does not. A 4-PE region loses one worker a
// third of the way through the run and gets a stateless replacement at
// two thirds:
//
//   * LB-adaptive reacts through the same machinery it uses for load —
//     the dead connection is pinned to weight 0 and the freed weight is
//     redistributed over survivors; on recovery, geometric step-up
//     probing re-admits the connection without trusting it blindly.
//   * RR keeps naming the dead connection; the splitter's transport
//     failover re-routes those picks, so RR survives but keeps paying a
//     scan per routed tuple and never rebalances the merge gating.
//
// Reported: a per-paper-second throughput timeline around the fault
// window (the dip and the climb back), plus totals: emitted, tuples lost
// with the crash (= merger gaps), and transport failovers.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

struct FaultRun {
  std::vector<std::uint64_t> per_second;  // emitted per paper second
  std::uint64_t emitted = 0;
  std::uint64_t lost = 0;
  std::uint64_t gaps = 0;
  std::uint64_t failovers = 0;
  bool overload_declared = false;
  WeightVector mid_crash_weights;  // snapshot halfway through the outage
  WeightVector final_weights;
};

FaultRun run(PolicyKind kind, double duration_s, double crash_s,
             double recover_s, bool safe_mode_fallback = false) {
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = duration_s;
  if (safe_mode_fallback) {
    // Overload-protected variant (DESIGN.md §7): the closed-loop source
    // keeps this region saturated, so the detector declares overload and
    // a crash then snaps the survivors to an even WRR split instead of
    // re-optimizing against saturated (gradient-free) rate functions.
    spec.controller.enable_overload_protection = true;
    spec.controller.safe_mode_on_overload_fault = true;
  }
  spec.faults.push_back({FaultKind::kWorkerCrash, 1, crash_s, 0.0});
  spec.faults.push_back({FaultKind::kWorkerRecover, 1, recover_s, 0.0});

  auto region = make_region(kind, spec);
  FaultRun out;
  const std::size_t mid_crash_sample =
      static_cast<std::size_t>((crash_s + recover_s) / 2.0);
  region->set_sample_hook([&out, mid_crash_sample](Region& r) {
    out.per_second.push_back(r.emitted_last_period());
    out.overload_declared =
        out.overload_declared || r.policy().overload_state().overloaded;
    if (out.per_second.size() == mid_crash_sample) {
      out.mid_crash_weights = r.policy().weights();
    }
  });
  region->run_for(spec.scale.from_paper_seconds(duration_s));
  out.emitted = region->emitted();
  out.lost = region->lost_tuples();
  out.gaps = region->merger().gaps();
  out.failovers = region->splitter().failovers();
  out.final_weights = region->policy().weights();
  return out;
}

void print_timeline(const char* name, const FaultRun& r, double crash_s,
                    double recover_s) {
  // Down-sample the timeline to ~30 buckets so the dip is readable.
  const std::size_t n = r.per_second.size();
  const std::size_t bucket = n > 30 ? n / 30 : 1;
  std::uint64_t peak = 1;
  for (std::uint64_t v : r.per_second) peak = std::max(peak, v);
  std::printf("  %s throughput timeline (each row ~%zu paper s, # = "
              "relative tput; crash at %.0fs, recover at %.0fs):\n",
              name, bucket, crash_s, recover_s);
  for (std::size_t i = 0; i < n; i += bucket) {
    std::uint64_t sum = 0;
    std::size_t count = 0;
    for (std::size_t k = i; k < std::min(i + bucket, n); ++k, ++count) {
      sum += r.per_second[k];
    }
    const double mean = static_cast<double>(sum) /
                        static_cast<double>(count == 0 ? 1 : count);
    const int bars = static_cast<int>(
        40.0 * mean / static_cast<double>(peak) + 0.5);
    std::printf("    t=%4zus |%.*s\n", i, bars,
                "########################################");
  }
}

}  // namespace

int main() {
  const double duration_s = 120 * bench::duration_scale();
  const double crash_s = duration_s / 3.0;
  const double recover_s = 2.0 * duration_s / 3.0;

  bench::print_header(
      "Extension: worker failure and recovery (4 PEs, PE 1 down for the "
      "middle third)");
  CsvWriter csv(bench::results_dir() + "/ext_failure.csv");
  csv.header({"policy", "emitted", "lost", "gaps", "failovers", "w0", "w1",
              "w2", "w3"});

  struct Alt {
    const char* name;
    PolicyKind kind;
    bool safe_mode_fallback;
  };
  const Alt alts[] = {
      {"LB-adaptive", PolicyKind::kLbAdaptive, false},
      {"RR", PolicyKind::kRoundRobin, false},
      // Crash-during-overload variant: protection declares saturation on
      // this closed-loop source, so the fault falls back to an even split
      // over the survivors (weights pinned ~333 each while PE 1 is down).
      {"LB+safe-mode", PolicyKind::kLbAdaptive, true},
  };

  std::printf("  %-12s %12s %8s %8s %10s %24s\n", "policy", "emitted",
              "lost", "gaps", "failovers", "final weights");
  std::vector<FaultRun> runs;
  for (const Alt& alt : alts) {
    FaultRun r = run(alt.kind, duration_s, crash_s, recover_s,
                     alt.safe_mode_fallback);
    std::printf("  %-12s %12llu %8llu %8llu %10llu      %4d %4d %4d %4d\n",
                alt.name,
                static_cast<unsigned long long>(r.emitted),
                static_cast<unsigned long long>(r.lost),
                static_cast<unsigned long long>(r.gaps),
                static_cast<unsigned long long>(r.failovers),
                r.final_weights[0], r.final_weights[1], r.final_weights[2],
                r.final_weights[3]);
    csv.row({std::string(alt.name), std::to_string(r.emitted),
             std::to_string(r.lost), std::to_string(r.gaps),
             std::to_string(r.failovers),
             std::to_string(r.final_weights[0]),
             std::to_string(r.final_weights[1]),
             std::to_string(r.final_weights[2]),
             std::to_string(r.final_weights[3])});
    runs.push_back(std::move(r));
  }
  std::printf("\n");
  print_timeline("LB-adaptive", runs[0], crash_s, recover_s);
  std::printf("\n  Every lost tuple is accounted for as a merger gap "
              "(ordered output stays a clean prefix-with-gaps):\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::printf("    %-12s lost=%llu gaps=%llu\n", alts[i].name,
                static_cast<unsigned long long>(runs[i].lost),
                static_cast<unsigned long long>(runs[i].gaps));
  }
  std::printf("\n  Crash-during-overload fallback (DESIGN.md §7): mid-"
              "outage weights\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const WeightVector& w = runs[i].mid_crash_weights;
    if (w.size() < 4) continue;
    const bool fell_back =
        alts[i].safe_mode_fallback && runs[i].overload_declared;
    std::printf("    %-12s declared=%-3s [%4d %4d %4d %4d]%s\n",
                alts[i].name, runs[i].overload_declared ? "yes" : "no",
                w[0], w[1], w[2], w[3],
                fell_back ? "  <- even split over survivors" : "");
  }
  return 0;
}
