// Extension study: end-to-end latency — the metric the paper's
// introduction motivates ("low latency, high throughput") but its
// evaluation never reports.
//
// Open-loop source at a fixed offered rate (~65 % of the *balanced*
// region capacity), 4 PEs with one 10x-loaded worker. Under round-robin
// the loaded worker gates the region below the offered rate: the source
// backlog grows without bound and latency diverges. The blocking-rate
// balancer sheds the loaded worker, sustains the offered rate, and keeps
// the latency distribution tight. Oracle* bounds what is achievable.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

struct Row {
  double p50_us = 0;
  double p99_us = 0;
  double max_ms = 0;
  std::uint64_t backlog = 0;
  std::uint64_t delivered = 0;
};

Row run(PolicyKind kind, double duration_paper_s) {
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 1000;  // 10 us tuples
  spec.duration_paper_s = duration_paper_s;
  spec.loads.push_back({{0}, 10.0, -1.0});

  RegionConfig cfg = build_region_config(spec);
  cfg.source_interval = micros(5);  // 200K offered vs ~310K balanced cap
  Region region(cfg, make_policy(kind, spec), build_load_profile(spec),
                spec.hosts);
  region.run_for(spec.scale.from_paper_seconds(duration_paper_s));

  Row row;
  row.p50_us = region.latency_quantile(0.5) / 1e3;
  row.p99_us = region.latency_quantile(0.99) / 1e3;
  row.max_ms = region.latency().max() / 1e6;
  row.backlog = region.splitter().source_backlog(region.now());
  row.delivered = region.emitted();
  return row;
}

}  // namespace

int main() {
  const double duration_s = 150 * bench::duration_scale();
  bench::print_header(
      "Extension: end-to-end latency at fixed offered load (4 PEs, one "
      "10x loaded, open-loop source at ~65% of balanced capacity)");
  CsvWriter csv(bench::results_dir() + "/ext_latency.csv");
  csv.header({"policy", "p50_us", "p99_us", "max_ms", "source_backlog",
              "delivered"});

  std::printf("  %-12s %10s %10s %10s %14s %12s\n", "policy", "p50(us)",
              "p99(us)", "max(ms)", "src backlog", "delivered");
  for (PolicyKind kind : {PolicyKind::kRoundRobin, PolicyKind::kLbAdaptive,
                          PolicyKind::kOracle}) {
    const Row row = run(kind, duration_s);
    std::printf("  %-12s %10.1f %10.1f %10.2f %14llu %12llu\n",
                policy_name(kind).c_str(), row.p50_us, row.p99_us,
                row.max_ms, static_cast<unsigned long long>(row.backlog),
                static_cast<unsigned long long>(row.delivered));
    csv.row({policy_name(kind), CsvWriter::format(row.p50_us),
             CsvWriter::format(row.p99_us), CsvWriter::format(row.max_ms),
             std::to_string(row.backlog), std::to_string(row.delivered)});
  }
  std::printf(
      "\n  reading: an unsustainable mix is a *latency* catastrophe long "
      "before it reads as a throughput number — RR's source backlog grows "
      "without bound while LB-adaptive holds the offered rate with tail "
      "latencies near Oracle*'s.\n");
  std::printf("  CSV: %s/ext_latency.csv\n", bench::results_dir().c_str());
  return 0;
}
