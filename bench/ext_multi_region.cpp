// Extension study: cluster-wide behavior from purely local controllers
// (the paper's Section 8 future work).
//
// Two applications share two 4-thread hosts. App A (the measured one)
// has 4 workers split across both hosts. App B runs 4 workers on host 0
// only and bursts 100x-heavy tuples during the middle third of the run.
//
// Compared: app A under RR vs LB-adaptive, with and without the
// co-tenant burst. Reported per phase: app A throughput, plus A's weight
// split across hosts over time.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "sim/shared_host.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

RegionConfig region_config(int workers, DurationNs base_cost) {
  RegionConfig cfg;
  cfg.workers = workers;
  cfg.base_cost = base_cost;
  cfg.sample_period = millis(10);
  cfg.send_buffer = 32;
  cfg.recv_buffer = 32;
  return cfg;
}

struct PhaseStats {
  double before = 0;  // tuples/s while co-tenant quiet (first third)
  double during = 0;  // tuples/s during the burst (middle third)
  double after = 0;   // tuples/s after recovery (last third)
};

PhaseStats run(bool lb, bool burst, double total_paper_s, CsvWriter* csv) {
  Simulator sim;
  SharedHostSet hosts({{1.0, 4}, {1.0, 4}});

  std::unique_ptr<SplitPolicy> policy;
  if (lb) {
    policy = std::make_unique<LoadBalancingPolicy>(4, ControllerConfig{});
  } else {
    policy = std::make_unique<RoundRobinPolicy>(4);
  }
  Region app_a(region_config(4, micros(10)), std::move(policy),
               LoadProfile{}, HostModel{}, &sim,
               SharedPlacement{&hosts, {0, 0, 1, 1}});

  // App B is *open loop*: its source produces 20K tuples/s regardless of
  // cost. Quiet phases (2 us tuples) leave host 0 almost idle; the burst
  // (200 us tuples) demands 4 fully-busy workers on host 0.
  LoadProfile b_load(4);
  const TimeNs third = millis(10) * static_cast<TimeNs>(total_paper_s / 3);
  if (burst) {
    for (int w = 0; w < 4; ++w) {
      b_load.add_step(w, third, 100.0);
      b_load.add_step(w, 2 * third, 1.0);
    }
  }
  RegionConfig b_cfg = region_config(4, micros(2));
  b_cfg.source_interval = micros(50);  // 20K tuples/s offered load
  Region app_b(b_cfg, std::make_unique<RoundRobinPolicy>(4),
               std::move(b_load), HostModel{}, &sim,
               SharedPlacement{&hosts, {0, 0, 0, 0}});

  app_a.start();
  app_b.start();

  std::uint64_t marks[4] = {0, 0, 0, 0};
  for (int phase = 1; phase <= 3; ++phase) {
    sim.run_until(third * phase);
    marks[phase] = app_a.emitted();
    if (csv != nullptr) {
      const WeightVector& w = app_a.policy().weights();
      csv->row({lb ? "LB" : "RR", burst ? "burst" : "quiet",
                std::to_string(phase), std::to_string(w[0] + w[1]),
                std::to_string(w[2] + w[3]),
                std::to_string(marks[phase] - marks[phase - 1])});
    }
  }
  const double third_s = static_cast<double>(third) / 1e9;
  return PhaseStats{
      static_cast<double>(marks[1] - marks[0]) / third_s,
      static_cast<double>(marks[2] - marks[1]) / third_s,
      static_cast<double>(marks[3] - marks[2]) / third_s,
  };
}

}  // namespace

int main() {
  const double total_paper_s = 300 * bench::duration_scale();
  CsvWriter csv(bench::results_dir() + "/ext_multi_region.csv");
  csv.header({"policy", "cotenant", "phase", "a_weight_host0",
              "a_weight_host1", "a_emitted_in_phase"});

  bench::print_header(
      "Extension: two applications sharing hosts (Section 8 future "
      "work). App B bursts 100x on host 0 during the middle third.");
  std::printf("  %-14s %16s %16s %16s\n", "app A policy",
              "tput before (K/s)", "during burst", "after");
  for (const bool burst : {true}) {
    for (const bool lb : {false, true}) {
      const PhaseStats s = run(lb, burst, total_paper_s, &csv);
      std::printf("  %-14s %16.1f %16.1f %16.1f\n",
                  lb ? "LB-adaptive" : "RR", s.before / 1e3, s.during / 1e3,
                  s.after / 1e3);
    }
  }
  const PhaseStats baseline = run(true, false, total_paper_s, nullptr);
  std::printf("  %-14s %16.1f %16.1f %16.1f   (no co-tenant burst)\n",
              "LB, quiet B", baseline.before / 1e3, baseline.during / 1e3,
              baseline.after / 1e3);
  std::printf(
      "\n  reading: under RR, app A is dragged to its host-0 workers' "
      "contended speed for the whole burst; LB-adaptive shifts to host 1 "
      "mid-burst and returns afterward — cluster-level adaptation from "
      "purely local blocking-rate control.\n");
  std::printf("  CSV: %s/ext_multi_region.csv\n",
              bench::results_dir().c_str());
  return 0;
}
