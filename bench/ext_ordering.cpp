// Extension study: what the ordered merge costs, and which signals work
// where.
//
// The paper's whole design exists because sequential semantics make
// per-connection throughput uninformative (Section 4.3). Its Section 4.1
// footnote mentions regions that end without merges (parallel sinks).
// This bench quantifies both halves on the same workload:
//
//   4 PEs, 1,000-multiply tuples, two PEs permanently 10x loaded;
//   {ordered, unordered} x {RR, TP-balance, LB-adaptive}.
//
// Expected: in the unordered region, throughput balancing suffices and
// ordering costs nothing to LB; in the ordered region TP-balance is blind
// (deliveries mirror its own weights) and only the blocking-rate model
// recovers the capacity split.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

struct Row {
  std::uint64_t emitted = 0;
  WeightVector final_weights;
};

Row run(bool ordered, std::size_t merge_buffer,
        std::unique_ptr<SplitPolicy> policy, double duration_s) {
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 1000;
  spec.loads.push_back({{0, 1}, 10.0, -1.0});
  RegionConfig cfg = build_region_config(spec);
  cfg.ordered = ordered;
  cfg.merge_buffer = merge_buffer;
  Region region(cfg, std::move(policy), build_load_profile(spec),
                spec.hosts);
  region.run_for(spec.scale.from_paper_seconds(duration_s));
  return Row{region.emitted(), region.policy().weights()};
}

}  // namespace

int main() {
  const double duration_s = 150 * bench::duration_scale();
  bench::print_header(
      "Extension: ordered merge vs parallel sinks (4 PEs, half 10x "
      "loaded)");
  CsvWriter csv(bench::results_dir() + "/ext_ordering.csv");
  csv.header({"region", "policy", "emitted", "w0", "w1", "w2", "w3"});

  struct RegionKind {
    const char* name;
    bool ordered;
    std::size_t merge_buffer;
  };
  const RegionKind kinds[] = {
      {"ordered, bounded merger (the paper's transport)", true, 64},
      {"ordered, eager merger (blocks only at the splitter)", true, 0},
      {"unordered (parallel sinks)", false, 0},
  };
  for (const RegionKind& kind : kinds) {
    std::printf("  --- %s ---\n", kind.name);
    std::printf("  %-12s %12s %24s\n", "policy", "emitted",
                "final weights");
    struct Alt {
      const char* name;
      std::unique_ptr<SplitPolicy> policy;
    };
    std::vector<Alt> alts;
    alts.push_back({"RR", std::make_unique<RoundRobinPolicy>(4)});
    alts.push_back({"RR-reroute",
                    std::make_unique<RerouteOnBlockPolicy>(4)});
    alts.push_back({"TP-balance",
                    std::make_unique<ThroughputBalancedPolicy>(4)});
    alts.push_back({"LB-adaptive", std::make_unique<LoadBalancingPolicy>(
                                       4, ControllerConfig{})});
    for (Alt& alt : alts) {
      const Row row = run(kind.ordered, kind.merge_buffer,
                          std::move(alt.policy), duration_s);
      std::printf("  %-12s %12llu   [%4d %4d %4d %4d]\n", alt.name,
                  static_cast<unsigned long long>(row.emitted),
                  row.final_weights[0], row.final_weights[1],
                  row.final_weights[2], row.final_weights[3]);
      csv.row({kind.name, alt.name, std::to_string(row.emitted),
               std::to_string(row.final_weights[0]),
               std::to_string(row.final_weights[1]),
               std::to_string(row.final_weights[2]),
               std::to_string(row.final_weights[3])});
    }
  }
  std::printf(
      "\n  reading: in the ordered region, bounded buffering chokes "
      "re-routing and deliveries mirror the input mix, so only the "
      "blocking-rate model recovers the capacity split; with parallel "
      "sinks, re-routing alone already frees the fast workers and "
      "TP-balance can learn from deliveries.\n");
  std::printf("  CSV: %s/ext_ordering.csv\n", bench::results_dir().c_str());
  return 0;
}
