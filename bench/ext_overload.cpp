// Extension: sustained overload (not in the paper).
//
// The paper's experiments are feasible by construction — some allocation
// always keeps every connection alive. This bench offers an open-loop
// source at 2x the region's capacity for the whole run and compares three
// stances (DESIGN.md §7):
//
//   * LB-adaptive + protection: saturation detector freezes the
//     controller, watermark shedding keeps the source backlog bounded,
//     the watchdog ladder backstops both;
//   * LB-adaptive, no protection: the controller keeps re-exploring a
//     gradient-free landscape and the source backlog grows without bound
//     (the "wedge": every tuple waits longer than the one before it);
//   * RR, no protection: same wedge without the controller churn.
//
// Acceptance: the protected configuration sustains >= 90% of region
// capacity as goodput with a backlog bounded by the shed watermark, while
// both unprotected runs end with backlogs that grew linearly all run.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "core/policies.h"
#include "obs/export.h"
#include "sim/region.h"
#include "util/time.h"

namespace slb {
namespace {

constexpr int kWorkers = 4;
constexpr DurationNs kBaseCost = micros(10);
constexpr double kOverload = 2.0;

sim::RegionConfig base_config() {
  sim::RegionConfig cfg;
  cfg.workers = kWorkers;
  cfg.base_cost = kBaseCost;
  // Small enough that splitter overhead does not mask the blocking
  // signal: aggregate blocking ~ 1 - overhead / (base_cost / workers).
  cfg.send_overhead = 200;
  cfg.sample_period = millis(5);
  // Offered rate = kOverload x the region's nominal capacity.
  cfg.source_interval = static_cast<DurationNs>(
      static_cast<double>(kBaseCost) / (kWorkers * kOverload));
  return cfg;
}

struct Outcome {
  std::string name;
  double goodput_fraction = 0.0;  // emitted rate / capacity
  std::uint64_t shed = 0;
  std::uint64_t backlog = 0;  // source backlog at end of run
  bool overload_declared = false;
};

Outcome run_one(const std::string& name, bool protect, DurationNs duration) {
  sim::RegionConfig cfg = base_config();
  ControllerConfig ctrl;
  if (protect) {
    ctrl.enable_overload_protection = true;
    cfg.protection.shed_high_watermark = 128;
    cfg.protection.shed_low_watermark = 64;
    cfg.protection.watchdog = true;
  }
  std::unique_ptr<SplitPolicy> policy;
  if (name == "RR") {
    policy = std::make_unique<RoundRobinPolicy>(kWorkers);
  } else {
    policy = std::make_unique<LoadBalancingPolicy>(kWorkers, ctrl);
  }
  sim::Region region(cfg, std::move(policy));

  Outcome out;
  out.name = name;
  region.set_sample_hook([&](sim::Region& r) {
    if (r.policy().overload_state().overloaded) out.overload_declared = true;
  });
  region.run_for(duration);

  const double capacity_tps =
      static_cast<double>(kWorkers) * kNanosPerSec /
      static_cast<double>(kBaseCost);
  const double goodput_tps = static_cast<double>(region.emitted()) *
                             kNanosPerSec / static_cast<double>(duration);
  out.goodput_fraction = goodput_tps / capacity_tps;
  out.shed = region.shed_tuples();
  out.backlog = region.splitter().source_backlog(region.now());

  // End-of-run registry dump (DESIGN.md §8): one cumulative snapshot per
  // configuration, appended to $SLB_METRICS_OUT as JSON lines.
  if (const char* path = std::getenv("SLB_METRICS_OUT");
      path != nullptr && *path != '\0') {
    obs::JsonlExporter exporter(&region.metrics(), path, /*append=*/true);
    if (exporter.ok()) exporter.dump(region.now());
  }
  return out;
}

}  // namespace
}  // namespace slb

int main() {
  using namespace slb;
  const DurationNs duration =
      seconds_f(2.0 * bench::duration_scale());
  bench::print_header(
      "ext: sustained 2x overload, open-loop source (goodput vs capacity)");
  std::printf("  %d workers x %.0f us/tuple; offered %.1fx capacity for"
              " %.1f s virtual\n",
              kWorkers, static_cast<double>(kBaseCost) / 1000.0, kOverload,
              to_seconds(duration));

  const Outcome results[] = {
      run_one("LB-adaptive+shed", /*protect=*/true, duration),
      run_one("LB-adaptive", /*protect=*/false, duration),
      run_one("RR", /*protect=*/false, duration),
  };

  std::printf("  %-18s %10s %12s %14s %10s\n", "policy", "goodput",
              "shed", "end backlog", "overload");
  for (const Outcome& r : results) {
    std::printf("  %-18s %9.1f%% %12llu %14llu %10s\n", r.name.c_str(),
                100.0 * r.goodput_fraction,
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.backlog),
                r.overload_declared ? "declared" : "-");
  }

  const Outcome& protected_run = results[0];
  const bool pass = protected_run.goodput_fraction >= 0.90 &&
                    protected_run.backlog <= 256;
  const bool wedged = results[1].backlog > 10 * 256 &&
                      results[2].backlog > 10 * 256;
  std::printf("\n  protected goodput >= 90%% with bounded backlog: %s\n",
              pass ? "yes" : "NO");
  std::printf("  unprotected runs wedged (unbounded backlog): %s\n",
              wedged ? "yes" : "NO");
  return pass && wedged ? 0 : 1;
}
