// Figure 2: idealized calculation of per-connection blocking rate.
//
// Reproduces the paper's illustration with real (simulated) data: the
// cumulative blocking time of an overloaded connection grows steadily;
// its per-second first difference — the blocking rate — is flat.
// Prints both series and writes fig02.csv.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

int main() {
  bench::print_header(
      "Figure 2: cumulative blocking time and blocking rate over time");

  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 1000;
  // Connection 0 permanently 10x loaded: with an even round-robin split it
  // blocks at a steady rate.
  spec.loads.push_back({{0}, 10.0, -1.0});
  auto region = make_region(PolicyKind::kRoundRobin, spec);

  const int seconds_total =
      static_cast<int>(30 * bench::duration_scale()) + 5;
  std::vector<double> cumulative_s;
  std::vector<double> rate;
  DurationNs prev = 0;
  region->set_sample_hook([&](Region& r) {
    const DurationNs cum = r.counters().sample()[0];
    cumulative_s.push_back(to_seconds(cum));
    rate.push_back(static_cast<double>(cum - prev) /
                   static_cast<double>(r.config().sample_period));
    prev = cum;
  });
  region->run_for(spec.scale.paper_second * seconds_total);

  CsvWriter csv(bench::results_dir() + "/fig02.csv");
  csv.header({"paper_s", "cumulative_blocked_s", "blocking_rate"});
  std::printf("  %8s %24s %16s\n", "paper_s", "cumulative blocked (s)",
              "blocking rate");
  for (std::size_t i = 0; i < cumulative_s.size(); ++i) {
    csv.row(std::vector<double>{static_cast<double>(i + 1), cumulative_s[i],
                                rate[i]});
    if ((i + 1) % 5 == 0) {
      std::printf("  %8zu %24.4f %16.3f\n", i + 1, cumulative_s[i], rate[i]);
    }
  }

  // The paper's point: cumulative climbs, the rate is stable. Report the
  // rate's spread over the second half (past warm-up).
  RunningStats stats;
  for (std::size_t i = rate.size() / 2; i < rate.size(); ++i) {
    stats.add(rate[i]);
  }
  std::printf(
      "\n  steady-state blocking rate: mean=%.3f  stddev=%.3f  "
      "(flat, as in the paper's idealized Figure 2)\n",
      stats.mean(), stats.stddev());
  std::printf("  CSV: %s/fig02.csv\n", bench::results_dir().c_str());
  return 0;
}
