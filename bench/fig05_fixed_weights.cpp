// Figure 5: blocking rates for fixed allocation weights.
//
// Two homogeneous PEs; static splits 80/20, 70/30, 60/40, 50/50. The
// paper's observations to reproduce:
//   (a-c) connection 1's blocking rate is flat over time and decreases
//         monotonically as its weight drops from 80% to 60%;
//   (d)   at 50/50 the draft leader swaps at some arbitrary time, so the
//         rate series of connection 1 shows a level change.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

struct SplitResult {
  double mean_rate_conn1 = 0.0;
  double stddev = 0.0;
  std::vector<double> series;
};

SplitResult run_split(Weight w1, int seconds_total) {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 10'000;  // heavy enough that blocking is sustained
  auto oracle = std::make_unique<OraclePolicy>(
      2, std::vector<OraclePolicy::Phase>{
             {0,
              {static_cast<double>(w1),
               static_cast<double>(kWeightUnits - w1)}}});
  RegionConfig cfg = build_region_config(spec);
  // The absolute blocking *level* is what this figure shows, and it is
  // set by how much of its time the splitter spends doing per-tuple work
  // vs waiting. Give the splitter a realistic serialization cost (1/8 of
  // the tuple's processing cost) so the level varies with the split, as
  // on the paper's real transport.
  cfg.send_overhead = cfg.base_cost / 8;
  Region region(cfg, std::move(oracle), build_load_profile(spec),
                spec.hosts);
  SplitResult result;
  region.set_sample_hook([&](Region& r) {
    result.series.push_back(r.last_period_blocking_rate(0));
  });
  region.run_for(spec.scale.paper_second * seconds_total);
  RunningStats stats;
  for (std::size_t i = result.series.size() / 4; i < result.series.size();
       ++i) {
    stats.add(result.series[i]);
  }
  result.mean_rate_conn1 = stats.mean();
  result.stddev = stats.stddev();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5: blocking rate of connection 1 under fixed splits");
  const int seconds_total =
      static_cast<int>(60 * bench::duration_scale()) + 10;

  CsvWriter csv(bench::results_dir() + "/fig05.csv");
  csv.header({"split_w1", "paper_s", "blocking_rate_conn1"});

  std::printf("  %8s %18s %12s\n", "split", "mean rate(conn1)", "stddev");
  double prev_mean = 2.0;
  bool monotone = true;
  for (Weight w1 : {800, 700, 600, 500}) {
    const SplitResult r = run_split(w1, seconds_total);
    for (std::size_t i = 0; i < r.series.size(); ++i) {
      csv.row(std::vector<double>{static_cast<double>(w1),
                                  static_cast<double>(i + 1), r.series[i]});
    }
    std::printf("   %2d%%/%2d%%  %18.4f %12.4f\n", w1 / 10,
                (kWeightUnits - w1) / 10, r.mean_rate_conn1, r.stddev);
    if (r.mean_rate_conn1 > prev_mean) monotone = false;
    prev_mean = r.mean_rate_conn1;
  }
  std::printf(
      "\n  monotonicity across splits (paper: rate falls 80%%->50%%): %s\n",
      monotone ? "holds" : "VIOLATED");
  std::printf("  CSV: %s/fig05.csv\n", bench::results_dir().c_str());
  return 0;
}
