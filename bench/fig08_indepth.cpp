// Figure 8: two in-depth single-run traces of LB-adaptive.
//
// Top:    3 PEs, base cost 1,000 multiplies, one PE 100x loaded until an
//         eighth through the run. The model sheds the loaded connection
//         within seconds, re-explores periodically, and climbs back to an
//         even split after the load disappears.
// Bottom: 3 PEs, base cost 10,000 multiplies, equal capacity. Drafting
//         causes early oscillation; the model settles near an even split.
//
// Prints weight trajectories and writes fig08_top.csv / fig08_bottom.csv.
#include <cstdio>

#include "bench/bench_common.h"

using namespace slb;
using namespace slb::sim;

namespace {

void run_case(const char* name, const char* csv_name, long multiplies,
              bool loaded, double duration_s) {
  ExperimentSpec spec;
  spec.workers = 3;
  spec.base_multiplies = multiplies;
  spec.duration_paper_s = duration_s;
  if (loaded) {
    spec.loads.push_back({{0}, 100.0, duration_s / 8.0});
  }
  auto region = make_region(PolicyKind::kLbAdaptive, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.from_paper_seconds(duration_s));

  bench::print_header(name);
  if (loaded) {
    std::printf("  (100x load on connection 0 removed at t=%.0fs)\n",
                duration_s / 8.0);
  }
  std::printf("  allocation weights per connection (0.1%% units):\n%s",
              trace.render_weights(static_cast<int>(duration_s / 20)).c_str());

  // Summarize the paper's three headline behaviors.
  const auto& rows = trace.rows();
  const std::size_t eighth = rows.size() / 8;
  if (loaded && eighth > 2) {
    Weight min_w0 = kWeightUnits;
    for (std::size_t i = 0; i < eighth; ++i) {
      min_w0 = std::min(min_w0, rows[i].weights[0]);
    }
    std::printf("\n  loaded phase: connection 0 weight driven down to %d\n",
                min_w0);
  }
  const TraceRow& last = rows.back();
  std::printf("  final weights: [%d %d %d]\n", last.weights[0],
              last.weights[1], last.weights[2]);
  trace.write_csv(bench::results_dir() + "/" + csv_name);
  std::printf("  CSV: %s/%s\n", bench::results_dir().c_str(), csv_name);
}

}  // namespace

int main() {
  const double scale = bench::duration_scale();
  run_case(
      "Figure 8 top: 3 PEs, 1,000-multiply tuples, one 100x loaded "
      "until t/8",
      "fig08_top.csv", 1000, /*loaded=*/true, 400 * scale);
  run_case(
      "Figure 8 bottom: 3 PEs, 10,000-multiply tuples, equal capacity",
      "fig08_bottom.csv", 10'000, /*loaded=*/false, 400 * scale);
  return 0;
}
