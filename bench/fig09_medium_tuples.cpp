// Figure 9: varying PEs with medium-cost tuples (base 1,000 multiplies),
// half the PEs under 10x simulated load.
//
//   Left:   load static for the whole run — normalized execution time.
//   Middle: load removed at t/8 — normalized execution time.
//   Right:  load removed at t/8 — absolute final throughput.
//
// Alternatives per the paper: Oracle*, LB-static, LB-adaptive, RR.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

ExperimentSpec make_spec(int workers, bool dynamic, double duration_s) {
  ExperimentSpec spec;
  spec.workers = workers;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = duration_s;
  std::vector<int> loaded;
  for (int w = 0; w < workers / 2; ++w) loaded.push_back(w);
  LoadClass cls;
  cls.workers = loaded;
  cls.multiplier = 10.0;
  if (dynamic) cls.until_work_fraction = 1.0 / 8.0;
  spec.loads.push_back(cls);
  return spec;
}

void run_variant(const char* title, bool dynamic, double duration_s,
                 CsvWriter& csv) {
  bench::print_header(title);
  for (int workers : {2, 4, 8, 16}) {
    const ExperimentSpec spec = make_spec(workers, dynamic, duration_s);
    const std::uint64_t work = ideal_work(spec);
    const auto results = run_alternatives(spec, work);
    std::printf("  --- %d PEs (half with 10x load%s) ---\n", workers,
                dynamic ? ", removed at t/8" : "");
    bench::print_alternatives_table(results);
    for (const ExperimentResult& r : results) {
      csv.row({std::string(dynamic ? "dynamic" : "static"),
               std::to_string(workers), policy_name(r.kind),
               CsvWriter::format(r.exec_time_paper_s),
               CsvWriter::format(r.exec_time_paper_s /
                                 results.front().exec_time_paper_s),
               CsvWriter::format(r.final_throughput_mtps)});
    }
  }
}

}  // namespace

int main() {
  const double duration_s = 120 * bench::duration_scale();
  CsvWriter csv(bench::results_dir() + "/fig09.csv");
  csv.header({"variant", "workers", "policy", "exec_paper_s",
              "exec_norm_oracle", "final_tput_mtps"});
  run_variant(
      "Figure 9 left: static 10x load on half the PEs (1,000-multiply "
      "tuples)",
      /*dynamic=*/false, duration_s, csv);
  run_variant(
      "Figure 9 middle+right: 10x load removed at t/8 (exec time and "
      "final throughput)",
      /*dynamic=*/true, duration_s, csv);
  std::printf("\n  CSV: %s/fig09.csv\n", bench::results_dir().c_str());
  return 0;
}
