// Figure 10: varying PEs with heavy-cost tuples (base 10,000 multiplies),
// half the PEs under 100x simulated load — static and dynamic variants,
// normalized execution time and absolute final throughput.
//
// Headline behaviors to reproduce (Section 6.4): LB-static never
// rediscovers that load went away, so LB-adaptive's *final throughput*
// is far higher; RR eventually reaches Oracle*-like throughput in the
// dynamic case but takes an order of magnitude longer to get there.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

ExperimentSpec make_spec(int workers, bool dynamic, double duration_s) {
  ExperimentSpec spec;
  spec.workers = workers;
  spec.base_multiplies = 10'000;
  spec.duration_paper_s = duration_s;
  // Heavy tuples: a longer paper second keeps blocking episodes much
  // shorter than the sampling period, as in the paper's real system
  // (DESIGN.md time scaling) — otherwise draft-leader rotation is too
  // slow to pin down all the loaded connections.
  spec.scale.paper_second = millis(50);
  std::vector<int> loaded;
  for (int w = 0; w < workers / 2; ++w) loaded.push_back(w);
  LoadClass cls;
  cls.workers = loaded;
  cls.multiplier = 100.0;
  if (dynamic) cls.until_work_fraction = 1.0 / 8.0;
  spec.loads.push_back(cls);
  return spec;
}

}  // namespace

int main() {
  const double duration_s = 120 * bench::duration_scale();
  CsvWriter csv(bench::results_dir() + "/fig10.csv");
  csv.header({"variant", "workers", "policy", "exec_paper_s",
              "exec_norm_oracle", "final_tput_mtps"});

  for (const bool dynamic : {false, true}) {
    bench::print_header(
        dynamic ? "Figure 10 middle+right: 100x load removed at t/8"
                : "Figure 10 left: static 100x load on half the PEs");
    for (int workers : {2, 4, 8, 16}) {
      const ExperimentSpec spec = make_spec(workers, dynamic, duration_s);
      const std::uint64_t work = ideal_work(spec);
      const auto results = run_alternatives(spec, work);
      std::printf("  --- %d PEs ---\n", workers);
      bench::print_alternatives_table(results);
      for (const ExperimentResult& r : results) {
        csv.row({std::string(dynamic ? "dynamic" : "static"),
                 std::to_string(workers), policy_name(r.kind),
                 CsvWriter::format(r.exec_time_paper_s),
                 CsvWriter::format(r.exec_time_paper_s /
                                   results.front().exec_time_paper_s),
                 CsvWriter::format(r.final_throughput_mtps)});
      }
      if (dynamic) {
        const double adaptive_tput = results[2].final_throughput_mtps;
        const double static_tput = results[1].final_throughput_mtps;
        if (static_tput > 0) {
          std::printf(
              "  LB-adaptive final tput / LB-static final tput = %.2fx "
              "(paper: ~2x at scale)\n",
              adaptive_tput / static_tput);
        }
      }
    }
  }
  std::printf("\n  CSV: %s/fig10.csv\n", bench::results_dir().c_str());
  return 0;
}
