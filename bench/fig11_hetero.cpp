// Figure 11: PEs on heterogeneous hosts (no simulated load).
//
// Top: in-depth 2-PE run, one PE on the "fast" host and one on the
//      "slow" host; the model settles near the hosts' capacity ratio
//      (the paper reports ~65%/35%).
// Bottom: 2-24 PEs spread over the two hosts under four placements:
//      All-Fast, All-Slow, Even-RR, Even-LB. Execution time normalized
//      to Even-RR plus absolute final throughput.
//
// Host substitution (DESIGN.md): slow = speed 1.0 / 8 threads
// (2x X5365), fast = speed 1.8 / 16 threads (2x X5687 with SMT; the
// 1.8x single-thread factor reflects the Westmere vs Clovertown IPC gap
// implied by the paper's observed 65/35 split).
#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

constexpr double kFastSpeed = 1.8;
constexpr int kFastThreads = 16;
constexpr int kSlowThreads = 8;

ExperimentSpec hetero_spec(int workers, const std::vector<int>& placement,
                           double duration_s) {
  ExperimentSpec spec;
  spec.workers = workers;
  spec.base_multiplies = 20'000;
  spec.duration_paper_s = duration_s;
  spec.hosts = HostModel(
      {{kFastSpeed, kFastThreads}, {1.0, kSlowThreads}}, placement);
  return spec;
}

std::vector<int> even_placement(int workers) {
  std::vector<int> placement;
  for (int w = 0; w < workers; ++w) placement.push_back(w < workers / 2 ? 0 : 1);
  return placement;
}

void run_indepth(double duration_s) {
  bench::print_header(
      "Figure 11 top: in-depth, 1 PE on fast host vs 1 PE on slow host");
  const ExperimentSpec spec = hetero_spec(2, {0, 1}, duration_s);
  auto region = make_region(PolicyKind::kLbAdaptive, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.from_paper_seconds(duration_s));
  std::printf("%s", trace.render_weights(
                        static_cast<int>(duration_s / 20)).c_str());
  // Mean split over the last half of the run.
  const auto& rows = trace.rows();
  double w0 = 0;
  std::size_t n = 0;
  for (std::size_t i = rows.size() / 2; i < rows.size(); ++i, ++n) {
    w0 += rows[i].weights[0];
  }
  w0 /= static_cast<double>(n);
  std::printf(
      "\n  steady split: fast connection %.1f%%, slow %.1f%% "
      "(paper: ~65%%/35%%; ideal for 1.8x hosts: 64.3%%/35.7%%)\n",
      w0 / 10.0, 100.0 - w0 / 10.0);
  trace.write_csv(bench::results_dir() + "/fig11_top.csv");
}

void run_scaling(double duration_s, CsvWriter& csv) {
  bench::print_header(
      "Figure 11 bottom: All-Fast / All-Slow / Even-RR / Even-LB");
  for (int workers : {2, 4, 8, 16, 24}) {
    struct Alt {
      const char* name;
      std::vector<int> placement;
      PolicyKind kind;
    };
    const std::vector<Alt> alts{
        {"All-Fast", std::vector<int>(static_cast<std::size_t>(workers), 0),
         PolicyKind::kRoundRobin},
        {"All-Slow", std::vector<int>(static_cast<std::size_t>(workers), 1),
         PolicyKind::kRoundRobin},
        {"Even-RR", even_placement(workers), PolicyKind::kRoundRobin},
        {"Even-LB", even_placement(workers), PolicyKind::kLbAdaptive},
    };

    // Shared fixed work: what the Even-RR configuration would ideally do.
    const ExperimentSpec ref =
        hetero_spec(workers, even_placement(workers), duration_s);
    const std::uint64_t work = ideal_work(ref);

    std::printf("  --- %d PEs (20,000-multiply tuples) ---\n", workers);
    std::printf("  %-10s %14s %14s %16s %8s\n", "placement",
                "exec(paper s)", "norm vs E-RR", "final tput(M/s)", "done");
    std::vector<ExperimentResult> results;
    for (const Alt& alt : alts) {
      const ExperimentSpec spec =
          hetero_spec(workers, alt.placement, duration_s);
      results.push_back(run_fixed_work(alt.kind, spec, work, 25.0));
    }
    const double even_rr_time = results[2].exec_time_paper_s;
    for (std::size_t i = 0; i < alts.size(); ++i) {
      const ExperimentResult& r = results[i];
      std::printf("  %-10s %14.1f %14.2f %16.3f %8s\n", alts[i].name,
                  r.exec_time_paper_s, r.exec_time_paper_s / even_rr_time,
                  r.final_throughput_mtps, r.completed ? "yes" : "DEADLINE");
      csv.row({std::to_string(workers), alts[i].name,
               CsvWriter::format(r.exec_time_paper_s),
               CsvWriter::format(r.final_throughput_mtps)});
    }
  }
}

}  // namespace

int main() {
  const double duration_s = 150 * bench::duration_scale();
  run_indepth(duration_s);
  CsvWriter csv(bench::results_dir() + "/fig11_bottom.csv");
  csv.header({"workers", "placement", "exec_paper_s", "final_tput_mtps"});
  run_scaling(120 * bench::duration_scale(), csv);
  std::printf("\n  CSV: %s/fig11_top.csv, fig11_bottom.csv\n",
              bench::results_dir().c_str());
  return 0;
}
