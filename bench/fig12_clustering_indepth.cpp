// Figure 12: 64-channel in-depth clustering experiment.
//
// 64 PEs, base tuple cost 60,000 multiplies; three load classes: 20 PEs
// at 100x, 20 PEs at 5x, 24 PEs unloaded. LB-adaptive with clustering.
// Left graph: allocation weights per channel over time (w as CSV; class
// means printed). Right graph: the clustering "heatmap" — the cluster id
// of each channel per period (CSV; purity summary printed).
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_common.h"

using namespace slb;
using namespace slb::sim;

int main() {
  const double duration_s = 400 * bench::duration_scale();

  ExperimentSpec spec;
  spec.workers = 64;
  spec.base_multiplies = 60'000;
  spec.duration_paper_s = duration_s;
  // Heavy tuples: use a longer paper second so each period still carries
  // a statistically useful number of tuples (DESIGN.md time scaling).
  spec.scale.paper_second = millis(100);
  spec.controller.enable_clustering = true;
  spec.controller.clustering_min_connections = 32;

  std::vector<int> class100;
  std::vector<int> class5;
  for (int w = 0; w < 20; ++w) class100.push_back(w);
  for (int w = 20; w < 40; ++w) class5.push_back(w);
  spec.loads.push_back({class100, 100.0, -1.0});
  spec.loads.push_back({class5, 5.0, -1.0});

  bench::print_header(
      "Figure 12: 64 channels, 60,000-multiply tuples, 3 load classes "
      "(20x100x, 20x5x, 24x1x), clustering on");

  auto region = make_region(PolicyKind::kLbAdaptive, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.from_paper_seconds(duration_s));

  // Class-mean weight trajectories (the readable form of the left graph).
  std::printf("  mean allocation weight per load class over time:\n");
  std::printf("  %10s %10s %10s %10s\n", "paper_s", "100x", "5x", "1x");
  const auto& rows = trace.rows();
  const std::size_t stride = std::max<std::size_t>(1, rows.size() / 12);
  for (std::size_t i = 0; i < rows.size(); i += stride) {
    double m100 = 0;
    double m5 = 0;
    double m1 = 0;
    for (int w = 0; w < 64; ++w) {
      const double x = rows[i].weights[static_cast<std::size_t>(w)];
      if (w < 20) {
        m100 += x;
      } else if (w < 40) {
        m5 += x;
      } else {
        m1 += x;
      }
    }
    std::printf("  %10.0f %10.2f %10.2f %10.2f\n", rows[i].paper_s,
                m100 / 20, m5 / 20, m1 / 24);
  }

  // Heatmap purity: in the final quarter, do clusters mix load classes?
  auto klass = [](int w) { return w < 20 ? 0 : (w < 40 ? 1 : 2); };
  std::size_t impure_rows = 0;
  std::size_t clustered_rows = 0;
  for (std::size_t i = rows.size() * 3 / 4; i < rows.size(); ++i) {
    if (rows[i].cluster_of.empty()) continue;
    ++clustered_rows;
    std::map<int, std::set<int>> classes_in_cluster;
    for (int w = 0; w < 64; ++w) {
      classes_in_cluster[rows[i].cluster_of[static_cast<std::size_t>(w)]]
          .insert(klass(w));
    }
    for (const auto& [cluster, classes] : classes_in_cluster) {
      if (classes.size() > 1) {
        ++impure_rows;
        break;
      }
    }
  }
  std::printf(
      "\n  clustering heatmap: %zu/%zu final-quarter periods have "
      "class-pure clusters (paper: classes fully sort out by the end)\n",
      clustered_rows - impure_rows, clustered_rows);

  const TraceRow& last = rows.back();
  double w100 = 0;
  double w5 = 0;
  double w1 = 0;
  for (int w = 0; w < 64; ++w) {
    const double x = last.weights[static_cast<std::size_t>(w)];
    if (w < 20) {
      w100 += x;
    } else if (w < 40) {
      w5 += x;
    } else {
      w1 += x;
    }
  }
  std::printf(
      "  final per-channel weights: 100x class ~%.1f, 5x class ~%.1f, "
      "unloaded ~%.1f (paper: minimum / <=2 / ~4)\n",
      w100 / 20, w5 / 20, w1 / 24);

  trace.write_csv(bench::results_dir() + "/fig12.csv");
  std::printf("  CSV (weights, rates, cluster ids per period): %s/fig12.csv\n",
              bench::results_dir().c_str());
  return 0;
}
