// Figure 13: clustering on, 8-64 PEs, base tuple cost 60,000 multiplies,
// half the PEs 100x loaded with the load removed at t/8. Execution time
// normalized to Oracle* and absolute final throughput.
//
// The paper's observations: at 32-64 PEs LB-static and LB-adaptive have
// similar execution times, both ~9x better than RR; LB-adaptive's final
// throughput stays ahead because only it learns the load went away.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

int main() {
  const double duration_s = 200 * bench::duration_scale();
  CsvWriter csv(bench::results_dir() + "/fig13.csv");
  csv.header({"workers", "policy", "exec_paper_s", "exec_norm_oracle",
              "final_tput_mtps"});

  bench::print_header(
      "Figure 13: clustering on, 60,000-multiply tuples, half the PEs "
      "100x loaded until t/8");
  for (int workers : {8, 16, 32, 64}) {
    ExperimentSpec spec;
    spec.workers = workers;
    spec.base_multiplies = 60'000;
    spec.duration_paper_s = duration_s;
    spec.scale.paper_second = millis(100);
    spec.controller.enable_clustering = true;
    spec.controller.clustering_min_connections = 32;
    std::vector<int> loaded;
    for (int w = 0; w < workers / 2; ++w) loaded.push_back(w);
    LoadClass cls;
    cls.workers = loaded;
    cls.multiplier = 100.0;
    cls.until_work_fraction = 1.0 / 8.0;
    spec.loads.push_back(cls);

    const std::uint64_t work = ideal_work(spec);
    const auto results = run_alternatives(spec, work);
    std::printf("  --- %d PEs (clustering %s) ---\n", workers,
                workers >= 32 ? "engaged" : "below threshold");
    bench::print_alternatives_table(results);
    for (const ExperimentResult& r : results) {
      csv.row({std::to_string(workers), policy_name(r.kind),
               CsvWriter::format(r.exec_time_paper_s),
               CsvWriter::format(r.exec_time_paper_s /
                                 results.front().exec_time_paper_s),
               CsvWriter::format(r.final_throughput_mtps)});
    }
    const double rr_norm = results[3].exec_time_paper_s /
                           results.front().exec_time_paper_s;
    const double lb_norm = results[2].exec_time_paper_s /
                           results.front().exec_time_paper_s;
    std::printf("  RR / LB-adaptive execution-time ratio: %.1fx\n",
                rr_norm / lb_norm);
  }
  std::printf("\n  CSV: %s/fig13.csv\n", bench::results_dir().c_str());
  return 0;
}
