// Micro-benchmarks (google-benchmark) for the core algorithms: the Fox
// greedy RAP solver (the paper claims O(N + R log N)), the bisection
// solver, PAVA monotone regression, rate-function maintenance, smooth
// WRR picking, and the clustering distance matrix.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/clustering.h"
#include "core/controller.h"
#include "core/monotone_regression.h"
#include "core/policies.h"
#include "core/rap.h"
#include "core/rate_function.h"
#include "core/wrr.h"
#include "sim/region.h"
#include "util/rng.h"
#include "util/time.h"

namespace slb {
namespace {

// ---- RAP solvers ---------------------------------------------------------

RapProblem make_problem(int n) {
  RapProblem p;
  p.total = kWeightUnits;
  p.vars.assign(static_cast<std::size_t>(n),
                RapVariable{0, kWeightUnits, 1});
  p.eval = [](int j, Weight w) {
    // Heterogeneous linear blocking curves; cheap to evaluate so the
    // benchmark measures solver overhead, not eval cost.
    return static_cast<double>(w) * (1.0 + 0.03 * (j % 17));
  };
  return p;
}

void BM_FoxGreedy(benchmark::State& state) {
  const RapProblem p = make_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_fox(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FoxGreedy)->RangeMultiplier(4)->Range(2, 512)->Complexity();

void BM_BisectSolver(benchmark::State& state) {
  const RapProblem p = make_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_bisect(p));
  }
}
BENCHMARK(BM_BisectSolver)->RangeMultiplier(4)->Range(2, 128);

// ---- PAVA ----------------------------------------------------------------

void BM_IsotonicFit(benchmark::State& state) {
  Rng rng(1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> y(n);
  std::vector<double> w(n, 1.0);
  for (auto& v : y) v = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isotonic_fit(y, w));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IsotonicFit)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

// ---- RateFunction maintenance ---------------------------------------------

void BM_RateFunctionObserveAndFit(benchmark::State& state) {
  Rng rng(2);
  RateFunction f;
  for (int i = 0; i < 100; ++i) {
    f.observe(static_cast<Weight>(1 + rng.below(kWeightUnits)),
              rng.uniform(0, 1));
  }
  for (auto _ : state) {
    f.observe(static_cast<Weight>(1 + rng.below(kWeightUnits)),
              rng.uniform(0, 1));
    benchmark::DoNotOptimize(f.value(500));
  }
}
BENCHMARK(BM_RateFunctionObserveAndFit);

void BM_RateFunctionDecay(benchmark::State& state) {
  Rng rng(3);
  RateFunction f;
  for (int i = 0; i < 200; ++i) {
    f.observe(static_cast<Weight>(1 + rng.below(kWeightUnits)),
              rng.uniform(0, 1));
  }
  for (auto _ : state) {
    f.decay_above(300, 0.9);
    benchmark::DoNotOptimize(f.value(900));
  }
}
BENCHMARK(BM_RateFunctionDecay);

// ---- WRR -------------------------------------------------------------------

void BM_SmoothWrrPick(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SmoothWrr wrr(n);
  Rng rng(4);
  WeightVector w(static_cast<std::size_t>(n));
  Weight left = kWeightUnits;
  for (int j = 0; j < n - 1; ++j) {
    w[static_cast<std::size_t>(j)] = static_cast<Weight>(
        rng.below(static_cast<std::uint64_t>(left / 2) + 1));
    left -= w[static_cast<std::size_t>(j)];
  }
  w[static_cast<std::size_t>(n - 1)] = left;
  wrr.set_weights(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wrr.pick());
  }
}
BENCHMARK(BM_SmoothWrrPick)->RangeMultiplier(4)->Range(2, 128);

// ---- full controller update -------------------------------------------------

void BM_ControllerUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ControllerConfig cfg;
  cfg.enable_clustering = n >= 32;
  LoadBalanceController controller(n, cfg);
  std::vector<DurationNs> cumulative(static_cast<std::size_t>(n), 0);
  TimeNs now = 0;
  Rng rng(9);
  // Warm up past the baseline sample.
  controller.update(now += seconds(1), cumulative);
  for (auto _ : state) {
    now += seconds(1);
    cumulative[rng.below(static_cast<std::uint64_t>(n))] += millis(500);
    benchmark::DoNotOptimize(controller.update(now, cumulative));
  }
}
BENCHMARK(BM_ControllerUpdate)->RangeMultiplier(4)->Range(4, 64);

// ---- observability overhead -------------------------------------------------

// Splitter hot path in isolation: channels drained the instant a tuple
// arrives, so every simulated event is splitter work (policy pick, push,
// event scheduling) plus — with Arg 1 — the splitter's own registry
// updates. The relative gap between the two rows is the instrumentation
// overhead on the send path quoted in EXPERIMENTS.md (§8 target: <= 2%).
void BM_SimSplitterSend(benchmark::State& state) {
  const bool metrics_on = state.range(0) != 0;
  const int n = 4;
  sim::Simulator sim;
  sim::Channel::Config chan_cfg;
  chan_cfg.send_capacity = 64;
  chan_cfg.recv_capacity = 64;
  chan_cfg.latency = 1000;
  std::vector<std::unique_ptr<sim::Channel>> channels;
  std::vector<sim::Channel*> ptrs;
  for (int j = 0; j < n; ++j) {
    channels.push_back(std::make_unique<sim::Channel>(&sim, j, chan_cfg));
    sim::Channel* c = channels.back().get();
    c->set_on_recv_ready([c] {
      while (!c->recv_empty()) c->pop_recv();
    });
    ptrs.push_back(c);
  }
  RoundRobinPolicy policy(n);
  BlockingCounterSet counters(static_cast<std::size_t>(n));
  sim::Splitter splitter(&sim, &policy, /*send_overhead=*/500);
  splitter.wire(ptrs, &counters);
  obs::MetricsRegistry registry;
  if (metrics_on) {
    sim::SplitterMetrics sm;
    sm.sent = &registry.counter("splitter.sent");
    sm.blocks = &registry.counter("splitter.blocks");
    sm.block_ns = &registry.histogram("splitter.block_ns");
    sm.failovers = &registry.counter("splitter.failovers");
    sm.rerouted = &registry.counter("splitter.rerouted");
    sm.shed = &registry.counter("splitter.shed");
    splitter.set_metrics(sm);
  }
  splitter.start();
  std::uint64_t prev_sent = 0;
  std::uint64_t items = 0;
  TimeNs until = 0;
  for (auto _ : state) {
    until += millis(5);
    sim.run_until(until);
    const std::uint64_t sent = splitter.total_sent();
    items += sent - prev_sent;
    prev_sent = sent;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  state.SetLabel(metrics_on ? "metrics-on" : "metrics-off");
}
BENCHMARK(BM_SimSplitterSend)->Arg(0)->Arg(1);

// Whole-region variant: RegionConfig::metrics toggles *every* component's
// instrumentation (splitter counters, worker service histograms, merger
// emit/reorder metrics, policy gauges), so this row bounds the full
// pipeline's per-tuple cost, not just the send path.
void BM_SimRegionSend(benchmark::State& state) {
  sim::RegionConfig cfg;
  cfg.workers = 4;
  cfg.base_cost = micros(4);
  cfg.send_overhead = 500;
  cfg.sample_period = millis(10);
  cfg.metrics = state.range(0) != 0;
  sim::Region region(cfg,
                     std::make_unique<LoadBalancingPolicy>(cfg.workers));
  region.start();
  std::uint64_t prev_sent = 0;
  std::uint64_t items = 0;
  for (auto _ : state) {
    region.run_for(millis(5));
    const std::uint64_t sent = region.splitter().total_sent();
    items += sent - prev_sent;
    prev_sent = sent;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  state.SetLabel(cfg.metrics ? "metrics-on" : "metrics-off");
}
BENCHMARK(BM_SimRegionSend)->Arg(0)->Arg(1);

// ---- clustering -------------------------------------------------------------

void BM_ClusterFunctions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<RateFunction> fns(static_cast<std::size_t>(n));
  for (auto& f : fns) {
    const Weight knee = static_cast<Weight>(50 + rng.below(900));
    for (Weight w = 50; w <= kWeightUnits; w += 50) {
      f.observe(w, w <= knee ? 0.0 : 0.001 * (w - knee));
    }
    benchmark::DoNotOptimize(f.value(500));  // force the fit outside timing
  }
  std::vector<const RateFunction*> ptrs;
  for (const auto& f : fns) ptrs.push_back(&f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster_functions(ptrs, {}));
  }
}
BENCHMARK(BM_ClusterFunctions)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace slb

BENCHMARK_MAIN();
