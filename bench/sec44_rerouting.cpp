// Section 4.4: the failed transport-level re-routing baseline.
//
// Two PEs, one 100x more expensive. The paper reports that data-transport
// re-routing (divert a tuple when its connection would block) reroutes
// ~0.5% of tuples with no discernible improvement at 1,000-multiply
// tuples, and ~7.5% with ~20% improvement at 10,000 — concluding that
// blocking is a *late* indicator and a predictive model is required.
//
// We run the experiment under both merger models (see DESIGN.md): the
// bounded merger matches the paper's transport (the qualitative result
// reproduces); the eager merger shows how implementation details change
// the picture — with per-tuple granularity and no back pressure from the
// merger, re-routing becomes accidentally effective. LB-adaptive is shown
// for reference: the model-based approach dominates either way.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv.h"

using namespace slb;
using namespace slb::sim;

namespace {

void run_case(long multiplies, std::size_t merge_buffer, CsvWriter& csv) {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = multiplies;
  spec.duration_paper_s = 60 * bench::duration_scale();
  spec.merge_buffer = merge_buffer;
  spec.loads.push_back({{0}, 100.0, -1.0});
  const std::uint64_t work = ideal_work(spec);

  std::printf("  --- %ld-multiply tuples, merger %s ---\n", multiplies,
              merge_buffer == 0 ? "eager (unbounded)" : "bounded");
  std::printf("  %-12s %12s %12s %14s %10s\n", "policy", "emitted",
              "vs RR", "rerouted %", "done");
  std::uint64_t rr_emitted = 0;
  for (PolicyKind kind : {PolicyKind::kRoundRobin, PolicyKind::kReroute,
                          PolicyKind::kLbAdaptive, PolicyKind::kOracle}) {
    const ExperimentResult r = run_fixed_work(kind, spec, work, 10.0);
    if (kind == PolicyKind::kRoundRobin) rr_emitted = r.emitted;
    const double vs_rr =
        static_cast<double>(r.emitted) /
        static_cast<double>(std::max<std::uint64_t>(rr_emitted, 1));
    const double rerouted_pct =
        100.0 * static_cast<double>(r.rerouted) /
        static_cast<double>(std::max<std::uint64_t>(r.total_sent, 1));
    std::printf("  %-12s %12llu %12.2f %14.2f %10s\n",
                policy_name(kind).c_str(),
                static_cast<unsigned long long>(r.emitted), vs_rr,
                rerouted_pct, r.completed ? "yes" : "DEADLINE");
    csv.row({std::to_string(multiplies),
             merge_buffer == 0 ? "eager" : "bounded", policy_name(kind),
             std::to_string(r.emitted), CsvWriter::format(vs_rr),
             CsvWriter::format(rerouted_pct)});
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Section 4.4: transport-level re-routing vs RR vs the model "
      "(2 PEs, one 100x loaded)");
  CsvWriter csv(bench::results_dir() + "/sec44.csv");
  csv.header({"multiplies", "merger", "policy", "emitted", "vs_rr",
              "rerouted_pct"});
  for (long multiplies : {1000L, 10'000L}) {
    run_case(multiplies, /*merge_buffer=*/64, csv);   // paper's transport
    run_case(multiplies, /*merge_buffer=*/0, csv);    // eager merger
  }
  std::printf(
      "\n  reading: with the bounded (block-at-merger) transport, "
      "re-routing diverts a modest fraction of tuples and neither it nor "
      "any splitter-side policy approaches Oracle* — blocking is too late "
      "an indicator, the paper's core lesson. With the eager merger the "
      "blocking signal is clean and the predictive model matches Oracle*; "
      "there fine-grained re-routing also happens to work, a transport "
      "artifact discussed in EXPERIMENTS.md.\n");
  std::printf("  CSV: %s/sec44.csv\n", bench::results_dir().c_str());
  return 0;
}
