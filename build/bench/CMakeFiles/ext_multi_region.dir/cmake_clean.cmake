file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_region.dir/ext_multi_region.cpp.o"
  "CMakeFiles/ext_multi_region.dir/ext_multi_region.cpp.o.d"
  "ext_multi_region"
  "ext_multi_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
