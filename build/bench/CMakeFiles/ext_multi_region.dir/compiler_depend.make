# Empty compiler generated dependencies file for ext_multi_region.
# This may be replaced when dependencies are built.
