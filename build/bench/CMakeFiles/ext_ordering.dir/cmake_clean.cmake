file(REMOVE_RECURSE
  "CMakeFiles/ext_ordering.dir/ext_ordering.cpp.o"
  "CMakeFiles/ext_ordering.dir/ext_ordering.cpp.o.d"
  "ext_ordering"
  "ext_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
