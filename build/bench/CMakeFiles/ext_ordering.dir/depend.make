# Empty dependencies file for ext_ordering.
# This may be replaced when dependencies are built.
