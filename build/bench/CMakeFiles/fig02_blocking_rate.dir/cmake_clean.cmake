file(REMOVE_RECURSE
  "CMakeFiles/fig02_blocking_rate.dir/fig02_blocking_rate.cpp.o"
  "CMakeFiles/fig02_blocking_rate.dir/fig02_blocking_rate.cpp.o.d"
  "fig02_blocking_rate"
  "fig02_blocking_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_blocking_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
