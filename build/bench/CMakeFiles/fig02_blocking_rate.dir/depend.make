# Empty dependencies file for fig02_blocking_rate.
# This may be replaced when dependencies are built.
