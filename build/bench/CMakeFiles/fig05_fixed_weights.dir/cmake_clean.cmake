file(REMOVE_RECURSE
  "CMakeFiles/fig05_fixed_weights.dir/fig05_fixed_weights.cpp.o"
  "CMakeFiles/fig05_fixed_weights.dir/fig05_fixed_weights.cpp.o.d"
  "fig05_fixed_weights"
  "fig05_fixed_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_fixed_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
