# Empty compiler generated dependencies file for fig05_fixed_weights.
# This may be replaced when dependencies are built.
