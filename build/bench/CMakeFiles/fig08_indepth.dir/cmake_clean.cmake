file(REMOVE_RECURSE
  "CMakeFiles/fig08_indepth.dir/fig08_indepth.cpp.o"
  "CMakeFiles/fig08_indepth.dir/fig08_indepth.cpp.o.d"
  "fig08_indepth"
  "fig08_indepth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_indepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
