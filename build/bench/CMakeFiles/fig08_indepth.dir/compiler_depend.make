# Empty compiler generated dependencies file for fig08_indepth.
# This may be replaced when dependencies are built.
