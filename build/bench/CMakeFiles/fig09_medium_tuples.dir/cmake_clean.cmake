file(REMOVE_RECURSE
  "CMakeFiles/fig09_medium_tuples.dir/fig09_medium_tuples.cpp.o"
  "CMakeFiles/fig09_medium_tuples.dir/fig09_medium_tuples.cpp.o.d"
  "fig09_medium_tuples"
  "fig09_medium_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_medium_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
