# Empty compiler generated dependencies file for fig09_medium_tuples.
# This may be replaced when dependencies are built.
