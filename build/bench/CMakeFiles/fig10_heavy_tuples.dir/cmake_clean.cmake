file(REMOVE_RECURSE
  "CMakeFiles/fig10_heavy_tuples.dir/fig10_heavy_tuples.cpp.o"
  "CMakeFiles/fig10_heavy_tuples.dir/fig10_heavy_tuples.cpp.o.d"
  "fig10_heavy_tuples"
  "fig10_heavy_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_heavy_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
