# Empty dependencies file for fig10_heavy_tuples.
# This may be replaced when dependencies are built.
