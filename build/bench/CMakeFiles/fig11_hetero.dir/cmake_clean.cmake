file(REMOVE_RECURSE
  "CMakeFiles/fig11_hetero.dir/fig11_hetero.cpp.o"
  "CMakeFiles/fig11_hetero.dir/fig11_hetero.cpp.o.d"
  "fig11_hetero"
  "fig11_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
