# Empty compiler generated dependencies file for fig11_hetero.
# This may be replaced when dependencies are built.
