file(REMOVE_RECURSE
  "CMakeFiles/fig12_clustering_indepth.dir/fig12_clustering_indepth.cpp.o"
  "CMakeFiles/fig12_clustering_indepth.dir/fig12_clustering_indepth.cpp.o.d"
  "fig12_clustering_indepth"
  "fig12_clustering_indepth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_clustering_indepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
