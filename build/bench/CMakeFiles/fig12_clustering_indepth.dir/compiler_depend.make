# Empty compiler generated dependencies file for fig12_clustering_indepth.
# This may be replaced when dependencies are built.
