file(REMOVE_RECURSE
  "CMakeFiles/fig13_clustering_scale.dir/fig13_clustering_scale.cpp.o"
  "CMakeFiles/fig13_clustering_scale.dir/fig13_clustering_scale.cpp.o.d"
  "fig13_clustering_scale"
  "fig13_clustering_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_clustering_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
