# Empty dependencies file for fig13_clustering_scale.
# This may be replaced when dependencies are built.
