file(REMOVE_RECURSE
  "CMakeFiles/sec44_rerouting.dir/sec44_rerouting.cpp.o"
  "CMakeFiles/sec44_rerouting.dir/sec44_rerouting.cpp.o.d"
  "sec44_rerouting"
  "sec44_rerouting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_rerouting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
