# Empty compiler generated dependencies file for sec44_rerouting.
# This may be replaced when dependencies are built.
