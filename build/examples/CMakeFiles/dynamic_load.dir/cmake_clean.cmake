file(REMOVE_RECURSE
  "CMakeFiles/dynamic_load.dir/dynamic_load.cpp.o"
  "CMakeFiles/dynamic_load.dir/dynamic_load.cpp.o.d"
  "dynamic_load"
  "dynamic_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
