# Empty dependencies file for dynamic_load.
# This may be replaced when dependencies are built.
