file(REMOVE_RECURSE
  "CMakeFiles/multi_region.dir/multi_region.cpp.o"
  "CMakeFiles/multi_region.dir/multi_region.cpp.o.d"
  "multi_region"
  "multi_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
