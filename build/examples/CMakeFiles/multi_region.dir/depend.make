# Empty dependencies file for multi_region.
# This may be replaced when dependencies are built.
