file(REMOVE_RECURSE
  "CMakeFiles/pipeline_app.dir/pipeline_app.cpp.o"
  "CMakeFiles/pipeline_app.dir/pipeline_app.cpp.o.d"
  "pipeline_app"
  "pipeline_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
