# Empty dependencies file for pipeline_app.
# This may be replaced when dependencies are built.
