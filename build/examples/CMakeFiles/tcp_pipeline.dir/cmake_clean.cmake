file(REMOVE_RECURSE
  "CMakeFiles/tcp_pipeline.dir/tcp_pipeline.cpp.o"
  "CMakeFiles/tcp_pipeline.dir/tcp_pipeline.cpp.o.d"
  "tcp_pipeline"
  "tcp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
