# Empty compiler generated dependencies file for tcp_pipeline.
# This may be replaced when dependencies are built.
