
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clustering.cc" "src/core/CMakeFiles/slb_core.dir/clustering.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/clustering.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/slb_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/controller.cc.o.d"
  "/root/repo/src/core/distance.cc" "src/core/CMakeFiles/slb_core.dir/distance.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/distance.cc.o.d"
  "/root/repo/src/core/monotone_regression.cc" "src/core/CMakeFiles/slb_core.dir/monotone_regression.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/monotone_regression.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/slb_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/policies.cc.o.d"
  "/root/repo/src/core/rap.cc" "src/core/CMakeFiles/slb_core.dir/rap.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/rap.cc.o.d"
  "/root/repo/src/core/rate_estimator.cc" "src/core/CMakeFiles/slb_core.dir/rate_estimator.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/rate_estimator.cc.o.d"
  "/root/repo/src/core/rate_function.cc" "src/core/CMakeFiles/slb_core.dir/rate_function.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/rate_function.cc.o.d"
  "/root/repo/src/core/wrr.cc" "src/core/CMakeFiles/slb_core.dir/wrr.cc.o" "gcc" "src/core/CMakeFiles/slb_core.dir/wrr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
