file(REMOVE_RECURSE
  "CMakeFiles/slb_core.dir/clustering.cc.o"
  "CMakeFiles/slb_core.dir/clustering.cc.o.d"
  "CMakeFiles/slb_core.dir/controller.cc.o"
  "CMakeFiles/slb_core.dir/controller.cc.o.d"
  "CMakeFiles/slb_core.dir/distance.cc.o"
  "CMakeFiles/slb_core.dir/distance.cc.o.d"
  "CMakeFiles/slb_core.dir/monotone_regression.cc.o"
  "CMakeFiles/slb_core.dir/monotone_regression.cc.o.d"
  "CMakeFiles/slb_core.dir/policies.cc.o"
  "CMakeFiles/slb_core.dir/policies.cc.o.d"
  "CMakeFiles/slb_core.dir/rap.cc.o"
  "CMakeFiles/slb_core.dir/rap.cc.o.d"
  "CMakeFiles/slb_core.dir/rate_estimator.cc.o"
  "CMakeFiles/slb_core.dir/rate_estimator.cc.o.d"
  "CMakeFiles/slb_core.dir/rate_function.cc.o"
  "CMakeFiles/slb_core.dir/rate_function.cc.o.d"
  "CMakeFiles/slb_core.dir/wrr.cc.o"
  "CMakeFiles/slb_core.dir/wrr.cc.o.d"
  "libslb_core.a"
  "libslb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
