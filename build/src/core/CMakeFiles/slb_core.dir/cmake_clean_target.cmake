file(REMOVE_RECURSE
  "libslb_core.a"
)
