# Empty dependencies file for slb_core.
# This may be replaced when dependencies are built.
