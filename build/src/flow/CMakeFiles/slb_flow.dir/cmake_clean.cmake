file(REMOVE_RECURSE
  "CMakeFiles/slb_flow.dir/pipeline.cc.o"
  "CMakeFiles/slb_flow.dir/pipeline.cc.o.d"
  "libslb_flow.a"
  "libslb_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
