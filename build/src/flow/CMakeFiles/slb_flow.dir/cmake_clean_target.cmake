file(REMOVE_RECURSE
  "libslb_flow.a"
)
