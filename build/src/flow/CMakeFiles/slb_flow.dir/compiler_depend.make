# Empty compiler generated dependencies file for slb_flow.
# This may be replaced when dependencies are built.
