
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/local_region.cc" "src/runtime/CMakeFiles/slb_runtime.dir/local_region.cc.o" "gcc" "src/runtime/CMakeFiles/slb_runtime.dir/local_region.cc.o.d"
  "/root/repo/src/runtime/merger_pe.cc" "src/runtime/CMakeFiles/slb_runtime.dir/merger_pe.cc.o" "gcc" "src/runtime/CMakeFiles/slb_runtime.dir/merger_pe.cc.o.d"
  "/root/repo/src/runtime/worker_pe.cc" "src/runtime/CMakeFiles/slb_runtime.dir/worker_pe.cc.o" "gcc" "src/runtime/CMakeFiles/slb_runtime.dir/worker_pe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/slb_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
