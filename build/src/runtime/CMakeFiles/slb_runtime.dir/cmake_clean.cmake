file(REMOVE_RECURSE
  "CMakeFiles/slb_runtime.dir/local_region.cc.o"
  "CMakeFiles/slb_runtime.dir/local_region.cc.o.d"
  "CMakeFiles/slb_runtime.dir/merger_pe.cc.o"
  "CMakeFiles/slb_runtime.dir/merger_pe.cc.o.d"
  "CMakeFiles/slb_runtime.dir/worker_pe.cc.o"
  "CMakeFiles/slb_runtime.dir/worker_pe.cc.o.d"
  "libslb_runtime.a"
  "libslb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
