file(REMOVE_RECURSE
  "libslb_runtime.a"
)
