# Empty dependencies file for slb_runtime.
# This may be replaced when dependencies are built.
