
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/channel.cc" "src/sim/CMakeFiles/slb_sim.dir/channel.cc.o" "gcc" "src/sim/CMakeFiles/slb_sim.dir/channel.cc.o.d"
  "/root/repo/src/sim/harness.cc" "src/sim/CMakeFiles/slb_sim.dir/harness.cc.o" "gcc" "src/sim/CMakeFiles/slb_sim.dir/harness.cc.o.d"
  "/root/repo/src/sim/merger.cc" "src/sim/CMakeFiles/slb_sim.dir/merger.cc.o" "gcc" "src/sim/CMakeFiles/slb_sim.dir/merger.cc.o.d"
  "/root/repo/src/sim/region.cc" "src/sim/CMakeFiles/slb_sim.dir/region.cc.o" "gcc" "src/sim/CMakeFiles/slb_sim.dir/region.cc.o.d"
  "/root/repo/src/sim/splitter.cc" "src/sim/CMakeFiles/slb_sim.dir/splitter.cc.o" "gcc" "src/sim/CMakeFiles/slb_sim.dir/splitter.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/slb_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/slb_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/worker.cc" "src/sim/CMakeFiles/slb_sim.dir/worker.cc.o" "gcc" "src/sim/CMakeFiles/slb_sim.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
