file(REMOVE_RECURSE
  "CMakeFiles/slb_sim.dir/channel.cc.o"
  "CMakeFiles/slb_sim.dir/channel.cc.o.d"
  "CMakeFiles/slb_sim.dir/harness.cc.o"
  "CMakeFiles/slb_sim.dir/harness.cc.o.d"
  "CMakeFiles/slb_sim.dir/merger.cc.o"
  "CMakeFiles/slb_sim.dir/merger.cc.o.d"
  "CMakeFiles/slb_sim.dir/region.cc.o"
  "CMakeFiles/slb_sim.dir/region.cc.o.d"
  "CMakeFiles/slb_sim.dir/splitter.cc.o"
  "CMakeFiles/slb_sim.dir/splitter.cc.o.d"
  "CMakeFiles/slb_sim.dir/trace.cc.o"
  "CMakeFiles/slb_sim.dir/trace.cc.o.d"
  "CMakeFiles/slb_sim.dir/worker.cc.o"
  "CMakeFiles/slb_sim.dir/worker.cc.o.d"
  "libslb_sim.a"
  "libslb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
