file(REMOVE_RECURSE
  "libslb_sim.a"
)
