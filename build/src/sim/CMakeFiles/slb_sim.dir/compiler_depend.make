# Empty compiler generated dependencies file for slb_sim.
# This may be replaced when dependencies are built.
