file(REMOVE_RECURSE
  "CMakeFiles/slb_transport.dir/framing.cc.o"
  "CMakeFiles/slb_transport.dir/framing.cc.o.d"
  "CMakeFiles/slb_transport.dir/instrumented_sender.cc.o"
  "CMakeFiles/slb_transport.dir/instrumented_sender.cc.o.d"
  "CMakeFiles/slb_transport.dir/socket.cc.o"
  "CMakeFiles/slb_transport.dir/socket.cc.o.d"
  "libslb_transport.a"
  "libslb_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
