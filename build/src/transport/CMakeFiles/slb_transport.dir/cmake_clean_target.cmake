file(REMOVE_RECURSE
  "libslb_transport.a"
)
