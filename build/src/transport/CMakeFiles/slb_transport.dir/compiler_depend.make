# Empty compiler generated dependencies file for slb_transport.
# This may be replaced when dependencies are built.
