file(REMOVE_RECURSE
  "CMakeFiles/slb_util.dir/rng.cc.o"
  "CMakeFiles/slb_util.dir/rng.cc.o.d"
  "libslb_util.a"
  "libslb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
