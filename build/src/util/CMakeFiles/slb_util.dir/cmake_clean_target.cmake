file(REMOVE_RECURSE
  "libslb_util.a"
)
