# Empty dependencies file for slb_util.
# This may be replaced when dependencies are built.
