file(REMOVE_RECURSE
  "CMakeFiles/test_clustering.dir/test_clustering.cc.o"
  "CMakeFiles/test_clustering.dir/test_clustering.cc.o.d"
  "test_clustering"
  "test_clustering.pdb"
  "test_clustering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
