file(REMOVE_RECURSE
  "CMakeFiles/test_controller_stepup.dir/test_controller_stepup.cc.o"
  "CMakeFiles/test_controller_stepup.dir/test_controller_stepup.cc.o.d"
  "test_controller_stepup"
  "test_controller_stepup.pdb"
  "test_controller_stepup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller_stepup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
