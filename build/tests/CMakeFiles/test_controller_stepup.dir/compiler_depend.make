# Empty compiler generated dependencies file for test_controller_stepup.
# This may be replaced when dependencies are built.
