file(REMOVE_RECURSE
  "CMakeFiles/test_distance.dir/test_distance.cc.o"
  "CMakeFiles/test_distance.dir/test_distance.cc.o.d"
  "test_distance"
  "test_distance.pdb"
  "test_distance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
