file(REMOVE_RECURSE
  "CMakeFiles/test_monotone_regression.dir/test_monotone_regression.cc.o"
  "CMakeFiles/test_monotone_regression.dir/test_monotone_regression.cc.o.d"
  "test_monotone_regression"
  "test_monotone_regression.pdb"
  "test_monotone_regression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monotone_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
