# Empty compiler generated dependencies file for test_monotone_regression.
# This may be replaced when dependencies are built.
