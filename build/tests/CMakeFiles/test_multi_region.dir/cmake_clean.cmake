file(REMOVE_RECURSE
  "CMakeFiles/test_multi_region.dir/test_multi_region.cc.o"
  "CMakeFiles/test_multi_region.dir/test_multi_region.cc.o.d"
  "test_multi_region"
  "test_multi_region.pdb"
  "test_multi_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
