# Empty dependencies file for test_multi_region.
# This may be replaced when dependencies are built.
