file(REMOVE_RECURSE
  "CMakeFiles/test_rap.dir/test_rap.cc.o"
  "CMakeFiles/test_rap.dir/test_rap.cc.o.d"
  "test_rap"
  "test_rap.pdb"
  "test_rap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
