# Empty compiler generated dependencies file for test_rap.
# This may be replaced when dependencies are built.
