
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rate_estimator.cc" "tests/CMakeFiles/test_rate_estimator.dir/test_rate_estimator.cc.o" "gcc" "tests/CMakeFiles/test_rate_estimator.dir/test_rate_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/slb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/slb_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/slb_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/slb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
