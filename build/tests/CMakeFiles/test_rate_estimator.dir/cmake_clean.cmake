file(REMOVE_RECURSE
  "CMakeFiles/test_rate_estimator.dir/test_rate_estimator.cc.o"
  "CMakeFiles/test_rate_estimator.dir/test_rate_estimator.cc.o.d"
  "test_rate_estimator"
  "test_rate_estimator.pdb"
  "test_rate_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
