# Empty compiler generated dependencies file for test_rate_estimator.
# This may be replaced when dependencies are built.
