file(REMOVE_RECURSE
  "CMakeFiles/test_rate_function.dir/test_rate_function.cc.o"
  "CMakeFiles/test_rate_function.dir/test_rate_function.cc.o.d"
  "test_rate_function"
  "test_rate_function.pdb"
  "test_rate_function[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
