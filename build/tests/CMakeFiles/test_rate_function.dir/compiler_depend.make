# Empty compiler generated dependencies file for test_rate_function.
# This may be replaced when dependencies are built.
