file(REMOVE_RECURSE
  "CMakeFiles/test_sim_channel.dir/test_sim_channel.cc.o"
  "CMakeFiles/test_sim_channel.dir/test_sim_channel.cc.o.d"
  "test_sim_channel"
  "test_sim_channel.pdb"
  "test_sim_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
