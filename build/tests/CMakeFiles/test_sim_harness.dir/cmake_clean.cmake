file(REMOVE_RECURSE
  "CMakeFiles/test_sim_harness.dir/test_sim_harness.cc.o"
  "CMakeFiles/test_sim_harness.dir/test_sim_harness.cc.o.d"
  "test_sim_harness"
  "test_sim_harness.pdb"
  "test_sim_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
