# Empty dependencies file for test_sim_harness.
# This may be replaced when dependencies are built.
