file(REMOVE_RECURSE
  "CMakeFiles/test_sim_merger.dir/test_sim_merger.cc.o"
  "CMakeFiles/test_sim_merger.dir/test_sim_merger.cc.o.d"
  "test_sim_merger"
  "test_sim_merger.pdb"
  "test_sim_merger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_merger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
