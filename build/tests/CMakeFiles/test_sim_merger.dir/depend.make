# Empty dependencies file for test_sim_merger.
# This may be replaced when dependencies are built.
