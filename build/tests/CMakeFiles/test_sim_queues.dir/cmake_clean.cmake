file(REMOVE_RECURSE
  "CMakeFiles/test_sim_queues.dir/test_sim_queues.cc.o"
  "CMakeFiles/test_sim_queues.dir/test_sim_queues.cc.o.d"
  "test_sim_queues"
  "test_sim_queues.pdb"
  "test_sim_queues[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
