# Empty compiler generated dependencies file for test_sim_queues.
# This may be replaced when dependencies are built.
