file(REMOVE_RECURSE
  "CMakeFiles/test_sim_region.dir/test_sim_region.cc.o"
  "CMakeFiles/test_sim_region.dir/test_sim_region.cc.o.d"
  "test_sim_region"
  "test_sim_region.pdb"
  "test_sim_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
