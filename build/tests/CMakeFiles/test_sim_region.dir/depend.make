# Empty dependencies file for test_sim_region.
# This may be replaced when dependencies are built.
