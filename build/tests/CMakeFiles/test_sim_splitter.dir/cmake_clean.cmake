file(REMOVE_RECURSE
  "CMakeFiles/test_sim_splitter.dir/test_sim_splitter.cc.o"
  "CMakeFiles/test_sim_splitter.dir/test_sim_splitter.cc.o.d"
  "test_sim_splitter"
  "test_sim_splitter.pdb"
  "test_sim_splitter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_splitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
