# Empty compiler generated dependencies file for test_sim_splitter.
# This may be replaced when dependencies are built.
