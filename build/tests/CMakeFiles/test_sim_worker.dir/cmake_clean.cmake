file(REMOVE_RECURSE
  "CMakeFiles/test_sim_worker.dir/test_sim_worker.cc.o"
  "CMakeFiles/test_sim_worker.dir/test_sim_worker.cc.o.d"
  "test_sim_worker"
  "test_sim_worker.pdb"
  "test_sim_worker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
