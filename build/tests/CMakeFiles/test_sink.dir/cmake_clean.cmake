file(REMOVE_RECURSE
  "CMakeFiles/test_sink.dir/test_sink.cc.o"
  "CMakeFiles/test_sink.dir/test_sink.cc.o.d"
  "test_sink"
  "test_sink.pdb"
  "test_sink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
