# Empty dependencies file for test_sink.
# This may be replaced when dependencies are built.
