file(REMOVE_RECURSE
  "CMakeFiles/test_unordered.dir/test_unordered.cc.o"
  "CMakeFiles/test_unordered.dir/test_unordered.cc.o.d"
  "test_unordered"
  "test_unordered.pdb"
  "test_unordered[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
