# Empty compiler generated dependencies file for test_unordered.
# This may be replaced when dependencies are built.
