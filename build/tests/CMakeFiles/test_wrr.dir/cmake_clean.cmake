file(REMOVE_RECURSE
  "CMakeFiles/test_wrr.dir/test_wrr.cc.o"
  "CMakeFiles/test_wrr.dir/test_wrr.cc.o.d"
  "test_wrr"
  "test_wrr.pdb"
  "test_wrr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
