# Empty compiler generated dependencies file for test_wrr.
# This may be replaced when dependencies are built.
