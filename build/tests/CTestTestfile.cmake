# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_monotone_regression[1]_include.cmake")
include("/root/repo/build/tests/test_rate_function[1]_include.cmake")
include("/root/repo/build/tests/test_rate_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_rap[1]_include.cmake")
include("/root/repo/build/tests/test_wrr[1]_include.cmake")
include("/root/repo/build/tests/test_distance[1]_include.cmake")
include("/root/repo/build/tests/test_clustering[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_sim_event[1]_include.cmake")
include("/root/repo/build/tests/test_sim_queues[1]_include.cmake")
include("/root/repo/build/tests/test_sim_channel[1]_include.cmake")
include("/root/repo/build/tests/test_sim_merger[1]_include.cmake")
include("/root/repo/build/tests/test_sim_worker[1]_include.cmake")
include("/root/repo/build/tests/test_sim_splitter[1]_include.cmake")
include("/root/repo/build/tests/test_sim_region[1]_include.cmake")
include("/root/repo/build/tests/test_sim_harness[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_unordered[1]_include.cmake")
include("/root/repo/build/tests/test_multi_region[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_sink[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_controller_stepup[1]_include.cmake")
include("/root/repo/build/tests/test_latency[1]_include.cmake")
