// Extending the library: plugging a custom routing policy into the
// region.
//
//   $ ./build/examples/custom_policy
//
// Implements a "join the shortest queue"-flavored policy against the
// SplitPolicy interface — it routes each tuple to the connection with the
// least cumulative blocking so far — and races it against round-robin and
// the paper's LB-adaptive on a skewed-capacity region. It loses to the
// model-based scheme for the reason Section 4.4 explains: blocking is a
// *late* and *rare* signal, so reacting to raw counters (instead of a
// predictive function of allocation weight) under-corrects.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "sim/harness.h"

using namespace slb;
using namespace slb::sim;

namespace {

/// Routes to the connection with the smallest recent blocking time,
/// refreshed once per sampling period. Between samples it spreads picks
/// round-robin over the current "best half" of the connections.
class LeastBlockedPolicy : public SplitPolicy {
 public:
  explicit LeastBlockedPolicy(int connections)
      : weights_(even_weights(connections)),
        prev_(static_cast<std::size_t>(connections), 0),
        preferred_(static_cast<std::size_t>(connections)) {
    for (std::size_t j = 0; j < preferred_.size(); ++j) {
      preferred_[j] = static_cast<ConnectionId>(j);
    }
  }

  ConnectionId pick_connection() override {
    // Cycle over the half of the connections that blocked least recently.
    const std::size_t half = std::max<std::size_t>(1, preferred_.size() / 2);
    const ConnectionId choice = preferred_[cursor_ % half];
    ++cursor_;
    return choice;
  }

  void on_sample(TimeNs /*now*/,
                 std::span<const DurationNs> cumulative) override {
    std::vector<DurationNs> delta(cumulative.size());
    for (std::size_t j = 0; j < cumulative.size(); ++j) {
      delta[j] = cumulative[j] - prev_[j];
      prev_[j] = cumulative[j];
    }
    std::sort(preferred_.begin(), preferred_.end(),
              [&](ConnectionId a, ConnectionId b) {
                return delta[static_cast<std::size_t>(a)] <
                       delta[static_cast<std::size_t>(b)];
              });
  }

  const WeightVector& weights() const override { return weights_; }
  std::string name() const override { return "least-blocked"; }

 private:
  WeightVector weights_;  // nominal; this policy routes ad hoc
  std::vector<DurationNs> prev_;
  std::vector<ConnectionId> preferred_;
  std::size_t cursor_ = 0;
};

std::uint64_t run(std::unique_ptr<SplitPolicy> policy,
                  const ExperimentSpec& spec) {
  Region region(build_region_config(spec), std::move(policy),
                build_load_profile(spec), spec.hosts);
  region.run_for(spec.scale.from_paper_seconds(spec.duration_paper_s));
  return region.emitted();
}

}  // namespace

int main() {
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 2000;
  spec.duration_paper_s = 120;
  spec.loads.push_back({{0}, 20.0, -1.0});  // worker 0 permanently 20x

  const std::uint64_t rr =
      run(std::make_unique<RoundRobinPolicy>(spec.workers), spec);
  const std::uint64_t least =
      run(std::make_unique<LeastBlockedPolicy>(spec.workers), spec);
  const std::uint64_t lb = run(make_policy(PolicyKind::kLbAdaptive, spec),
                               spec);

  std::printf("tuples processed (4 PEs, worker 0 at 20x, %.0f paper-s):\n",
              spec.duration_paper_s);
  std::printf("  round-robin   : %10llu  (1.00x)\n",
              static_cast<unsigned long long>(rr));
  std::printf("  least-blocked : %10llu  (%.2fx)  <- custom policy\n",
              static_cast<unsigned long long>(least),
              static_cast<double>(least) / static_cast<double>(rr));
  std::printf("  LB-adaptive   : %10llu  (%.2fx)  <- the paper's model\n",
              static_cast<unsigned long long>(lb),
              static_cast<double>(lb) / static_cast<double>(rr));
  return 0;
}
