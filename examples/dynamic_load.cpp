// Dynamic load: exogenous load that arrives, moves, and departs.
//
//   $ ./build/examples/dynamic_load
//
// A 6-worker region where external load hops from worker to worker every
// 40 paper-seconds (think: another tenant's job landing on one host after
// another). Compares naive round-robin against the paper's LB-adaptive on
// total tuples processed, and prints LB's weight trajectory so you can
// watch it chase the load around the cluster.
#include <cstdio>

#include "sim/harness.h"
#include "sim/trace.h"

using namespace slb;
using namespace slb::sim;

namespace {

ExperimentSpec hopping_load_spec() {
  ExperimentSpec spec;
  spec.workers = 6;
  spec.base_multiplies = 2000;
  spec.duration_paper_s = 240;
  return spec;
}

/// Adds the hop schedule: 20x load on worker (phase % 6) during phase.
LoadProfile hopping_profile(const ExperimentSpec& spec) {
  LoadProfile profile = build_load_profile(spec);
  for (int phase = 0; phase < 6; ++phase) {
    const int victim = phase;
    const TimeNs start = spec.scale.from_paper_seconds(40.0 * phase);
    const TimeNs end = spec.scale.from_paper_seconds(40.0 * (phase + 1));
    profile.add_step(victim, start, 20.0);
    profile.add_step(victim, end, 1.0);
  }
  return profile;
}

std::uint64_t run(PolicyKind kind, const ExperimentSpec& spec,
                  bool print_trace) {
  Region region(build_region_config(spec), make_policy(kind, spec),
                hopping_profile(spec), spec.hosts);
  TraceRecorder trace(spec.scale);
  if (print_trace) trace.attach(region);
  region.run_for(spec.scale.from_paper_seconds(spec.duration_paper_s));
  if (print_trace) {
    std::printf("LB-adaptive weights while 20x load hops across workers "
                "(one victim per 40s phase):\n%s\n",
                trace.render_weights(20).c_str());
  }
  return region.emitted();
}

}  // namespace

int main() {
  const ExperimentSpec spec = hopping_load_spec();
  const std::uint64_t lb = run(PolicyKind::kLbAdaptive, spec, true);
  const std::uint64_t rr = run(PolicyKind::kRoundRobin, spec, false);

  std::printf("tuples processed in %.0f paper-seconds:\n",
              spec.duration_paper_s);
  std::printf("  round-robin : %10llu\n",
              static_cast<unsigned long long>(rr));
  std::printf("  LB-adaptive : %10llu  (%.2fx)\n",
              static_cast<unsigned long long>(lb),
              static_cast<double>(lb) / static_cast<double>(rr));
  std::printf("\nthe gap is the cost of letting the slowest worker gate an "
              "ordered parallel region (paper, Section 4.1).\n");
  return 0;
}
