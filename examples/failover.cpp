// Failover: a worker PE dies mid-run over real TCP, and comes back.
//
//   $ ./build/examples/failover
//
// A 3-worker region of the threaded runtime (real loopback sockets, real
// worker threads). One second in, worker 1 is killed abruptly — its
// sockets reset, everything buffered in its kernel queues is lost. The
// splitter sees the broken pipe, quarantines the connection (weight 0,
// survivors renormalized), and retries it with exponential backoff. Two
// seconds later a stateless replacement PE becomes available; the next
// reconnect attempt lands, the merger re-admits the stream via a hello
// frame, and the load balancer probes the connection back up to full
// weight.
//
// Watch the weight column: full share -> 0 at the kill -> geometric
// climb after the restart. The merger's output stays in order throughout;
// tuples that died with the worker are skipped as counted gaps.
//
// With `--safe-mode`, overload protection (DESIGN.md §7) is enabled: the
// closed-loop source keeps the region saturated, so the controller
// declares overload, and the kill then degrades the survivors to an even
// 500/500 WRR split (predictable degradation) instead of re-optimizing
// against saturated rate functions. While overload stays declared the
// weights are frozen, so the post-restart climb is deferred until the
// region has slack again.
#include <cstdio>
#include <cstring>
#include <memory>

#include "runtime/local_region.h"

using namespace slb;
using namespace slb::rt;

int main(int argc, char** argv) {
  const bool safe_mode =
      argc > 1 && std::strcmp(argv[1], "--safe-mode") == 0;

  LocalRegionConfig cfg;
  cfg.workers = 3;
  cfg.multiplies = 20000;
  cfg.work_mode = WorkMode::kTimed;  // stable capacities on small machines
  cfg.sample_period = millis(100);
  cfg.failure_events = {
      {millis(1000), 1, /*restart=*/false},  // kill -9, in spirit
      {millis(3000), 1, /*restart=*/true},   // replacement PE available
  };

  ControllerConfig ctrl;
  if (safe_mode) {
    ctrl.enable_overload_protection = true;
    ctrl.safe_mode_on_overload_fault = true;
    std::printf("overload protection ON: a kill under declared overload "
                "falls back to an even split over survivors\n");
  }
  LocalRegion region(cfg, std::make_unique<LoadBalancingPolicy>(3, ctrl));

  std::printf("3 workers; worker 1 dies at t=1.0s, replacement at "
              "t=3.0s\n");
  std::printf("%8s %22s %12s\n", "t(s)", "weights [w0 w1 w2]", "emitted");
  region.set_sample_hook([](const LocalSample& s) {
    std::printf("%8.1f       [%4d %4d %4d] %12llu%s\n",
                static_cast<double>(s.elapsed) / 1e9, s.weights[0],
                s.weights[1], s.weights[2],
                static_cast<unsigned long long>(s.emitted),
                s.weights[1] == 0 ? "   <- worker 1 down" : "");
  });

  const LocalRunStats stats = region.run(millis(5000));

  std::printf("\nsent=%llu emitted=%llu gaps=%llu (lost with the crash)\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.emitted),
              static_cast<unsigned long long>(stats.gaps));
  std::printf("channel failures=%llu reconnects=%llu failovers=%llu\n",
              static_cast<unsigned long long>(stats.channel_failures),
              static_cast<unsigned long long>(stats.reconnects),
              static_cast<unsigned long long>(stats.failovers));
  std::printf("order %s: every emitted tuple in sequence, every sent "
              "tuple emitted or accounted as a gap\n",
              stats.order_ok ? "OK" : "VIOLATED");
  std::printf("final weights: [%d %d %d]\n", stats.final_weights[0],
              stats.final_weights[1], stats.final_weights[2]);
  return stats.order_ok ? 0 : 1;
}
