// Heterogeneous cluster: placements across hosts of different speeds.
//
//   $ ./build/examples/heterogeneous_cluster
//
// Recreates the spirit of the paper's Section 6.5: a "fast" host (1.8x
// per-thread speed, 16 hardware threads) and a "slow" host (1.0x, 8
// threads). For a growing PE count we compare keeping everything on the
// fast host vs spreading over both hosts with round-robin vs spreading
// with the blocking-rate load balancer — showing the paper's punchline
// that *adding a slow host improves performance only if the balancer can
// discover each host's capacity*.
#include <cstdio>
#include <vector>

#include "sim/harness.h"

using namespace slb;
using namespace slb::sim;

namespace {

ExperimentSpec spec_for(int workers, std::vector<int> placement) {
  ExperimentSpec spec;
  spec.workers = workers;
  spec.base_multiplies = 20'000;
  spec.duration_paper_s = 120;
  spec.hosts = HostModel({{1.8, 16}, {1.0, 8}}, std::move(placement));
  return spec;
}

double throughput(PolicyKind kind, const ExperimentSpec& spec) {
  auto region = make_region(kind, spec);
  region->run_for(spec.scale.from_paper_seconds(spec.duration_paper_s));
  const double virtual_s = spec.duration_paper_s *
                           static_cast<double>(spec.scale.paper_second) /
                           1e9;
  return static_cast<double>(region->emitted()) / virtual_s / 1e6;
}

}  // namespace

int main() {
  std::printf("fast host: 1.8x speed, 16 threads | slow host: 1.0x, 8 "
              "threads | 20,000-multiply tuples\n\n");
  std::printf("%6s %15s %15s %15s %15s\n", "PEs", "all-fast (M/s)",
              "even+RR (M/s)", "even+LB (M/s)", "16/8+LB (M/s)");
  for (int workers : {8, 16, 24}) {
    const std::vector<int> all_fast(static_cast<std::size_t>(workers), 0);
    std::vector<int> even;
    for (int w = 0; w < workers; ++w) even.push_back(w < workers / 2 ? 0 : 1);
    // Capacity-aware placement: fill the fast host's 16 hardware threads
    // first (the paper's best 24-PE configuration: 16 fast + 8 slow).
    std::vector<int> capacity;
    for (int w = 0; w < workers; ++w) capacity.push_back(w < 16 ? 0 : 1);

    const double fast =
        throughput(PolicyKind::kRoundRobin, spec_for(workers, all_fast));
    const double even_rr =
        throughput(PolicyKind::kRoundRobin, spec_for(workers, even));
    const double even_lb =
        throughput(PolicyKind::kLbAdaptive, spec_for(workers, even));
    const double cap_lb =
        throughput(PolicyKind::kLbAdaptive, spec_for(workers, capacity));
    std::printf("%6d %15.3f %15.3f %15.3f %15.3f%s\n", workers, fast,
                even_rr, even_lb, cap_lb,
                cap_lb > fast ? "  <- slow host now *helps*" : "");
  }
  std::printf(
      "\nwith few PEs the fast host alone wins; once its 16 threads "
      "saturate, adding the slow host pays off — but only when placement "
      "leaves the fast host unoversubscribed AND the balancer discovers "
      "each host's capacity (round-robin is dragged down by the ordered "
      "merge).\n");
  return 0;
}
