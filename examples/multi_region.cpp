// Multi-region cluster: the paper's future work (Section 8), runnable.
//
//   $ ./build/examples/multi_region
//
// Two independent streaming applications share two hosts. Each has its
// own splitter, its own blocking-rate controller, and no knowledge of
// the other — yet when application B ramps up on host 0, application A's
// controller sees the slowdown purely through its own TCP blocking rates
// and migrates load to its workers on host 1. When B goes quiet again, A
// re-explores and returns to an even split. Cluster-level adaptation
// from purely local control.
#include <cstdio>
#include <memory>

#include "sim/region.h"
#include "sim/shared_host.h"

using namespace slb;
using namespace slb::sim;

namespace {

RegionConfig region_config(int workers, DurationNs base_cost) {
  RegionConfig cfg;
  cfg.workers = workers;
  cfg.base_cost = base_cost;
  cfg.sample_period = millis(10);  // one "paper second"
  cfg.send_buffer = 32;
  cfg.recv_buffer = 32;
  return cfg;
}

}  // namespace

int main() {
  Simulator sim;
  SharedHostSet hosts({{1.0, 4}, {1.0, 4}});  // two 4-thread hosts

  // Application A: 4 workers split across both hosts, LB-adaptive.
  Region app_a(region_config(4, micros(10)),
               std::make_unique<LoadBalancingPolicy>(4, ControllerConfig{}),
               LoadProfile{}, HostModel{}, &sim,
               SharedPlacement{&hosts, {0, 0, 1, 1}});

  // Application B: 4 workers all on host 0. Its tuples are trivial for
  // the first 100 "seconds", heavy for the next 100, trivial again after
  // — a bursty co-tenant.
  LoadProfile b_load(4);
  for (int w = 0; w < 4; ++w) {
    b_load.add_step(w, seconds_f(1.0), 100.0);   // t=100 paper-s: 100x
    b_load.add_step(w, seconds_f(2.0), 1.0);     // t=200 paper-s: quiet
  }
  RegionConfig b_cfg = region_config(4, micros(2));
  b_cfg.source_interval = micros(50);  // open loop: 20K offered tuples/s
  Region app_b(b_cfg, std::make_unique<RoundRobinPolicy>(4),
               std::move(b_load), HostModel{}, &sim,
               SharedPlacement{&hosts, {0, 0, 0, 0}});

  app_a.start();
  app_b.start();

  std::printf("app A's allocation weights (workers 0,1 on host 0 — shared "
              "with app B; workers 2,3 on host 1):\n");
  std::printf("%8s %26s %22s\n", "paper_s", "A weights [h0 h0 h1 h1]",
              "B busy on host 0?");
  for (int step = 0; step < 15; ++step) {
    sim.run_until(sim.now() + millis(200));  // 20 paper-seconds per row
    const WeightVector& w = app_a.policy().weights();
    const double t = static_cast<double>(sim.now()) / millis(10);
    const char* phase = (t >= 100 && t < 200) ? "yes (100x burst)" : "no";
    std::printf("%8.0f    [%4d %4d %4d %4d] %22s\n", t, w[0], w[1], w[2],
                w[3], phase);
  }

  const WeightVector& w = app_a.policy().weights();
  std::printf("\napp A processed %llu tuples, app B %llu; A's final split "
              "host0=%d vs host1=%d\n",
              static_cast<unsigned long long>(app_a.emitted()),
              static_cast<unsigned long long>(app_b.emitted()),
              w[0] + w[1], w[2] + w[3]);
  std::printf("no controller ever saw the other application — only its own "
              "connections' blocking rates.\n");
  return 0;
}
