// A full streaming application in the shape of the paper's Figure 1:
// a pipeline with an embedded, dynamically balanced data-parallel region.
//
//   $ ./build/examples/pipeline_app
//
//   source -> parse -> enrich -> [ score x 6, LB-adaptive ] -> emit -> sink
//
// The "score" region is the expensive part (data parallelism pays for
// it); two of its six replicas carry 25x external load for the first
// half of the run. Watch the region's weights shed and recover while the
// pipeline keeps delivering strictly in order end to end — the merger
// restores sequential semantics inside the region, and every hop's
// bounded channel propagates back pressure all the way to the source.
#include <cstdio>
#include <memory>

#include "flow/pipeline.h"

using namespace slb;
using namespace slb::flow;

int main() {
  PipelineConfig config;
  config.sample_period = millis(10);  // one "paper second"

  sim::LoadProfile score_load(6);
  score_load.add_load_until(0, 25.0, seconds_f(1.0));  // until t=100 s
  score_load.add_load_until(1, 25.0, seconds_f(1.0));

  PipelineBuilder builder(config);
  builder.op("parse", micros(1));
  builder.op("enrich", micros(2));
  builder.parallel("score", 6, micros(30),
                   std::make_unique<LoadBalancingPolicy>(6,
                                                         ControllerConfig{}),
                   /*ordered=*/true, std::move(score_load));
  builder.op("emit", micros(1));
  auto pipeline = builder.build();

  std::printf("score-region weights (replicas 0,1 carry 25x load until "
              "t=100):\n");
  std::printf("%8s %30s %14s\n", "paper_s", "weights", "delivered");
  for (int step = 1; step <= 10; ++step) {
    pipeline->run_for(millis(200));  // 20 paper-seconds
    const WeightVector& w = pipeline->stage_policy(2).weights();
    std::printf("%8d   [%4d %4d %4d %4d %4d %4d] %14llu\n", step * 20,
                w[0], w[1], w[2], w[3], w[4], w[5],
                static_cast<unsigned long long>(pipeline->delivered()));
  }

  std::printf("\nend-to-end sequential semantics: %s\n",
              pipeline->order_ok() ? "preserved" : "VIOLATED");
  std::printf("per-stage processed: ");
  for (int s = 0; s < pipeline->stages(); ++s) {
    std::printf("%s=%llu ", pipeline->stage_name(s).c_str(),
                static_cast<unsigned long long>(pipeline->stage_processed(s)));
  }
  std::printf("\nsource blocked %.2f virtual-s: the region's early "
              "bottleneck back-pressured the whole pipeline.\n",
              to_seconds(pipeline->source_blocked()));
  std::printf("end-to-end latency: mean %.1f us, max %.2f ms\n",
              pipeline->latency().mean() / 1e3,
              pipeline->latency().max() / 1e6);
  return 0;
}
