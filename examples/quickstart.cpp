// Quickstart: build a simulated data-parallel region, give one worker a
// burst of external load, and watch the blocking-rate load balancer shed
// and re-grow its allocation.
//
//   $ ./build/examples/quickstart
//
// The library mirrors the paper's architecture: a single-threaded
// splitter feeds N workers over TCP-like channels; an in-order merger
// restores sequential semantics; the only feedback signal is how long
// the splitter spent *blocked* per connection.
#include <cstdio>

#include "sim/harness.h"
#include "sim/trace.h"

using namespace slb;
using namespace slb::sim;

int main() {
  // 1. Describe the experiment in the paper's vocabulary: 4 workers,
  //    tuples costing 1,000 integer multiplies, worker 0 carrying 50x
  //    external load for the first 30 "paper seconds".
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = 120;
  spec.loads.push_back({{0}, /*multiplier=*/50.0, /*until_paper_s=*/30.0});

  // 2. Build the region with the paper's full scheme (LB-adaptive =
  //    blocking-rate functions + minimax RAP + exploration decay).
  auto region = make_region(PolicyKind::kLbAdaptive, spec);

  // 3. Attach a trace and run. The simulator compresses time: 120 paper
  //    seconds complete in well under a wall-clock second.
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.from_paper_seconds(spec.duration_paper_s));

  // 4. Inspect what happened.
  std::printf("allocation weights over time (0.1%% units, 4 workers):\n");
  std::printf("%s\n", trace.render_weights(10).c_str());
  std::printf("tuples processed: %llu (order preserved by construction: "
              "the merger emits strictly by sequence number)\n",
              static_cast<unsigned long long>(region->emitted()));

  const WeightVector& w = region->policy().weights();
  std::printf("final weights: [%d %d %d %d] — worker 0 recovered its even "
              "share after the load lifted at t=30s\n",
              w[0], w[1], w[2], w[3]);
  return 0;
}
