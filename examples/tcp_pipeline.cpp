// Real TCP pipeline: the threaded runtime with the paper's actual
// measurement mechanism (MSG_DONTWAIT sends + timed waits on real kernel
// sockets over loopback).
//
//   $ ./build/examples/tcp_pipeline
//
// Three worker PEs (threads) each behind a real TCP connection; worker 0
// permanently carries 20x external load. Watch the live blocking rates
// and the weights move away from it — this is the same controller code
// the simulator uses, fed by real kernel blocking time. Runs ~4 s.
#include <cstdio>
#include <memory>

#include "runtime/local_region.h"

using namespace slb;
using namespace slb::rt;

int main() {
  LocalRegionConfig config;
  config.workers = 3;
  config.multiplies = 4'000'000;  // 4 ms of service per tuple
  // kTimed waits the service time out instead of spinning, so the demo
  // behaves the same on a laptop with 2 cores as on a 16-core server;
  // switch to WorkMode::kSpin for the paper's real integer-multiply
  // workload.
  config.work_mode = WorkMode::kTimed;
  // Large payloads keep the kernel buffers shallow in *tuples* (a dozen
  // rather than hundreds), so back pressure reaches the splitter at the
  // same relative depth as the paper's microsecond-scale tuples.
  config.payload_bytes = 2048;
  config.sample_period = millis(200);
  config.socket_buffer_bytes = 8 * 1024;  // small buffers: fast feedback
  config.load_events = {
      {0, /*worker=*/0, /*multiplier=*/20.0},  // 20x load from the start
  };

  ControllerConfig controller;  // defaults = the paper's LB-adaptive
  LocalRegion region(config,
                     std::make_unique<LoadBalancingPolicy>(3, controller));

  std::printf("t(s)   weights [w0 w1 w2]    blocking rates\n");
  region.set_sample_hook([](const LocalSample& sample) {
    static int count = 0;
    if (++count % 4 != 0) return;
    std::printf("%4.1f   [%4d %4d %4d]       [%.2f %.2f %.2f]\n",
                to_seconds(sample.elapsed), sample.weights[0],
                sample.weights[1], sample.weights[2],
                sample.block_rates[0], sample.block_rates[1],
                sample.block_rates[2]);
  });

  const LocalRunStats stats = region.run(seconds(6));

  std::printf("\nsent=%llu emitted=%llu (sequential semantics %s)\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.emitted),
              stats.order_ok ? "preserved" : "VIOLATED");
  std::printf("cumulative blocked: [%.2fs %.2fs %.2fs]\n",
              to_seconds(stats.blocked[0]), to_seconds(stats.blocked[1]),
              to_seconds(stats.blocked[2]));
  std::printf("final weights: [%d %d %d] — the 20x-loaded connection 0 "
              "holds well below its even share\n",
              stats.final_weights[0], stats.final_weights[1],
              stats.final_weights[2]);
  return 0;
}
