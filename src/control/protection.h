// Overload-protection configuration shared by every substrate
// (DESIGN.md §7, §9). One parallel region — simulated, embedded in a
// flow pipeline, or running over real loopback TCP — protects itself
// with the same three mechanisms, tuned by the same knobs:
//
//   * closed-loop admission control (throttle the source while the
//     policy declares overload),
//   * open-loop watermark load shedding (drop source backlog, with
//     exact gap accounting downstream),
//   * the watchdog escalation ladder (forced throttle -> tightened
//     shedding -> safe-mode WRR, with full unwind on sustained calm).
//
// Before PR 4 each substrate carried its own copy of these fields and
// they had drifted (the flow pipeline had admission control but no
// watchdog or shedding). This struct is now the single source of truth,
// embedded by sim::RegionConfig, flow::PipelineConfig, and
// rt::LocalRegionConfig; the old flat fields survive there as
// deprecated aliases resolved by merged_protection().
#pragma once

#include <cstdint>

namespace slb::control {

struct ProtectionConfig {
  /// Closed-loop admission control: while the policy reports overload,
  /// throttle the source to (1 - capacity_deficit) of full speed,
  /// floored at `min_throttle`. No effect on open-loop sources (an
  /// external source cannot be slowed — that is what shedding is for).
  bool admission_control = false;
  double min_throttle = 0.25;

  /// Open-loop load shedding: when the source backlog reaches the high
  /// watermark, drop backlog tuples (reported downstream as sequence
  /// gaps) until it is back at the low watermark. 0 disables shedding.
  std::uint64_t shed_high_watermark = 0;
  std::uint64_t shed_low_watermark = 0;

  /// Watchdog ladder: if the aggregate blocking rate stays at or above
  /// `watchdog_block_budget` for `watchdog_periods` consecutive sample
  /// periods, escalate one rung —
  ///   stage 1: clamp the admission throttle to min_throttle,
  ///   stage 2: halve the shed watermarks,
  ///   stage 3: drop the policy into safe-mode WRR.
  /// The same number of consecutive calm periods unwinds the ladder
  /// completely.
  bool watchdog = false;
  double watchdog_block_budget = 0.9;
  int watchdog_periods = 8;
};

/// Resolves a substrate config that still carries the pre-PR-4 flat
/// protection fields against its embedded ProtectionConfig: any legacy
/// field set away from its default overrides the embedded value, so old
/// call sites (`cfg.admission_control = true;`) keep their meaning while
/// new code writes `cfg.protection.admission_control`.
inline ProtectionConfig merged_protection(
    ProtectionConfig base, bool admission_control, double min_throttle,
    std::uint64_t shed_high_watermark, std::uint64_t shed_low_watermark,
    bool watchdog, double watchdog_block_budget, int watchdog_periods) {
  const ProtectionConfig defaults;
  if (admission_control != defaults.admission_control) {
    base.admission_control = admission_control;
  }
  if (min_throttle != defaults.min_throttle) {
    base.min_throttle = min_throttle;
  }
  if (shed_high_watermark != defaults.shed_high_watermark) {
    base.shed_high_watermark = shed_high_watermark;
  }
  if (shed_low_watermark != defaults.shed_low_watermark) {
    base.shed_low_watermark = shed_low_watermark;
  }
  if (watchdog != defaults.watchdog) base.watchdog = watchdog;
  if (watchdog_block_budget != defaults.watchdog_block_budget) {
    base.watchdog_block_budget = watchdog_block_budget;
  }
  if (watchdog_periods != defaults.watchdog_periods) {
    base.watchdog_periods = watchdog_periods;
  }
  return base;
}

}  // namespace slb::control
