#include "control/region_control.h"

#include <algorithm>
#include <cassert>

namespace slb::control {

RegionControlLoop::RegionControlLoop(RegionPort* port, SplitPolicy* policy,
                                     ControlLoopConfig config)
    : port_(port),
      policy_(policy),
      config_(config),
      channels_(port->channels()),
      prev_cumulative_(static_cast<std::size_t>(port->channels()), 0),
      down_(static_cast<std::size_t>(port->channels()), 0),
      shed_high_(config.protection.shed_high_watermark),
      shed_low_(config.protection.shed_low_watermark) {
  assert(port_ != nullptr);
  assert(policy_ != nullptr);
  assert(channels_ > 0);
  actions_.block_rates.assign(static_cast<std::size_t>(channels_), 0.0);
  actions_.shed_high = shed_high_;
  actions_.shed_low = shed_low_;
}

void RegionControlLoop::set_journal(obs::DecisionJournal* journal) {
  journal_ = journal;
  policy_->set_journal(journal);
}

void RegionControlLoop::attach_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) {
  throttle_gauge_ = &registry.gauge(prefix + "throttle_m");
  throttle_gauge_->set(1000);
  watchdog_gauge_ = &registry.gauge(prefix + "watchdog_stage");
}

const ControlActions& RegionControlLoop::tick(TimeNs now, DurationNs span) {
  const std::vector<DurationNs> cumulative = port_->sample_blocked();
  const std::vector<std::uint64_t> delivered = port_->sample_delivered();
  tick_with(now, span, cumulative, delivered);
  // The ack-stall rung lives here, not in tick_with: externally-fed
  // traces (parity/replay tests) carry no delivery state to sample, and
  // their journals must not change shape.
  if (config_.ack_stall_periods > 0) check_ack_stall(now);
  return actions_;
}

void RegionControlLoop::check_ack_stall(TimeNs now) {
  const DeliverySample d = port_->sample_delivery_state();
  if (!d.enabled) return;
  bool any_up = false;
  for (const char down : down_) {
    if (down == 0) {
      any_up = true;
      break;
    }
  }
  // A stall with every channel quarantined is expected (nothing can
  // deliver, let alone ack); the reconnect machinery owns that case.
  const bool stalled = d.unacked > 0 && d.cum_ack == prev_cum_ack_ && any_up;
  prev_cum_ack_ = d.cum_ack;
  if (!stalled) {
    ack_stall_streak_ = 0;
    return;
  }
  if (++ack_stall_streak_ < config_.ack_stall_periods) return;
  ack_stall_streak_ = 0;
  ++ack_stalls_;
  if (journal_ != nullptr) {
    obs::JsonLine line;
    line.str("ev", "ack_stall")
        .num("t", static_cast<std::int64_t>(now))
        .num("ack", d.cum_ack)
        .num("unacked", d.unacked);
    journal_->append(line.finish());
  }
  watchdog_escalate(now, actions_.aggregate_block);
}

void RegionControlLoop::note_replay(TimeNs now, int j, std::uint64_t tuples,
                                    std::uint64_t bytes) {
  if (journal_ == nullptr) return;
  obs::JsonLine line;
  line.str("ev", "replay")
      .num("t", static_cast<std::int64_t>(now))
      .num("ch", static_cast<std::int64_t>(j))
      .num("tuples", tuples)
      .num("bytes", bytes);
  journal_->append(line.finish());
}

const ControlActions& RegionControlLoop::tick_with(
    TimeNs now, DurationNs span,
    std::span<const DurationNs> cumulative_blocked,
    std::span<const std::uint64_t> delivered) {
  assert(static_cast<int>(cumulative_blocked.size()) == channels_);
  const ProtectionConfig& prot = config_.protection;

  // 1. Ingest: per-period blocking rates from the cumulative counters.
  double aggregate = 0.0;
  for (std::size_t j = 0; j < cumulative_blocked.size(); ++j) {
    const DurationNs delta = cumulative_blocked[j] - prev_cumulative_[j];
    const double rate =
        span > 0 ? static_cast<double>(delta) / static_cast<double>(span)
                 : 0.0;
    actions_.block_rates[j] = rate;
    aggregate += rate;
    prev_cumulative_[j] = cumulative_blocked[j];
  }
  actions_.aggregate_block = aggregate;

  // 2. Policy update: decay / regression / RAP solve (or frozen weights
  // under declared overload, or safe-mode WRR) happen inside; every
  // decision is journaled by the controller itself.
  policy_->on_sample(now, cumulative_blocked);
  if (!delivered.empty()) policy_->on_throughput(now, delivered);

  // 3. Admission throttle, computed with the *current* watchdog stage —
  // an escalation this period takes effect on the next period's factor.
  const SplitPolicy::OverloadState overload = policy_->overload_state();
  actions_.overloaded = overload.overloaded;
  actions_.capacity_deficit = overload.capacity_deficit;
  actions_.throttle_set = false;
  if (prot.admission_control && config_.closed_loop_source) {
    double factor = 1.0;
    if (overload.overloaded) {
      factor = std::clamp(1.0 - overload.capacity_deficit,
                          prot.min_throttle, 1.0);
    }
    if (stage_ >= 1) factor = prot.min_throttle;
    actions_.throttle = factor;
    actions_.throttle_set = true;
    port_->apply_throttle(factor);
    if (throttle_gauge_ != nullptr) {
      throttle_gauge_->set(static_cast<std::int64_t>(factor * 1000.0));
    }
  }

  // 4. Watchdog ladder.
  actions_.watermarks_changed = false;
  if (prot.watchdog) {
    if (aggregate >= prot.watchdog_block_budget) {
      calm_streak_ = 0;
      if (++hot_streak_ >= prot.watchdog_periods) {
        hot_streak_ = 0;
        watchdog_escalate(now, aggregate);
      }
    } else {
      hot_streak_ = 0;
      if (stage_ > 0 && ++calm_streak_ >= prot.watchdog_periods) {
        calm_streak_ = 0;
        watchdog_unwind(now, aggregate);
      }
    }
  }

  actions_.watchdog_stage = stage_;
  actions_.safe_mode = policy_->safe_mode();
  actions_.shed_high = shed_high_;
  actions_.shed_low = shed_low_;
  actions_.weights = policy_->weights();

  if (journal_ != nullptr && config_.journal_ticks) {
    obs::JsonLine line;
    line.str("ev", "control")
        .num("t", static_cast<std::int64_t>(now))
        .reals("rates", actions_.block_rates)
        .real("agg", aggregate)
        .real("throttle", actions_.throttle)
        .num("stage", static_cast<std::int64_t>(stage_))
        .num("shed_hi", shed_high_)
        .num("shed_lo", shed_low_)
        .boolean("safe", actions_.safe_mode)
        .ints("w", actions_.weights);
    journal_->append(line.finish());
  }
  return actions_;
}

void RegionControlLoop::mark_channel_down(int j) {
  assert(j >= 0 && j < channels_);
  down_[static_cast<std::size_t>(j)] = 1;
  policy_->on_channel_down(j);
}

void RegionControlLoop::mark_channel_up(int j) {
  assert(j >= 0 && j < channels_);
  down_[static_cast<std::size_t>(j)] = 0;
  policy_->on_channel_up(j);
}

void RegionControlLoop::watchdog_escalate(TimeNs now, double aggregate) {
  if (stage_ >= 3) return;
  ++stage_;
  if (watchdog_gauge_ != nullptr) watchdog_gauge_->set(stage_);
  const ProtectionConfig& prot = config_.protection;
  switch (stage_) {
    case 1:
      // Forced throttle: applied by the admission pass on closed-loop
      // sources from the next tick on. Nothing to do for open loop.
      break;
    case 2:
      if (prot.shed_high_watermark > 0) {
        shed_high_ = std::max<std::uint64_t>(1, prot.shed_high_watermark / 2);
        shed_low_ = prot.shed_low_watermark / 2;
        port_->apply_shed_watermarks(shed_high_, shed_low_);
        actions_.watermarks_changed = true;
      }
      break;
    case 3:
      policy_->enter_safe_mode();
      break;
  }
  if (journal_ != nullptr) {
    obs::JsonLine line;
    line.str("ev", "watchdog_escalate")
        .num("t", static_cast<std::int64_t>(now))
        .num("stage", static_cast<std::int64_t>(stage_))
        .real("agg", aggregate);
    journal_->append(line.finish());
  }
}

void RegionControlLoop::watchdog_unwind(TimeNs now, double aggregate) {
  policy_->exit_safe_mode();
  const ProtectionConfig& prot = config_.protection;
  if (prot.shed_high_watermark > 0) {
    shed_high_ = prot.shed_high_watermark;
    shed_low_ = prot.shed_low_watermark;
    port_->apply_shed_watermarks(shed_high_, shed_low_);
    actions_.watermarks_changed = true;
  }
  actions_.throttle = 1.0;
  port_->apply_throttle(1.0);
  stage_ = 0;
  if (watchdog_gauge_ != nullptr) watchdog_gauge_->set(0);
  if (journal_ != nullptr) {
    obs::JsonLine line;
    line.str("ev", "watchdog_unwind")
        .num("t", static_cast<std::int64_t>(now))
        .real("agg", aggregate);
    journal_->append(line.finish());
  }
}

}  // namespace slb::control
