// The transport-agnostic region control loop (DESIGN.md §9).
//
// One RegionControlLoop instance owns the full per-period decision
// pipeline for one ordered data-parallel region:
//
//   ingest per-channel blocking observations
//     -> policy update (decay / regression / minimax RAP or safe-mode
//        WRR — inside the SplitPolicy/LoadBalanceController)
//     -> saturation / overload declaration (inside the controller)
//     -> admission throttle computation
//     -> watchdog escalation ladder (throttle -> tighten shedding ->
//        safe mode, with calm unwind)
//     -> ControlActions pushed through the RegionPort
//
// Before PR 4 this state machine existed three times — in sim::Region,
// flow::Pipeline, and rt::LocalRegion — and had drifted. The substrates
// are now thin adapters: they sample their counters on their own clock,
// call tick(), and actuate whatever comes back through their RegionPort.
// Behavior parity across substrates is a tested invariant
// (tests/test_control_parity.cc feeds identical traces to all three
// adapters' loops and requires byte-identical decision journals).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "control/protection.h"
#include "control/region_port.h"
#include "core/policies.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace slb::control {

struct ControlLoopConfig {
  ProtectionConfig protection;

  /// True when the substrate's source is closed-loop (admission control
  /// can slow it). Open-loop substrates set false: the throttle decision
  /// is skipped entirely, matching the pre-refactor behavior of the sim
  /// and runtime regions.
  bool closed_loop_source = true;

  /// When a journal is attached, also emit one "control" line per tick
  /// (rates, throttle, stage, watermarks, weights) in addition to the
  /// watchdog transition lines. Off by default so the committed golden
  /// journal (tests/golden/decision_journal.jsonl) keeps its shape.
  bool journal_ticks = false;

  /// Ack-stall watchdog rung (at-least-once delivery, DESIGN.md §10):
  /// escalate after this many consecutive tick() periods during which
  /// the region reports unacked tuples, no cumulative-ack progress, and
  /// at least one unquarantined channel. The check samples the port in
  /// tick() only — tick_with() traces (the parity/replay seam) carry no
  /// delivery state, so their journals are unaffected. 0 disables.
  int ack_stall_periods = 0;
};

class RegionControlLoop {
 public:
  /// `port` and `policy` must outlive the loop. The loop never owns
  /// substrate state; it holds only the decision machinery.
  RegionControlLoop(RegionPort* port, SplitPolicy* policy,
                    ControlLoopConfig config);

  /// Attaches a decision journal to the loop's own lines (watchdog
  /// transitions, optional per-tick control lines) *and* to the policy's
  /// controller, so one journal records the complete decision sequence.
  /// Pass nullptr to detach. Not owned.
  void set_journal(obs::DecisionJournal* journal);

  /// Toggles per-tick control lines (see ControlLoopConfig::journal_ticks).
  void set_journal_ticks(bool on) { config_.journal_ticks = on; }

  /// Registers the loop's gauges under `prefix` (e.g. "region." ->
  /// "region.throttle_m", "region.watchdog_stage") and keeps them
  /// current. Call once at wiring time; the registry must outlive the
  /// loop.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);

  /// Runs one control period at time `now`, sampling observations
  /// through the port. `span` is the actual elapsed time since the
  /// previous tick (substrates that overshoot their sample period pass
  /// the real span so rates stay normalized). Actions are applied
  /// through the port before the call returns.
  const ControlActions& tick(TimeNs now, DurationNs span);

  /// tick() with externally supplied observations — the seam the parity
  /// and replay tests drive: identical traces into identical loops must
  /// produce byte-identical journals regardless of substrate.
  const ControlActions& tick_with(
      TimeNs now, DurationNs span,
      std::span<const DurationNs> cumulative_blocked,
      std::span<const std::uint64_t> delivered);

  /// Failure routing: substrates report connection state changes here
  /// (not straight to the policy) so quarantine/readmit decisions pass
  /// through the one control seam.
  void mark_channel_down(int j);
  void mark_channel_up(int j);
  bool channel_down(int j) const {
    return down_[static_cast<std::size_t>(j)] != 0;
  }

  /// Journals a crash-replay event (at-least-once delivery): `tuples`
  /// unacked tuples totalling `bytes` moved from channel `j`'s replay
  /// buffer onto the survivors. Substrates call this next to
  /// mark_channel_down so the journal shows recovery and load movement
  /// as one decision sequence.
  void note_replay(TimeNs now, int j, std::uint64_t tuples,
                   std::uint64_t bytes);

  /// Ack-stall escalations fired so far (see ack_stall_periods).
  std::uint64_t ack_stalls() const { return ack_stalls_; }

  int watchdog_stage() const { return stage_; }
  const ControlActions& last_actions() const { return actions_; }
  const ControlLoopConfig& config() const { return config_; }
  const ProtectionConfig& protection() const { return config_.protection; }
  SplitPolicy& policy() { return *policy_; }

 private:
  void watchdog_escalate(TimeNs now, double aggregate);
  void watchdog_unwind(TimeNs now, double aggregate);
  void check_ack_stall(TimeNs now);

  RegionPort* port_;
  SplitPolicy* policy_;
  ControlLoopConfig config_;
  int channels_;

  std::vector<DurationNs> prev_cumulative_;
  /// Connections currently reported down by the substrate.
  std::vector<char> down_;
  /// Effective (possibly watchdog-halved) shed watermarks.
  std::uint64_t shed_high_;
  std::uint64_t shed_low_;
  int stage_ = 0;
  int hot_streak_ = 0;
  int calm_streak_ = 0;

  /// Ack-stall rung state (tick()-sampled only; see ack_stall_periods).
  std::uint64_t prev_cum_ack_ = 0;
  int ack_stall_streak_ = 0;
  std::uint64_t ack_stalls_ = 0;

  ControlActions actions_;
  obs::DecisionJournal* journal_ = nullptr;
  obs::Gauge* throttle_gauge_ = nullptr;
  obs::Gauge* watchdog_gauge_ = nullptr;
};

}  // namespace slb::control
