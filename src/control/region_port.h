// The substrate side of the region control plane (DESIGN.md §9).
//
// A RegionPort is the narrow seam between one parallel region's *data
// plane* (splitter, channels, workers, merger — simulated or real) and
// the shared RegionControlLoop that decides, once per sample period, how
// to protect and rebalance it. The loop only ever touches the substrate
// through this interface: sample the per-channel blocking counters and
// delivery counts, then actuate the admission throttle and the shed
// watermarks. Everything else (weights, safe mode, quarantine) flows
// through the SplitPolicy the loop drives.
//
// Implementations in this repo: sim::Region, one per parallel stage of a
// flow::Pipeline, and rt::LocalRegion.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/time.h"

namespace slb::control {

/// Snapshot of a region's at-least-once delivery state (DESIGN.md §10),
/// sampled once per period for the ack-stall watchdog rung. Substrates
/// without delivery semantics return the default ({enabled = false}).
struct DeliverySample {
  bool enabled = false;
  /// Highest contiguously released sequence acked back to the splitter.
  std::uint64_t cum_ack = 0;
  /// Tuples currently held for replay (buffered + pending re-send).
  std::uint64_t unacked = 0;
};

class RegionPort {
 public:
  virtual ~RegionPort() = default;

  /// Number of splitter -> worker connections in the region.
  virtual int channels() const = 0;

  /// Cumulative blocked time (ns) per connection since the region
  /// started — the paper's blocking counters, sampled destructively or
  /// not at the substrate's discretion (the loop only differences them).
  virtual std::vector<DurationNs> sample_blocked() = 0;

  /// Cumulative tuples delivered downstream per connection. Substrates
  /// that cannot attribute deliveries per connection (the threaded
  /// runtime's merger counts only totals) return an empty vector and the
  /// loop skips the policy's throughput feedback.
  virtual std::vector<std::uint64_t> sample_delivered() = 0;

  /// Actuates the admission throttle: scale the source to `factor` (in
  /// (0, 1]) of full speed. Substrates whose source cannot be slowed
  /// (open loop) may ignore the call.
  virtual void apply_throttle(double factor) = 0;

  /// Actuates the (possibly watchdog-tightened) shed watermarks.
  /// `high == 0` disables shedding.
  virtual void apply_shed_watermarks(std::uint64_t high,
                                     std::uint64_t low) = 0;

  /// At-least-once delivery state for the ack-stall watchdog rung.
  /// Deliberately non-pure: substrates without delivery semantics (the
  /// flow pipeline, mock ports in tests) inherit the disabled default.
  virtual DeliverySample sample_delivery_state() { return {}; }
};

/// Everything the control loop decided in one period, returned from
/// RegionControlLoop::tick so substrates (and tests) can observe the
/// decision without re-deriving it. Actions have already been pushed
/// through the RegionPort by the time the struct is returned.
struct ControlActions {
  /// Admission throttle factor (1.0 = unthrottled). Meaningful only when
  /// `throttle_set` — admission control enabled on a closed-loop source.
  double throttle = 1.0;
  bool throttle_set = false;

  /// Effective shed watermarks after any watchdog tightening;
  /// `watermarks_changed` marks periods where they were (re)applied.
  std::uint64_t shed_high = 0;
  std::uint64_t shed_low = 0;
  bool watermarks_changed = false;

  /// Watchdog escalation stage (0 = normal .. 3 = safe-mode WRR) and the
  /// policy's resulting safe-mode flag.
  int watchdog_stage = 0;
  bool safe_mode = false;

  /// The policy's declared saturation state this period.
  bool overloaded = false;
  double capacity_deficit = 0.0;

  /// Per-connection blocking rates over the period (fraction of the
  /// period the splitter spent blocked on each connection) and their sum.
  std::vector<double> block_rates;
  double aggregate_block = 0.0;

  /// The allocation weights in force after this period's update.
  WeightVector weights;
};

}  // namespace slb::control
