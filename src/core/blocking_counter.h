// Cumulative blocking-time counters, the system artifact at the heart of
// the paper (Section 3).
//
// Every splitter → worker connection owns one counter. Whenever a send on
// that connection would block, the sender measures how long it actually
// blocked and adds the duration here. A sampling thread (or the simulator's
// controller event) periodically reads the cumulative values; successive
// differences yield the blocking *rate*.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/time.h"

namespace slb {

/// A single connection's cumulative blocking time in nanoseconds.
/// Writers call `add`; samplers call `cumulative`. Lock-free; relaxed
/// ordering suffices because the consumer only needs an eventually-recent
/// monotone value, never cross-variable ordering.
class BlockingCounter {
 public:
  void add(DurationNs blocked) {
    total_.fetch_add(blocked, std::memory_order_relaxed);
  }

  DurationNs cumulative() const {
    return total_.load(std::memory_order_relaxed);
  }

  void reset() { total_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<DurationNs> total_{0};
};

/// The set of counters for one parallel region, indexed by connection.
/// Fixed size after construction so samplers can iterate without locking.
class BlockingCounterSet {
 public:
  explicit BlockingCounterSet(std::size_t connections)
      : counters_(connections) {}

  BlockingCounterSet(const BlockingCounterSet&) = delete;
  BlockingCounterSet& operator=(const BlockingCounterSet&) = delete;

  std::size_t size() const { return counters_.size(); }

  BlockingCounter& at(std::size_t j) { return counters_[j]; }
  const BlockingCounter& at(std::size_t j) const { return counters_[j]; }

  /// Snapshot of all cumulative values, in connection order.
  std::vector<DurationNs> sample() const {
    std::vector<DurationNs> out(counters_.size());
    for (std::size_t j = 0; j < counters_.size(); ++j) {
      out[j] = counters_[j].cumulative();
    }
    return out;
  }

  void reset_all() {
    for (auto& c : counters_) c.reset();
  }

 private:
  std::vector<BlockingCounter> counters_;
};

}  // namespace slb
