#include "core/clustering.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace slb {

Clusters cluster_functions(const std::vector<const RateFunction*>& functions,
                           const ClusteringConfig& config) {
  const int n = static_cast<int>(functions.size());
  Clusters clusters;
  clusters.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) clusters.push_back({j});
  if (n <= 1) return clusters;

  // Pairwise distances between individual functions are fixed; complete
  // linkage between clusters is the max over cross-pairs.
  std::vector<std::vector<double>> dist(
      static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double d =
          function_distance(*functions[static_cast<std::size_t>(a)],
                            *functions[static_cast<std::size_t>(b)],
                            config.distance);
      dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = d;
      dist[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = d;
    }
  }

  auto linkage = [&](const std::vector<ConnectionId>& ca,
                     const std::vector<ConnectionId>& cb) {
    double worst = 0.0;
    for (ConnectionId a : ca) {
      for (ConnectionId b : cb) {
        worst = std::max(
            worst, dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
      }
    }
    return worst;
  };

  while (clusters.size() > 1) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 0;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double d = linkage(clusters[i], clusters[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (best > config.threshold) break;
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  canonicalize(clusters);
  return clusters;
}

RateFunction merge_cluster_function(
    const std::vector<const RateFunction*>& functions,
    const std::vector<ConnectionId>& members,
    const RateFunctionConfig& fn_config) {
  assert(!members.empty());
  std::map<Weight, RawPoint> merged;
  for (ConnectionId m : members) {
    for (const auto& [w, p] : functions[static_cast<std::size_t>(m)]->raw()) {
      RawPoint& cell = merged[w];
      cell.value += p.value * p.weight;
      cell.weight += p.weight;
    }
  }
  for (auto& [w, p] : merged) {
    if (p.weight > 0.0) p.value /= p.weight;
  }
  RateFunction fn(fn_config);
  fn.load_raw(merged);
  return fn;
}

void canonicalize(Clusters& clusters) {
  for (auto& c : clusters) std::sort(c.begin(), c.end());
  std::sort(clusters.begin(), clusters.end(),
            [](const std::vector<ConnectionId>& a,
               const std::vector<ConnectionId>& b) {
              return a.front() < b.front();
            });
}

}  // namespace slb
