// Agglomerative clustering of connections by blocking-rate-function shape
// (paper Section 5.3).
//
// With many connections, the (roughly fixed) stream of blocking
// observations is spread thin and each per-connection function becomes
// unreliable. Connections that share a host — or just a performance class
// — behave alike, so we cluster functions with the paper's distance,
// aggregate each cluster's raw evidence into one function, solve the RAP
// over the (few) clusters, and hand each member its cluster's per-member
// weight.
#pragma once

#include <vector>

#include "core/distance.h"
#include "core/rate_function.h"

namespace slb {

/// Clustering tunables.
struct ClusteringConfig {
  /// Merge clusters while the complete-linkage distance between the two
  /// closest clusters is at most this threshold.
  double threshold = 1.0;
  DistanceConfig distance;
};

/// A grouping of connection indices; every connection appears in exactly
/// one cluster.
using Clusters = std::vector<std::vector<ConnectionId>>;

/// Bottom-up agglomerative clustering with complete linkage. Deterministic:
/// ties merge the lexicographically smallest pair. O(N^3) worst case, which
/// is fine for the N <= 256 this system targets.
Clusters cluster_functions(const std::vector<const RateFunction*>& functions,
                           const ClusteringConfig& config);

/// Builds the aggregate function for one cluster: at every weight observed
/// by any member, the evidence-weighted mean of the members' raw values,
/// with the members' sample weights summed. The result sees all the data
/// the members saw individually.
RateFunction merge_cluster_function(
    const std::vector<const RateFunction*>& functions,
    const std::vector<ConnectionId>& members,
    const RateFunctionConfig& fn_config = {});

/// Canonicalizes clusters for stable output: members sorted ascending,
/// clusters ordered by first member.
void canonicalize(Clusters& clusters);

}  // namespace slb
