#include "core/controller.h"

#include <algorithm>
#include <cassert>

#include "core/policies.h"  // weights_from_shares

namespace slb {

LoadBalanceController::LoadBalanceController(int connections,
                                             ControllerConfig config)
    : config_(config),
      estimator_(connections, config.ewma_alpha),
      saturation_(config.saturation),
      weights_(even_weights(connections)),
      down_(static_cast<std::size_t>(connections), 0) {
  assert(connections > 0);
  functions_.reserve(static_cast<std::size_t>(connections));
  for (int j = 0; j < connections; ++j) {
    functions_.emplace_back(config_.function);
  }
  status_.weights = weights_;
  status_.smoothed_rates.assign(static_cast<std::size_t>(connections), 0.0);
  status_.raw_rates.assign(static_cast<std::size_t>(connections), 0.0);
}

const WeightVector& LoadBalanceController::update(
    TimeNs now, std::span<const DurationNs> cumulative_blocked) {
  assert(static_cast<int>(cumulative_blocked.size()) == connections());

  // The weights held *during* the period just observed: observations must
  // be attributed to them, not to whatever we decide next.
  const WeightVector held = weights_;

  estimator_.ingest(now, cumulative_blocked);
  if (!estimator_.ready()) return weights_;

  const int n = connections();
  for (int j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    status_.raw_rates[ju] = estimator_.last_raw_rate(j);
    status_.smoothed_rates[ju] = estimator_.rate(j);
  }

  if (journal_ != nullptr) {
    journal_->append(obs::JsonLine{}
                         .str("ev", "observe")
                         .num("t", static_cast<std::int64_t>(now))
                         .ints("held", held)
                         .reals("raw", status_.raw_rates)
                         .reals("smoothed", status_.smoothed_rates)
                         .finish());
  }

  if (config_.enable_overload_protection) {
    saturation_.observe(status_.raw_rates, down_);
    status_.overloaded = saturation_.overloaded();
    status_.capacity_deficit = saturation_.capacity_deficit();
    note_overload_transition(now);
    if (saturation_.overloaded()) {
      // Declared overload: every F_j is pinned at its ceiling, so these
      // observations carry no gradient — folding them in would flatten
      // the model, and decay-driven re-exploration would probe channels
      // that cannot absorb anything (pure loss). Freeze the functions and
      // hold the last feasible weights; admission control / shedding
      // (driven by capacity_deficit) is responsible for draining the
      // region back into the feasible regime.
      return weights_;
    }
  }

  for (int j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    const double raw = status_.raw_rates[ju];
    if (down_[ju]) continue;  // no traffic, no information
    if (raw > 0.0) {
      seen_blocking_ = true;
      functions_[ju].observe(held[ju], raw, 1.0);
    } else if (config_.zero_sample_weight > 0.0) {
      functions_[ju].observe(held[ju], 0.0, config_.zero_sample_weight);
    }
    if (config_.decay_factor < 1.0) {
      functions_[ju].decay_above(held[ju], config_.decay_factor);
    }
  }
  if (journal_ != nullptr && config_.decay_factor < 1.0) {
    journal_->append(obs::JsonLine{}
                         .str("ev", "decay")
                         .real("factor", config_.decay_factor)
                         .ints("held", held)
                         .finish());
  }

  // No connection has ever blocked: every function is identically zero
  // and the optimizer would be choosing between indistinguishable
  // alternatives. Keep the current (even) split until evidence arrives.
  if (!seen_blocking_) return weights_;

  // Every connection down: nothing to optimize over; hold the current
  // weights until someone recovers.
  if (live() == 0) return weights_;

  const bool use_clusters =
      config_.enable_clustering && n >= config_.clustering_min_connections;
  if (use_clusters) {
    solve_clustered();
  } else {
    status_.clusters.clear();
    solve_flat();
  }

  ++status_.updates;
  status_.weights = weights_;
  if (metrics_.updates != nullptr) {
    metrics_.updates->inc();
    metrics_.live->set(live());
  }
  return weights_;
}

void LoadBalanceController::set_weights(const WeightVector& w) {
  assert(static_cast<int>(w.size()) == connections());
  assert(total_weight(w) == kWeightUnits);
  weights_ = w;
  status_.weights = w;
}

int LoadBalanceController::live() const {
  int count = 0;
  for (char d : down_) count += d == 0 ? 1 : 0;
  return count;
}

void LoadBalanceController::mark_down(int j) {
  assert(j >= 0 && j < connections());
  const auto ju = static_cast<std::size_t>(j);
  if (down_[ju]) return;
  down_[ju] = 1;
  // Whatever was learned about this connection described a worker that no
  // longer exists; a restarted replacement starts from a clean slate.
  functions_[ju].reset();
  if (metrics_.mark_downs != nullptr) {
    metrics_.mark_downs->inc();
    metrics_.live->set(live());
  }
  const auto journal_mark_down = [this, j](std::string_view mode) {
    if (journal_ == nullptr) return;
    journal_->append(obs::JsonLine{}
                         .str("ev", "mark_down")
                         .num("j", static_cast<std::int64_t>(j))
                         .str("mode", mode)
                         .ints("weights", weights_)
                         .finish());
  };

  if (live() == 0) {
    // Nothing left to route to: keep weights (the splitter is stalled
    // anyway) so the invariant sum(w) == kWeightUnits survives.
    status_.weights = weights_;
    journal_mark_down("hold");
    return;
  }
  // Safe-mode fallback: a crash during declared overload invalidates the
  // frozen allocation — it was feasible for a region that just lost a
  // worker's worth of capacity. Degrade to an even WRR split over the
  // survivors instead of scaling up stale weights.
  if (overloaded() && config_.safe_mode_on_overload_fault) {
    std::vector<double> even(static_cast<std::size_t>(connections()), 0.0);
    for (int k = 0; k < connections(); ++k) {
      if (!down_[static_cast<std::size_t>(k)]) {
        even[static_cast<std::size_t>(k)] = 1.0;
      }
    }
    weights_ = weights_from_shares(even);
    status_.weights = weights_;
    journal_mark_down("safe_even");
    return;
  }

  // Redistribute j's weight over the survivors proportionally to their
  // current weights (even split if the survivors were all at zero), so
  // routing continues immediately instead of waiting a sample period.
  std::vector<double> shares(static_cast<std::size_t>(connections()), 0.0);
  double survivor_total = 0.0;
  for (int k = 0; k < connections(); ++k) {
    const auto ku = static_cast<std::size_t>(k);
    if (down_[ku]) continue;
    shares[ku] = static_cast<double>(weights_[ku]);
    survivor_total += shares[ku];
  }
  if (survivor_total <= 0.0) {
    for (int k = 0; k < connections(); ++k) {
      if (!down_[static_cast<std::size_t>(k)]) {
        shares[static_cast<std::size_t>(k)] = 1.0;
      }
    }
  }
  weights_ = weights_from_shares(shares);
  status_.weights = weights_;
  journal_mark_down("redistribute");
}

void LoadBalanceController::mark_up(int j) {
  assert(j >= 0 && j < connections());
  const auto ju = static_cast<std::size_t>(j);
  if (!down_[ju]) return;
  down_[ju] = 0;
  // Weight stays where it is (zero, unless min_weight raises the solver
  // floor): the connection re-enters through the same geometric step-up
  // probing as any shut-off channel — a trickle first, doubling per
  // update while it keeps absorbing load without blocking.
  functions_[ju].reset();
  if (metrics_.mark_ups != nullptr) {
    metrics_.mark_ups->inc();
    metrics_.live->set(live());
  }
  if (journal_ != nullptr) {
    journal_->append(obs::JsonLine{}
                         .str("ev", "mark_up")
                         .num("j", static_cast<std::int64_t>(j))
                         .finish());
  }
}

void LoadBalanceController::note_overload_transition(TimeNs now) {
  const bool cur = saturation_.overloaded();
  if (metrics_.overloaded != nullptr) {
    metrics_.overloaded->set(cur ? 1 : 0);
  }
  if (cur == last_overloaded_) return;
  last_overloaded_ = cur;
  if (metrics_.overload_enters != nullptr) {
    (cur ? metrics_.overload_enters : metrics_.overload_exits)->inc();
  }
  if (journal_ != nullptr) {
    journal_->append(obs::JsonLine{}
                         .str("ev", cur ? "overload_enter" : "overload_exit")
                         .num("t", static_cast<std::int64_t>(now))
                         .real("aggregate", saturation_.last_aggregate())
                         .real("deficit", saturation_.capacity_deficit())
                         .finish());
  }
}

void LoadBalanceController::journal_solve(std::string_view mode) {
  if (metrics_.solves != nullptr) {
    metrics_.solves->inc();
    if (!status_.solver_feasible) metrics_.infeasible->inc();
  }
  if (journal_ == nullptr) return;
  journal_->append(obs::JsonLine{}
                       .str("ev", "solve")
                       .str("mode", mode)
                       .str("solver", config_.solver == RapSolverKind::kFox
                                          ? "fox"
                                          : "bisect")
                       .real("objective", status_.objective)
                       .boolean("feasible", status_.solver_feasible)
                       .ints("weights", weights_)
                       .finish());
}

void LoadBalanceController::attach_metrics(obs::MetricsRegistry& registry,
                                           std::string_view prefix) {
  const auto name = [prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  metrics_.updates = &registry.counter(name("updates"));
  metrics_.solves = &registry.counter(name("solves"));
  metrics_.infeasible = &registry.counter(name("infeasible"));
  metrics_.overload_enters = &registry.counter(name("overload_enters"));
  metrics_.overload_exits = &registry.counter(name("overload_exits"));
  metrics_.mark_downs = &registry.counter(name("mark_downs"));
  metrics_.mark_ups = &registry.counter(name("mark_ups"));
  metrics_.overloaded = &registry.gauge(name("overloaded"));
  metrics_.live = &registry.gauge(name("live"));
  metrics_.live->set(live());
}

void LoadBalanceController::solve_flat() {
  const int n = connections();
  RapProblem problem;
  problem.total = kWeightUnits;
  problem.vars.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    RapVariable& v = problem.vars[ju];
    if (down_[ju]) {
      // Dead connection: pinned at zero; the RAP is solved over survivors.
      v.min = 0;
      v.max = 0;
      v.multiplicity = 1;
      continue;
    }
    v.min = std::max(config_.min_weight,
                     static_cast<Weight>(weights_[ju] - config_.max_step_down));
    v.min = std::max(v.min, 0);
    Weight up = config_.max_step_up;
    if (config_.geometric_step_up) {
      up = std::min(up, std::max(config_.geometric_step_floor, weights_[ju]));
    }
    v.max = std::min(kWeightUnits, static_cast<Weight>(weights_[ju] + up));
    v.multiplicity = 1;
  }
  problem.eval = [this](int j, Weight w) {
    return functions_[static_cast<std::size_t>(j)].value(w);
  };

  const RapSolution sol = config_.solver == RapSolverKind::kFox
                              ? solve_fox(problem)
                              : solve_bisect(problem);
  status_.objective = sol.objective;
  status_.solver_feasible = sol.feasible;
  if (sol.feasible) weights_ = sol.weights;
  journal_solve("flat");
}

void LoadBalanceController::solve_clustered() {
  const int n = connections();
  std::vector<const RateFunction*> fns;
  fns.reserve(static_cast<std::size_t>(n));
  for (const RateFunction& f : functions_) fns.push_back(&f);

  status_.clusters = cluster_functions(fns, config_.clustering);
  const int k = static_cast<int>(status_.clusters.size());
  if (journal_ != nullptr) {
    journal_->append(obs::JsonLine{}
                         .str("ev", "cluster")
                         .int_lists("clusters", status_.clusters)
                         .finish());
  }

  std::vector<RateFunction> merged;
  merged.reserve(static_cast<std::size_t>(k));
  for (const auto& members : status_.clusters) {
    merged.push_back(merge_cluster_function(fns, members, config_.function));
  }

  // Solve at member granularity, but with every member evaluating its
  // *cluster's* merged function. Clustering's benefit is data aggregation
  // — each function now rests on all of its cluster's observations — and
  // solving per member sidesteps the granularity pathologies of a
  // cluster-level formulation (a coarse cluster cannot absorb the last
  // few 0.1% units, which would otherwise be dumped onto whatever small
  // cluster remains, however badly it blocks). Same-cluster members have
  // identical marginal curves, so the greedy hands them equal weights
  // (within one unit), matching the paper's per-cluster allocations.
  std::vector<int> cluster_of(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < k; ++c) {
    for (ConnectionId j : status_.clusters[static_cast<std::size_t>(c)]) {
      cluster_of[static_cast<std::size_t>(j)] = c;
    }
  }

  RapProblem problem;
  problem.total = kWeightUnits;
  problem.vars.assign(static_cast<std::size_t>(n),
                      RapVariable{config_.min_weight, kWeightUnits, 1});
  for (int j = 0; j < n; ++j) {
    if (down_[static_cast<std::size_t>(j)]) {
      problem.vars[static_cast<std::size_t>(j)] = RapVariable{0, 0, 1};
    }
  }
  problem.eval = [&merged, &cluster_of](int j, Weight w) {
    return merged[static_cast<std::size_t>(
                      cluster_of[static_cast<std::size_t>(j)])]
        .value(w);
  };

  const RapSolution sol = config_.solver == RapSolverKind::kFox
                              ? solve_fox(problem)
                              : solve_bisect(problem);
  status_.objective = sol.objective;
  status_.solver_feasible = sol.feasible;
  if (sol.feasible) weights_ = sol.weights;
  journal_solve("clustered");
}

}  // namespace slb
