// The load-balance controller: one instance per parallel region's
// splitter. This is the paper's full pipeline (Figures 4 and 6):
//
//   sample cumulative blocking  ->  blocking rates  ->  update F_j
//     ->  (decay for exploration)  ->  (cluster when wide)
//     ->  solve minimax RAP  ->  new allocation weights
//
// The controller is substrate-agnostic: callers feed it cumulative
// blocking counters (from the simulator or from real TCP instrumentation)
// once per period and apply the returned weights to their router. The
// same controller code drives every experiment in this repository.
#pragma once

#include <span>
#include <vector>

#include "core/clustering.h"
#include "core/rap.h"
#include "core/rate_estimator.h"
#include "core/rate_function.h"
#include "core/saturation.h"
#include "core/types.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace slb {

/// Which exact RAP solver the controller runs each period. Fox's greedy
/// is the paper's choice and the default; the bisection solver (in the
/// spirit of Galil & Megiddo) produces the same objective and is exposed
/// for completeness and cross-checking.
enum class RapSolverKind { kFox, kBisect };

/// Controller tunables. Defaults reproduce LB-adaptive from the paper;
/// set `decay_factor = 1.0` for LB-static.
struct ControllerConfig {
  /// RAP solver used each update.
  RapSolverKind solver = RapSolverKind::kFox;

  /// EWMA smoothing factor for per-period blocking rates (tracing only;
  /// the functions smooth per-weight via RateFunctionConfig::mix_alpha).
  double ewma_alpha = 0.5;

  /// Per-iteration geometric decay applied to F_j beyond the current
  /// weight (Section 5.4). 0.9 = the paper's 10 % reduction; 1.0 disables
  /// exploration (LB-static).
  double decay_factor = 0.9;

  /// Sample weight for zero-blocking observations. The paper only receives
  /// data for connections that blocked; recording "no blocking at weight
  /// w" with a small weight speeds recovery (see DESIGN.md). 0 disables.
  double zero_sample_weight = 0.25;

  /// Per-update bounds on weight movement (the RAP's m_j / M_j relative to
  /// the current weights). Downward moves are unbounded by default,
  /// matching the paper's traces where a loaded connection drops to 0 in
  /// one step.
  Weight max_step_up = kWeightUnits;
  Weight max_step_down = kWeightUnits;

  /// Geometric upward probing: caps each update's increase at
  /// max(geometric_step_floor, 2 x current weight) — so a connection
  /// being re-explored from near zero is fed only a trickle (cheap if it
  /// is still overloaded: its buffers barely fill before the blocking
  /// data arrives and the optimizer backs off), while a recovering
  /// connection still climbs to an even share within ~log2(R) updates.
  /// Tighter of this and max_step_up wins; disable by setting false.
  bool geometric_step_up = true;
  Weight geometric_step_floor = 8;

  /// Hard floor for every connection's weight (0 lets connections be shut
  /// off entirely, as in the paper).
  Weight min_weight = 0;

  /// Clustering (Section 5.3): engaged only when the region has at least
  /// `clustering_min_connections` connections.
  bool enable_clustering = false;
  int clustering_min_connections = 32;
  ClusteringConfig clustering;

  /// Overload protection (DESIGN.md §7). When enabled, a SaturationDetector
  /// watches the per-period blocking rates; while it declares overload the
  /// controller freezes exploration decay and weight movement (holding the
  /// last feasible allocation) and publishes a capacity-deficit estimate
  /// for source admission control / shedding. Off by default: the paper's
  /// throughput-bound experiments run saturated on purpose.
  bool enable_overload_protection = false;
  SaturationConfig saturation;

  /// Safe-mode fallback: when a connection dies *while the region is
  /// overloaded*, the frozen weights describe a world that no longer
  /// exists. Instead of redistributing them proportionally (which bakes
  /// the stale split in), fall back to an even WRR split over the
  /// survivors and let re-convergence start from neutral ground. Only
  /// consulted when overload protection is enabled.
  bool safe_mode_on_overload_fault = true;

  RateFunctionConfig function;
};

/// Per-update diagnostic snapshot, used by traces and tests.
struct ControllerStatus {
  WeightVector weights;
  std::vector<double> smoothed_rates;
  std::vector<double> raw_rates;
  Clusters clusters;  // empty when clustering is off / not engaged
  double objective = 0.0;
  bool solver_feasible = true;
  long updates = 0;
  /// Overload protection (when enabled): current saturation state and the
  /// published capacity-deficit estimate.
  bool overloaded = false;
  double capacity_deficit = 0.0;
};

class LoadBalanceController {
 public:
  LoadBalanceController(int connections, ControllerConfig config = {});

  /// Feeds one sampling period. `cumulative_blocked[j]` is connection j's
  /// cumulative blocking time (ns) at time `now`. Returns the weights to
  /// apply until the next update. The first call only establishes a
  /// baseline and returns the initial even split.
  const WeightVector& update(TimeNs now,
                             std::span<const DurationNs> cumulative_blocked);

  const WeightVector& weights() const { return weights_; }
  int connections() const { return static_cast<int>(functions_.size()); }
  const RateFunction& function(int j) const {
    return functions_[static_cast<std::size_t>(j)];
  }
  const ControllerStatus& status() const { return status_; }
  const ControllerConfig& config() const { return config_; }

  /// Overrides the current weights (e.g. to seed a known-good split).
  void set_weights(const WeightVector& w);

  /// Failure handling: declares connection j dead. Its weight drops to
  /// zero immediately (m_j = M_j = 0 in every subsequent RAP), its
  /// blocking-rate history is discarded, and its current weight is
  /// redistributed proportionally over the survivors — the splitter can
  /// keep routing without waiting for the next sample period. Idempotent.
  void mark_down(int j);

  /// Re-admits a recovered connection. Its weight restarts from zero and
  /// climbs back via the existing geometric step-up probing (the same
  /// trickle-feed used for re-exploring a previously shut-off channel),
  /// so a still-sick worker costs at most a probe's worth of tuples per
  /// period. Idempotent.
  void mark_up(int j);

  bool is_down(int j) const {
    return down_[static_cast<std::size_t>(j)] != 0;
  }
  /// Number of connections currently marked up.
  int live() const;

  /// Overload protection: true while the saturation detector has the
  /// region in declared overload mode (always false when
  /// enable_overload_protection is off).
  bool overloaded() const {
    return config_.enable_overload_protection && saturation_.overloaded();
  }

  /// Decision journal (DESIGN.md §8): while attached, every adaptation
  /// decision — observe, decay, cluster, solve, overload transition,
  /// mark_down/mark_up — is appended as one JSON line with the inputs the
  /// controller saw and the outputs it chose. Fixed-seed runs produce
  /// byte-identical journals. Pass nullptr to detach. Not owned.
  void set_journal(obs::DecisionJournal* journal) { journal_ = journal; }
  obs::DecisionJournal* journal() const { return journal_; }

  /// Registers the controller's counters and gauges under `prefix` in
  /// `registry` and keeps them current from then on. Handles are stable
  /// for the registry's lifetime; call once at wiring time.
  void attach_metrics(obs::MetricsRegistry& registry,
                      std::string_view prefix = "controller.");
  /// Estimated fraction of the offered load exceeding capacity (0 when
  /// not overloaded). Drives source throttling and shedding.
  double capacity_deficit() const { return saturation_.capacity_deficit(); }
  const SaturationDetector& saturation() const { return saturation_; }

 private:
  void solve_flat();
  void solve_clustered();
  void journal_solve(std::string_view mode);
  /// Journals + counts an overload enter/exit edge after observe().
  void note_overload_transition(TimeNs now);

  ControllerConfig config_;
  BlockingRateEstimator estimator_;
  SaturationDetector saturation_;
  std::vector<RateFunction> functions_;
  WeightVector weights_;
  ControllerStatus status_;
  /// Down connections (mark_down) are pinned to weight 0 and excluded
  /// from observation; char avoids vector<bool> proxy references.
  std::vector<char> down_;
  /// Until some connection actually blocks there is no evidence to act on
  /// (all functions are identically zero); keep the even split.
  bool seen_blocking_ = false;

  obs::DecisionJournal* journal_ = nullptr;
  /// Edge detector for overload enter/exit journal lines and counters.
  bool last_overloaded_ = false;
  /// Registry handles (attach_metrics); null until attached. The handles
  /// stay valid for the registry's lifetime, which callers must make
  /// outlive the controller.
  struct Metrics {
    obs::Counter* updates = nullptr;
    obs::Counter* solves = nullptr;
    obs::Counter* infeasible = nullptr;
    obs::Counter* overload_enters = nullptr;
    obs::Counter* overload_exits = nullptr;
    obs::Counter* mark_downs = nullptr;
    obs::Counter* mark_ups = nullptr;
    obs::Gauge* overloaded = nullptr;
    obs::Gauge* live = nullptr;
  } metrics_;
};

}  // namespace slb
