#include "core/distance.h"

#include <algorithm>
#include <cmath>

namespace slb {

double distance_alpha(const DistanceConfig& config) {
  const double r = static_cast<double>(kWeightUnits);
  const double denom = std::fabs(std::log(r * config.delta));
  return std::log(r) / std::max(denom, 1e-12);
}

double function_distance(const RateFunction& fj, const RateFunction& fk,
                         const DistanceConfig& config) {
  const double delta = config.delta;
  const double alpha = distance_alpha(config);

  // Knees, floored so the log is finite and insensitive to noise among
  // connections that block almost immediately (paper's Figure 7 right).
  const double sj = std::max(config.min_knee,
                             static_cast<double>(fj.service_rate()));
  const double sk = std::max(config.min_knee,
                             static_cast<double>(fk.service_rate()));

  // Blocking at the knee and at full load, floored at delta.
  const double bj_knee =
      std::max(delta, fj.value(static_cast<Weight>(std::min<double>(
                          sj, kWeightUnits))));
  const double bk_knee =
      std::max(delta, fk.value(static_cast<Weight>(std::min<double>(
                          sk, kWeightUnits))));
  const double bj_full = std::max(delta, fj.value(kWeightUnits));
  const double bk_full = std::max(delta, fk.value(kWeightUnits));

  const double d_knee = std::fabs(std::log(sj / sk));
  const double d_rate_knee = alpha * std::fabs(std::log(bj_knee / bk_knee));
  const double d_rate_full = alpha * std::fabs(std::log(bj_full / bk_full));

  return std::max({d_knee, d_rate_knee, d_rate_full});
}

}  // namespace slb
