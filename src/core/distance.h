// Distance between two blocking-rate functions (paper Section 5.3).
//
// Clustering needs to decide when two connections "look alike". The paper
// compares, on a log-ratio scale:
//   * the service rates (knees) w_{j,s} and w_{k,s},
//   * the blocking at the knees F_j(w_{j,s}) vs F_k(w_{k,s}),
//   * the blocking at full load F_j(R) vs F_k(R),
// and takes the max of the three, scaling the rate terms by
// alpha = log(R) / |log(R * delta)| so all terms share a scale.
#pragma once

#include "core/rate_function.h"

namespace slb {

/// Configuration for the clustering distance.
struct DistanceConfig {
  /// Floor applied to every value before taking logs (the paper's delta,
  /// "the value we introduce when we need to force monotonicity").
  double delta = 1e-6;
  /// Floor applied to the knees before the log-ratio: near-zero knees are
  /// extremely noisy on a log scale (knee 1 vs knee 3 would read as
  /// "far"), yet channels blocking at 0.1% vs 0.3% of the load belong
  /// together for every practical purpose.
  double min_knee = 5.0;
};

/// Scaling factor alpha from the paper.
double distance_alpha(const DistanceConfig& config);

/// The paper's Distance(F_j, F_k). Zero for indistinguishable functions,
/// large for functions with very different knees or blocking magnitudes.
double function_distance(const RateFunction& fj, const RateFunction& fk,
                         const DistanceConfig& config = {});

}  // namespace slb
