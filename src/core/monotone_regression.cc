#include "core/monotone_regression.h"

#include <cassert>

namespace slb {

std::vector<double> isotonic_fit(std::span<const double> values,
                                 std::span<const double> weights) {
  assert(values.size() == weights.size());
  const std::size_t n = values.size();
  std::vector<double> fitted;
  if (n == 0) return fitted;

  // Classic stack-of-blocks PAVA. Each block covers a run of indices and
  // carries the weighted mean of its members; adjacent blocks whose means
  // violate monotonicity are pooled.
  struct Block {
    double mean;
    double weight;
    std::size_t count;
  };
  std::vector<Block> blocks;
  blocks.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    assert(weights[i] > 0.0);
    blocks.push_back({values[i], weights[i], 1});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean >= blocks.back().mean) {
      const Block top = blocks.back();
      blocks.pop_back();
      Block& prev = blocks.back();
      const double combined = prev.weight + top.weight;
      prev.mean = (prev.mean * prev.weight + top.mean * top.weight) / combined;
      prev.weight = combined;
      prev.count += top.count;
    }
  }

  fitted.reserve(n);
  for (const Block& b : blocks) {
    for (std::size_t k = 0; k < b.count; ++k) fitted.push_back(b.mean);
  }
  return fitted;
}

std::vector<double> isotonic_fit(std::span<const double> values) {
  const std::vector<double> ones(values.size(), 1.0);
  return isotonic_fit(values, ones);
}

bool is_non_decreasing(std::span<const double> values) {
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[i - 1]) return false;
  }
  return true;
}

}  // namespace slb
