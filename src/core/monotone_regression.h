// Weighted monotone (isotonic) regression via the pool-adjacent-violators
// algorithm (PAVA).
//
// The paper (Section 5.1) forces each connection's raw blocking-rate data
// into non-decreasing order by "monotone regression" before interpolation.
// PAVA computes the non-decreasing sequence minimizing the weighted squared
// error to the input, in O(n).
#pragma once

#include <span>
#include <vector>

namespace slb {

/// Computes the weighted L2 isotonic (non-decreasing) fit of `values`.
///
/// @param values observations y_i in domain order.
/// @param weights strictly positive sample weights; must match size.
/// @returns fitted values g_i with g_0 <= g_1 <= ... minimizing
///   sum_i weights[i] * (values[i] - g_i)^2.
std::vector<double> isotonic_fit(std::span<const double> values,
                                 std::span<const double> weights);

/// Unweighted convenience overload (all weights 1).
std::vector<double> isotonic_fit(std::span<const double> values);

/// True if `values` is non-decreasing.
bool is_non_decreasing(std::span<const double> values);

}  // namespace slb
