#include "core/policies.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace slb {

RoundRobinPolicy::RoundRobinPolicy(int connections)
    : weights_(even_weights(connections)), connections_(connections) {
  assert(connections > 0);
}

ConnectionId RoundRobinPolicy::pick_connection() {
  const int choice = cursor_;
  cursor_ = (cursor_ + 1) % connections_;
  return choice;
}

LoadBalancingPolicy::LoadBalancingPolicy(int connections,
                                         ControllerConfig config)
    : controller_(connections, config), wrr_(connections) {
  wrr_.set_weights(controller_.weights());
}

void LoadBalancingPolicy::on_sample(
    TimeNs now, std::span<const DurationNs> cumulative_blocked) {
  // The controller keeps consuming samples even in safe mode — its
  // saturation detector is what decides when the episode is over — but
  // its weights only reach the router outside safe mode.
  const WeightVector& updated = controller_.update(now, cumulative_blocked);
  if (!safe_mode_) wrr_.set_weights(updated);
}

void LoadBalancingPolicy::on_channel_down(ConnectionId j) {
  controller_.mark_down(j);
  if (safe_mode_) {
    pin_even_live();
  } else {
    wrr_.set_weights(controller_.weights());
  }
}

void LoadBalancingPolicy::on_channel_up(ConnectionId j) {
  controller_.mark_up(j);
  if (safe_mode_) {
    pin_even_live();
  } else {
    wrr_.set_weights(controller_.weights());
  }
}

void LoadBalancingPolicy::enter_safe_mode() {
  if (safe_mode_) return;
  safe_mode_ = true;
  if (safe_mode_gauge_ != nullptr) safe_mode_gauge_->set(1);
  pin_even_live();
}

void LoadBalancingPolicy::exit_safe_mode() {
  if (!safe_mode_) return;
  safe_mode_ = false;
  if (safe_mode_gauge_ != nullptr) safe_mode_gauge_->set(0);
  wrr_.set_weights(controller_.weights());
}

void LoadBalancingPolicy::attach_metrics(obs::MetricsRegistry& registry,
                                         std::string_view prefix) {
  controller_.attach_metrics(registry, prefix);
  std::string gauge_name(prefix);
  gauge_name += "safe_mode";
  safe_mode_gauge_ = &registry.gauge(gauge_name);
  safe_mode_gauge_->set(safe_mode_ ? 1 : 0);
}

void LoadBalancingPolicy::pin_even_live() {
  std::vector<double> shares(
      static_cast<std::size_t>(controller_.connections()), 0.0);
  bool any = false;
  for (int j = 0; j < controller_.connections(); ++j) {
    if (!controller_.is_down(j)) {
      shares[static_cast<std::size_t>(j)] = 1.0;
      any = true;
    }
  }
  if (!any) return;  // all down: routing is moot, keep current weights
  wrr_.set_weights(weights_from_shares(shares));
}

OraclePolicy::OraclePolicy(int connections, std::vector<Phase> schedule)
    : schedule_(std::move(schedule)), wrr_(connections) {
  std::sort(schedule_.begin(), schedule_.end(),
            [](const Phase& a, const Phase& b) { return a.when < b.when; });
  for (const Phase& p : schedule_) {
    assert(static_cast<int>(p.capacities.size()) == connections);
    (void)p;
  }
  // Apply any phase scheduled at or before time zero immediately.
  while (next_phase_ < schedule_.size() && schedule_[next_phase_].when <= 0) {
    wrr_.set_weights(weights_from_shares(schedule_[next_phase_].capacities));
    ++next_phase_;
  }
}

void OraclePolicy::on_sample(TimeNs now,
                             std::span<const DurationNs> /*unused*/) {
  while (next_phase_ < schedule_.size() &&
         schedule_[next_phase_].when <= now) {
    wrr_.set_weights(weights_from_shares(schedule_[next_phase_].capacities));
    ++next_phase_;
  }
}

void OraclePolicy::advance_phase() {
  if (next_phase_ >= schedule_.size()) return;
  wrr_.set_weights(weights_from_shares(schedule_[next_phase_].capacities));
  ++next_phase_;
}

ThroughputBalancedPolicy::ThroughputBalancedPolicy(int connections,
                                                   double gain,
                                                   bool reroute)
    : gain_(gain),
      reroute_(reroute),
      prev_(static_cast<std::size_t>(connections), 0),
      wrr_(connections) {
  assert(gain > 0.0 && gain <= 1.0);
}

void ThroughputBalancedPolicy::on_throughput(
    TimeNs /*now*/, std::span<const std::uint64_t> delivered) {
  assert(delivered.size() == prev_.size());
  if (!have_baseline_) {
    std::copy(delivered.begin(), delivered.end(), prev_.begin());
    have_baseline_ = true;
    return;
  }
  std::uint64_t total = 0;
  std::vector<std::uint64_t> delta(prev_.size());
  for (std::size_t j = 0; j < prev_.size(); ++j) {
    delta[j] = delivered[j] - prev_[j];
    prev_[j] = delivered[j];
    total += delta[j];
  }
  if (total == 0) return;

  // Move each weight part-way toward the observed delivery share. A floor
  // of one unit keeps starved connections probe-able.
  const WeightVector& current = wrr_.weights();
  std::vector<double> target(prev_.size());
  for (std::size_t j = 0; j < prev_.size(); ++j) {
    const double observed = static_cast<double>(delta[j]) /
                            static_cast<double>(total) * kWeightUnits;
    target[j] = std::max(
        1.0, (1.0 - gain_) * static_cast<double>(current[j]) +
                 gain_ * observed);
  }
  wrr_.set_weights(weights_from_shares(target));
}

WeightVector weights_from_shares(const std::vector<double>& shares) {
  assert(!shares.empty());
  double total = 0.0;
  for (double s : shares) {
    assert(s >= 0.0);
    total += s;
  }
  assert(total > 0.0);

  const std::size_t n = shares.size();
  WeightVector result(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders(n);
  Weight assigned = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double exact = shares[j] / total * kWeightUnits;
    result[j] = static_cast<Weight>(std::floor(exact));
    assigned += result[j];
    remainders[j] = {exact - std::floor(exact), j};
  }
  // Largest remainders (ties to the lowest index) get the leftover units.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (Weight k = 0; k < kWeightUnits - assigned; ++k) {
    result[remainders[static_cast<std::size_t>(k) % n].second] += 1;
  }
  return result;
}

}  // namespace slb
