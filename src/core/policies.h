// Splitter routing policies: the paper's scheme plus every baseline its
// evaluation compares against (Section 6's Oracle*, LB-static,
// LB-adaptive, RR, and Section 4.4's transport-level re-routing).
//
// A policy answers two questions: "which connection gets the next tuple?"
// (pick_connection) and "what should change given this period's blocking
// counters?" (on_sample). Substrates call both; a policy that ignores
// samples (RR) is simply static.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/controller.h"
#include "core/types.h"
#include "core/wrr.h"
#include "util/time.h"

namespace slb {

class SplitPolicy {
 public:
  virtual ~SplitPolicy() = default;

  /// Routes the next tuple.
  virtual ConnectionId pick_connection() = 0;

  /// Periodic feedback: cumulative blocking time per connection at `now`.
  virtual void on_sample(TimeNs now,
                         std::span<const DurationNs> cumulative_blocked) {
    (void)now;
    (void)cumulative_blocked;
  }

  /// Periodic feedback: cumulative tuples *delivered downstream* per
  /// connection. In an ordered region this carries no information — the
  /// merge equalizes it to the allocation weights (paper Section 4.3) —
  /// but in unordered regions (parallel sinks) it reveals capacity, and
  /// ThroughputBalancedPolicy consumes it.
  virtual void on_throughput(TimeNs now,
                             std::span<const std::uint64_t> delivered) {
    (void)now;
    (void)delivered;
  }

  /// Failure feedback from the substrate: connection j's peer is gone
  /// (detected via EPIPE/ECONNRESET on the real transport, or a fault
  /// event in the simulator). Policies that learn per-connection state
  /// should stop crediting j and shift its allocation to survivors.
  virtual void on_channel_down(ConnectionId j) { (void)j; }

  /// Failure feedback: connection j reconnected to a live worker and may
  /// be re-admitted (typically via cautious probing).
  virtual void on_channel_up(ConnectionId j) { (void)j; }

  /// Overload protection (DESIGN.md §7): the policy's view of the
  /// region's saturation state, published for the substrate's admission
  /// control and shedding. Policies without a detector report "never
  /// overloaded" and the substrate's protections stay inert.
  struct OverloadState {
    bool overloaded = false;
    /// Estimated fraction of offered load exceeding capacity, in [0, 1].
    double capacity_deficit = 0.0;
  };
  virtual OverloadState overload_state() const { return {}; }

  /// Safe-mode fallback: the substrate's watchdog has decided the policy's
  /// adaptive machinery is not keeping the region live (e.g. sustained
  /// blocking through throttle and shed stages) and demands a known-safe
  /// static split. Policies that adapt should pin an even split over live
  /// connections until exit_safe_mode(). Default: no-op (static policies
  /// are already their own safe mode).
  virtual void enter_safe_mode() {}
  virtual void exit_safe_mode() {}
  virtual bool safe_mode() const { return false; }

  /// Current allocation weights (diagnostic; sums to kWeightUnits).
  virtual const WeightVector& weights() const = 0;

  /// When true, the splitter may divert a tuple whose chosen connection
  /// would block to another connection with buffer space (the failed
  /// approach of Section 4.4, kept as a reproducible baseline).
  virtual bool reroute_on_block() const { return false; }

  /// Observability (DESIGN.md §8): register this policy's metrics under
  /// `prefix` in `registry`. Default no-op — static policies have no
  /// internal state worth exporting.
  virtual void attach_metrics(obs::MetricsRegistry& registry,
                              std::string_view prefix) {
    (void)registry;
    (void)prefix;
  }

  /// Observability: attach a controller decision journal. Default no-op
  /// for policies without a controller.
  virtual void set_journal(obs::DecisionJournal* journal) { (void)journal; }

  virtual std::string name() const = 0;
};

/// Naive round-robin: equal weights, no adaptation ("RR" in the paper).
class RoundRobinPolicy : public SplitPolicy {
 public:
  explicit RoundRobinPolicy(int connections);
  ConnectionId pick_connection() override;
  const WeightVector& weights() const override { return weights_; }
  std::string name() const override { return "RR"; }

 private:
  WeightVector weights_;
  int cursor_ = 0;
  int connections_;
};

/// Round-robin that additionally asks the splitter to re-route tuples at
/// the transport level when the chosen connection is full (Section 4.4).
class RerouteOnBlockPolicy : public RoundRobinPolicy {
 public:
  explicit RerouteOnBlockPolicy(int connections)
      : RoundRobinPolicy(connections) {}
  bool reroute_on_block() const override { return true; }
  std::string name() const override { return "RR-reroute"; }
};

/// The paper's scheme: blocking-rate functions + minimax RAP, routed with
/// smooth weighted round-robin. "LB-adaptive" with decay_factor < 1,
/// "LB-static" with decay_factor == 1.
class LoadBalancingPolicy : public SplitPolicy {
 public:
  LoadBalancingPolicy(int connections, ControllerConfig config = {});

  ConnectionId pick_connection() override { return wrr_.pick(); }
  void on_sample(TimeNs now,
                 std::span<const DurationNs> cumulative_blocked) override;
  void on_channel_down(ConnectionId j) override;
  void on_channel_up(ConnectionId j) override;
  OverloadState overload_state() const override {
    return {controller_.overloaded(), controller_.capacity_deficit()};
  }
  void enter_safe_mode() override;
  void exit_safe_mode() override;
  bool safe_mode() const override { return safe_mode_; }
  const WeightVector& weights() const override {
    return safe_mode_ ? wrr_.weights() : controller_.weights();
  }
  std::string name() const override {
    return controller_.config().decay_factor < 1.0 ? "LB-adaptive"
                                                   : "LB-static";
  }

  /// Controller counters/gauges land under `prefix` (e.g. "policy." ->
  /// "policy.updates"); a safe-mode gauge rides along.
  void attach_metrics(obs::MetricsRegistry& registry,
                      std::string_view prefix) override;
  void set_journal(obs::DecisionJournal* journal) override {
    controller_.set_journal(journal);
  }

  const LoadBalanceController& controller() const { return controller_; }

 private:
  /// Even split over live connections, for safe mode.
  void pin_even_live();

  LoadBalanceController controller_;
  SmoothWrr wrr_;
  /// While set, the WRR runs an even split over live connections and the
  /// controller's output is ignored (though it keeps learning).
  bool safe_mode_ = false;
  obs::Gauge* safe_mode_gauge_ = nullptr;
};

/// Oracle*: applies externally-known ideal weights on a fixed schedule
/// (Section 6). "Ideal" weights are proportional to each connection's true
/// capacity; the star marks that at a load change it switches immediately,
/// which the paper notes is actually slightly *too early*.
class OraclePolicy : public SplitPolicy {
 public:
  /// One schedule entry: at `when`, start using weights proportional to
  /// `capacities` (relative processing speeds; need not be normalized).
  struct Phase {
    TimeNs when;
    std::vector<double> capacities;
  };

  OraclePolicy(int connections, std::vector<Phase> schedule);

  ConnectionId pick_connection() override { return wrr_.pick(); }
  void on_sample(TimeNs now,
                 std::span<const DurationNs> cumulative_blocked) override;
  const WeightVector& weights() const override { return wrr_.weights(); }
  std::string name() const override { return "Oracle*"; }

  /// Applies the next scheduled phase immediately, regardless of its
  /// timestamp. Experiments whose capacity changes are triggered by work
  /// progress rather than time (Section 6.3's "an eighth through the
  /// experiment") use this to keep the oracle omniscient.
  void advance_phase();

 private:
  std::vector<Phase> schedule_;
  std::size_t next_phase_ = 0;
  SmoothWrr wrr_;
};

/// Extension baseline (not in the paper): balance by observed
/// per-connection *delivered throughput*, with transport-level
/// re-routing so the single-threaded splitter does not simply enforce
/// its own weight mix by blocking. Each period it nudges weights toward
/// the observed delivery shares.
///
/// This works for unordered regions (parallel sinks), where rerouted
/// tuples exit freely and deliveries reveal capacity. In ordered regions
/// it inherits both Section 4.3 (deliveries mirror the input mix) and
/// Section 4.4 (re-routing is too little, too late), so it cannot correct
/// an imbalance — a runnable demonstration of why the paper needed the
/// blocking-rate signal.
class ThroughputBalancedPolicy : public SplitPolicy {
 public:
  /// @param gain fraction of the observed-share correction applied per
  ///   period, in (0, 1].
  /// @param reroute divert tuples whose connection would block (needed
  ///   for deliveries to carry any capacity information at all).
  explicit ThroughputBalancedPolicy(int connections, double gain = 0.5,
                                    bool reroute = true);

  ConnectionId pick_connection() override { return wrr_.pick(); }
  void on_throughput(TimeNs now,
                     std::span<const std::uint64_t> delivered) override;
  const WeightVector& weights() const override { return wrr_.weights(); }
  bool reroute_on_block() const override { return reroute_; }
  std::string name() const override { return "TP-balance"; }

 private:
  double gain_;
  bool reroute_;
  std::vector<std::uint64_t> prev_;
  bool have_baseline_ = false;
  SmoothWrr wrr_;
};

/// Rounds fractional shares to integer weights summing exactly to
/// kWeightUnits (largest-remainder method). Shares need not be normalized.
WeightVector weights_from_shares(const std::vector<double>& shares);

}  // namespace slb
