#include "core/rap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace slb {

namespace {

/// Sum of c_j * w_j.
Weight allocated_units(const std::vector<RapVariable>& vars,
                       const WeightVector& w) {
  Weight sum = 0;
  for (std::size_t j = 0; j < vars.size(); ++j) {
    sum += vars[j].multiplicity * w[j];
  }
  return sum;
}

/// Evaluation guard: a NaN or Inf from a poisoned rate function must not
/// reach the solvers' comparisons — NaN keys make std::sort and the heap
/// ordering undefined behavior, and both solvers' monotonicity-based
/// searches mis-step on them. Treat any non-finite value as "infinitely
/// bad but still comparable".
double safe_eval(const RapProblem& p, int j, Weight w) {
  const double v = p.eval(j, w);
  return std::isfinite(v) ? v : std::numeric_limits<double>::max();
}

double objective_of(const RapProblem& p, const WeightVector& w) {
  double worst = 0.0;
  for (std::size_t j = 0; j < w.size(); ++j) {
    worst = std::max(worst, safe_eval(p, static_cast<int>(j), w[j]));
  }
  return worst;
}

void validate(const RapProblem& p) {
  assert(p.eval);
  assert(p.total >= 0);
  for (const RapVariable& v : p.vars) {
    assert(v.min >= 0);
    assert(v.max >= v.min);
    assert(v.max <= kWeightUnits);
    assert(v.multiplicity >= 1);
    (void)v;
  }
}

}  // namespace

RapSolution solve_fox(const RapProblem& p) {
  validate(p);
  const int n = static_cast<int>(p.vars.size());
  RapSolution sol;
  sol.weights.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    sol.weights[static_cast<std::size_t>(j)] =
        p.vars[static_cast<std::size_t>(j)].min;
  }
  sol.allocated = allocated_units(p.vars, sol.weights);
  if (sol.allocated > p.total) {
    // Minimum shares alone exceed the traffic: infeasible.
    sol.objective = objective_of(p, sol.weights);
    sol.feasible = false;
    return sol;
  }

  // Min-heap over the value each variable would take at its *next* unit.
  // Keys never change for entries in the heap (eval is pure), so no
  // staleness handling is required: we push a fresh entry after each
  // increment. Ties break toward the variable currently holding the
  // *least* weight (then the lowest index): with identical functions —
  // e.g. at startup, before any blocking has been observed — this yields
  // an even spread instead of starving high indices.
  struct Entry {
    double value;
    Weight reached;  // the weight the variable would hold after this unit
    int j;
    bool operator>(const Entry& o) const {
      if (value != o.value) return value > o.value;
      if (reached != o.reached) return reached > o.reached;
      return j > o.j;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;

  auto push_next = [&](int j) {
    const auto ju = static_cast<std::size_t>(j);
    const Weight next = sol.weights[ju] + 1;
    if (next <= p.vars[ju].max &&
        sol.allocated + p.vars[ju].multiplicity <= p.total) {
      heap.push(Entry{safe_eval(p, j, next), next, j});
    }
  };

  for (int j = 0; j < n; ++j) push_next(j);

  while (sol.allocated < p.total && !heap.empty()) {
    const Entry e = heap.top();
    heap.pop();
    const auto ju = static_cast<std::size_t>(e.j);
    // Re-check the budget: earlier increments may have consumed units
    // since this entry was pushed.
    if (sol.allocated + p.vars[ju].multiplicity > p.total) continue;
    sol.weights[ju] += 1;
    sol.allocated += p.vars[ju].multiplicity;
    push_next(e.j);
  }

  sol.objective = objective_of(p, sol.weights);
  // Feasible when the full traffic fits; with unit multiplicities the
  // greedy always lands exactly on total unless every variable is capped.
  Weight max_units = 0;
  for (const RapVariable& v : p.vars) max_units += v.multiplicity * v.max;
  sol.feasible = sol.allocated == p.total ||
                 (max_units >= p.total &&
                  p.total - sol.allocated <
                      [&] {
                        int min_mult = std::numeric_limits<int>::max();
                        for (const RapVariable& v : p.vars) {
                          min_mult = std::min(min_mult, v.multiplicity);
                        }
                        return min_mult;
                      }());
  if (max_units < p.total) sol.feasible = false;
  return sol;
}

RapSolution solve_bisect(const RapProblem& p) {
  validate(p);
  const int n = static_cast<int>(p.vars.size());
  RapSolution sol;
  sol.weights.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    sol.weights[static_cast<std::size_t>(j)] =
        p.vars[static_cast<std::size_t>(j)].min;
  }
  sol.allocated = allocated_units(p.vars, sol.weights);
  if (sol.allocated > p.total) {
    sol.objective = objective_of(p, sol.weights);
    sol.feasible = false;
    return sol;
  }

  // Candidate objective values: every attainable F_j(w) in range. The
  // optimum must be one of them (or the mandatory floor max_j F_j(m_j)).
  std::vector<double> candidates;
  for (int j = 0; j < n; ++j) {
    const RapVariable& v = p.vars[static_cast<std::size_t>(j)];
    for (Weight w = v.min; w <= v.max; ++w) {
      candidates.push_back(safe_eval(p, j, w));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // cap_j(lambda): largest w in [m_j, M_j] with F_j(w) <= lambda, found by
  // binary search thanks to monotonicity. Returns m_j - 1 when even the
  // minimum exceeds lambda.
  auto cap = [&](int j, double lambda) -> Weight {
    const RapVariable& v = p.vars[static_cast<std::size_t>(j)];
    if (safe_eval(p, j, v.min) > lambda) return v.min - 1;
    Weight lo = v.min;
    Weight hi = v.max;
    while (lo < hi) {
      const Weight mid = lo + (hi - lo + 1) / 2;
      if (safe_eval(p, j, mid) <= lambda) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  auto feasible_at = [&](double lambda) {
    Weight capacity = 0;
    for (int j = 0; j < n; ++j) {
      const Weight c = cap(j, lambda);
      if (c < p.vars[static_cast<std::size_t>(j)].min) return false;
      capacity += p.vars[static_cast<std::size_t>(j)].multiplicity * c;
      if (capacity >= p.total) return true;
    }
    return capacity >= p.total;
  };

  // Binary search the smallest feasible candidate.
  std::size_t lo = 0;
  std::size_t hi = candidates.size();  // one past the end == "none work"
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible_at(candidates[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  // Round-robin fill toward per-variable limits, one unit each per pass.
  // A front-to-back fill would dump the whole budget on the lowest index
  // whenever the functions tie (all-zero / all-identical F_j, the common
  // degenerate case); spreading matches the greedy solver's tie-break and
  // returns the uniform point.
  auto fill_round_robin = [&](const std::vector<Weight>& limit) {
    bool progress = true;
    while (sol.allocated < p.total && progress) {
      progress = false;
      for (int j = 0; j < n && sol.allocated < p.total; ++j) {
        const auto ju = static_cast<std::size_t>(j);
        if (sol.weights[ju] < limit[ju] &&
            sol.allocated + p.vars[ju].multiplicity <= p.total) {
          sol.weights[ju] += 1;
          sol.allocated += p.vars[ju].multiplicity;
          progress = true;
        }
      }
    }
  };

  if (lo == candidates.size()) {
    // Even the loosest lambda cannot place all traffic: capacity-bound.
    std::vector<Weight> limit(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      limit[static_cast<std::size_t>(j)] = p.vars[static_cast<std::size_t>(j)].max;
    }
    fill_round_robin(limit);
    sol.objective = objective_of(p, sol.weights);
    sol.feasible = false;
    return sol;
  }

  const double lambda = candidates[lo];
  std::vector<Weight> limit(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    limit[static_cast<std::size_t>(j)] = cap(j, lambda);
  }
  fill_round_robin(limit);
  sol.objective = objective_of(p, sol.weights);
  Weight max_units = 0;
  for (const RapVariable& v : p.vars) max_units += v.multiplicity * v.max;
  int min_mult = std::numeric_limits<int>::max();
  for (const RapVariable& v : p.vars) {
    min_mult = std::min(min_mult, v.multiplicity);
  }
  sol.feasible =
      max_units >= p.total && (p.total - sol.allocated) < min_mult;
  return sol;
}

double bruteforce_objective(const RapProblem& p) {
  validate(p);
  const int n = static_cast<int>(p.vars.size());
  double best = std::numeric_limits<double>::infinity();
  WeightVector w(static_cast<std::size_t>(n), 0);

  // Depth-first enumeration of all assignments hitting the budget exactly
  // (or as close as multiplicities allow, mirroring the solvers).
  int min_mult = std::numeric_limits<int>::max();
  for (const RapVariable& v : p.vars) {
    min_mult = std::min(min_mult, v.multiplicity);
  }

  std::function<void(int, Weight, double)> go = [&](int j, Weight used,
                                                    double worst) {
    if (worst >= best) return;  // prune
    if (j == n) {
      if (p.total - used < min_mult && used <= p.total) {
        best = std::min(best, worst);
      }
      return;
    }
    const RapVariable& v = p.vars[static_cast<std::size_t>(j)];
    for (Weight x = v.min; x <= v.max; ++x) {
      const Weight next = used + v.multiplicity * x;
      if (next > p.total) break;
      go(j + 1, next, std::max(worst, safe_eval(p, j, x)));
    }
  };
  go(0, 0, 0.0);
  return best;
}

}  // namespace slb
