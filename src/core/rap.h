// Minimax separable resource-allocation problem (RAP) solvers
// (paper Section 5.2).
//
// The load-balancing optimization is:
//
//   minimize   max_j F_j(w_j)
//   subject to sum_j c_j * w_j = total,   m_j <= w_j <= M_j
//
// where each F_j is monotone non-decreasing in w_j and the w_j are
// integers (units of 0.1 %). The multiplicity c_j generalizes the paper's
// formulation to clustered connections (Section 5.3): a cluster of c
// look-alike connections is one variable whose per-member weight w costs
// c * w resource units.
//
// Three solvers are provided:
//  * solve_fox       — the greedy marginal-allocation algorithm attributed
//                      to Fox (1966); O(N + R log N) with a binary heap.
//                      This is the production path, as in the paper.
//  * solve_bisect    — a binary search on the objective value in the
//                      spirit of Galil & Megiddo (1979); used to
//                      cross-check Fox in tests.
//  * solve_bruteforce— exhaustive search; testing only, tiny instances.
#pragma once

#include <functional>
#include <vector>

#include "core/types.h"

namespace slb {

/// Bounds and multiplicity for one decision variable.
struct RapVariable {
  Weight min = 0;
  Weight max = kWeightUnits;
  int multiplicity = 1;
};

/// A problem instance. `eval(j, w)` must be monotone non-decreasing in `w`
/// for every `j` and cheap to call (the solvers call it O(N + R) times).
struct RapProblem {
  std::function<double(int j, Weight w)> eval;
  std::vector<RapVariable> vars;
  Weight total = kWeightUnits;
};

/// Result of a solve.
struct RapSolution {
  /// Chosen per-variable weights (per-member weights for clusters).
  WeightVector weights;
  /// max_j eval(j, weights[j]).
  double objective = 0.0;
  /// False when the constraints cannot be met: either sum c_j*m_j > total,
  /// or sum c_j*M_j < total. weights still holds the closest attempt.
  bool feasible = false;
  /// Resource units actually allocated (== total when feasible and the
  /// multiplicities divide evenly; may fall short of total by less than
  /// min multiplicity otherwise).
  Weight allocated = 0;
};

/// Greedy marginal-allocation (Fox). Exact for monotone instances.
RapSolution solve_fox(const RapProblem& problem);

/// Binary search on the objective value. Exact for monotone instances;
/// asymptotically cheaper in R than Fox, used here for cross-validation.
RapSolution solve_bisect(const RapProblem& problem);

/// Exhaustive optimal objective (not weights); for tests with tiny N and
/// total only — cost is O((total+1)^N).
double bruteforce_objective(const RapProblem& problem);

}  // namespace slb
