#include "core/rate_estimator.h"

#include <algorithm>
#include <cassert>

namespace slb {

BlockingRateEstimator::BlockingRateEstimator(int connections, double alpha)
    : alpha_(alpha) {
  assert(connections > 0);
  smoothed_.reserve(static_cast<std::size_t>(connections));
  for (int j = 0; j < connections; ++j) smoothed_.emplace_back(alpha);
  last_raw_.assign(static_cast<std::size_t>(connections), 0.0);
  last_cumulative_.assign(static_cast<std::size_t>(connections), 0);
}

void BlockingRateEstimator::ingest(TimeNs now,
                                   std::span<const DurationNs> cumulative) {
  assert(cumulative.size() == smoothed_.size());
  if (!have_baseline_) {
    std::copy(cumulative.begin(), cumulative.end(), last_cumulative_.begin());
    last_time_ = now;
    have_baseline_ = true;
    return;
  }
  const DurationNs period = now - last_time_;
  if (period < 0) {
    // Clock went backwards (host suspend, clock step). Re-baseline rather
    // than ignoring: ignoring would compare every future sample against
    // the bogus future timestamp and discard them until the clock catches
    // up — potentially forever.
    std::copy(cumulative.begin(), cumulative.end(), last_cumulative_.begin());
    last_time_ = now;
    return;
  }
  if (period == 0) return;  // duplicate sample; ignore
  for (std::size_t j = 0; j < smoothed_.size(); ++j) {
    DurationNs delta = cumulative[j] - last_cumulative_[j];
    // The transport layer periodically resets its counters (Figure 2);
    // a negative delta means a reset happened, so re-baseline this period.
    if (delta < 0) delta = cumulative[j];
    const double raw =
        static_cast<double>(delta) / static_cast<double>(period);
    last_raw_[j] = raw;
    smoothed_[j].add(raw);
    last_cumulative_[j] = cumulative[j];
  }
  last_time_ = now;
  ready_ = true;
}

void BlockingRateEstimator::reset() {
  for (auto& e : smoothed_) e.reset();
  std::fill(last_raw_.begin(), last_raw_.end(), 0.0);
  std::fill(last_cumulative_.begin(), last_cumulative_.end(), 0);
  last_time_ = 0;
  have_baseline_ = false;
  ready_ = false;
}

}  // namespace slb
