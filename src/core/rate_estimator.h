// Turns successive samples of cumulative blocking time into smoothed
// per-connection blocking rates (Section 3, Figure 2 of the paper).
//
// The blocking *rate* of connection j over a sampling period is the first
// difference of its cumulative blocking time divided by the period length:
// the fraction of the period the splitter spent blocked on that
// connection. It is dimensionless and lies in [0, 1] per connection (the
// splitter is a single thread, so the rates across connections also sum to
// at most ~1).
#pragma once

#include <span>
#include <vector>

#include "util/ewma.h"
#include "util/time.h"

namespace slb {

/// Per-connection rate estimation with EWMA smoothing. Feed one cumulative
/// snapshot per period; read back smoothed rates.
class BlockingRateEstimator {
 public:
  /// @param connections number of connections in the region.
  /// @param alpha EWMA smoothing factor for the per-period raw rates.
  BlockingRateEstimator(int connections, double alpha);

  /// Ingests a snapshot taken at time `now`. The first call only
  /// establishes a baseline; it produces no rates.
  /// @param cumulative cumulative blocked ns per connection, monotone
  ///   non-decreasing between calls (a reset to a smaller value is treated
  ///   as a new baseline).
  void ingest(TimeNs now, std::span<const DurationNs> cumulative);

  /// True once at least two snapshots have been ingested.
  bool ready() const { return ready_; }

  /// Smoothed blocking rate for connection j (fraction of time blocked).
  double rate(int j) const { return smoothed_[static_cast<std::size_t>(j)].value(); }

  /// Raw (unsmoothed) rate observed in the most recent period.
  double last_raw_rate(int j) const {
    return last_raw_[static_cast<std::size_t>(j)];
  }

  int connections() const { return static_cast<int>(smoothed_.size()); }

  /// Forgets all history (e.g. after the transport layer resets counters).
  void reset();

 private:
  std::vector<Ewma> smoothed_;
  std::vector<double> last_raw_;
  std::vector<DurationNs> last_cumulative_;
  TimeNs last_time_ = 0;
  bool have_baseline_ = false;
  bool ready_ = false;
  double alpha_;
};

}  // namespace slb
