#include "core/rate_function.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/monotone_regression.h"

namespace slb {

RateFunction::RateFunction(RateFunctionConfig config)
    : config_(config),
      fitted_(static_cast<std::size_t>(kWeightUnits) + 1, 0.0) {}

void RateFunction::observe(Weight w, double rate, double sample_weight) {
  assert(w >= 0 && w <= kWeightUnits);
  // Degenerate measurements (a NaN from a zero-length period upstream, an
  // Inf from a counter glitch, a negative rate from a torn read) must not
  // poison the fit: one NaN in raw_ would propagate through the isotonic
  // regression into every fitted value. Drop them.
  if (!std::isfinite(rate) || rate < 0.0) return;
  if (!std::isfinite(sample_weight)) return;
  if (w <= 0 || w > kWeightUnits) return;  // origin is pinned at (0,0)
  if (sample_weight <= 0.0) return;
  auto [it, inserted] = raw_.try_emplace(w, RawPoint{rate, sample_weight});
  if (!inserted) {
    RawPoint& p = it->second;
    p.value = config_.mix_alpha * rate + (1.0 - config_.mix_alpha) * p.value;
    p.weight = std::min(p.weight + sample_weight, config_.max_point_weight);
  }
  dirty_ = true;
}

void RateFunction::decay_above(Weight w, double factor) {
  assert(factor >= 0.0 && factor <= 1.0);
  bool changed = false;
  for (auto it = raw_.upper_bound(w); it != raw_.end(); ++it) {
    it->second.value *= factor;
    changed = true;
  }
  if (changed) dirty_ = true;
}

double RateFunction::value(Weight w) const {
  assert(w >= 0 && w <= kWeightUnits);
  fit();
  return fitted_[static_cast<std::size_t>(w)];
}

Weight RateFunction::service_rate() const {
  fit();
  return service_rate_;
}

void RateFunction::load_raw(const std::map<Weight, RawPoint>& points) {
  raw_ = points;
  raw_.erase(0);
  dirty_ = true;
}

void RateFunction::reset() {
  raw_.clear();
  dirty_ = true;
}

const std::vector<double>& RateFunction::fitted() const {
  fit();
  return fitted_;
}

void RateFunction::fit() const {
  if (!dirty_) return;
  dirty_ = false;

  // Assemble the raw points, always prepending the assumed origin (0, 0).
  // The origin is given a large weight so the regression cannot lift it:
  // an idle connection never blocks.
  std::vector<Weight> xs;
  std::vector<double> ys;
  std::vector<double> ws;
  xs.reserve(raw_.size() + 1);
  ys.reserve(raw_.size() + 1);
  ws.reserve(raw_.size() + 1);
  xs.push_back(0);
  ys.push_back(0.0);
  ws.push_back(1e9);
  for (const auto& [w, p] : raw_) {
    xs.push_back(w);
    ys.push_back(p.value);
    ws.push_back(std::max(p.weight, config_.delta));
  }

  const std::vector<double> iso = isotonic_fit(ys, ws);

  // Linear interpolation between observed weights; the origin's huge weight
  // keeps iso[0] == 0 exactly.
  std::fill(fitted_.begin(), fitted_.end(), 0.0);
  for (std::size_t k = 0; k + 1 < xs.size(); ++k) {
    const Weight x0 = xs[k];
    const Weight x1 = xs[k + 1];
    const double y0 = iso[k];
    const double y1 = iso[k + 1];
    for (Weight x = x0; x <= x1; ++x) {
      const double t = (x1 == x0)
                           ? 0.0
                           : static_cast<double>(x - x0) /
                                 static_cast<double>(x1 - x0);
      fitted_[static_cast<std::size_t>(x)] = y0 + t * (y1 - y0);
    }
  }

  // Linear extrapolation past the last observed weight, using the slope of
  // the final segment (never negative thanks to the isotonic fit).
  const Weight last = xs.back();
  if (last < kWeightUnits) {
    double slope = 0.0;
    if (xs.size() >= 2) {
      const Weight x0 = xs[xs.size() - 2];
      const double y0 = iso[xs.size() - 2];
      const double y1 = iso[xs.size() - 1];
      if (last > x0) {
        slope = (y1 - y0) / static_cast<double>(last - x0);
      }
    }
    const double base = iso.back();
    for (Weight x = last + 1; x <= kWeightUnits; ++x) {
      fitted_[static_cast<std::size_t>(x)] =
          base + slope * static_cast<double>(x - last);
    }
  }

  // Locate the knee.
  service_rate_ = kWeightUnits;
  for (Weight x = 0; x <= kWeightUnits; ++x) {
    if (fitted_[static_cast<std::size_t>(x)] > config_.delta) {
      service_rate_ = x;
      break;
    }
  }
}

}  // namespace slb
