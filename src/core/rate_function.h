// The per-connection blocking-rate function F_j (paper Section 5.1).
//
// F_j(w) predicts the blocking rate connection j experiences (or would
// experience) when allocated weight w, for w in {0, 1, ..., kWeightUnits}
// units of 0.1 %. It is maintained in three steps, exactly as the paper
// describes:
//
//   1. New observations are smoothed into the existing *raw* data at the
//      observed weight. The point (0, 0) is always assumed.
//   2. The raw points are forced non-decreasing by monotone regression
//      (PAVA, see monotone_regression.h).
//   3. The rest of the domain is filled in by linear interpolation between
//      observed weights and linear extrapolation beyond the last one.
//
// The exploration mechanism (Section 5.4) is `decay_above`: every raw value
// beyond the current allocation weight is reduced geometrically, which —
// combined with monotone regression — flattens the function past the
// operating point and entices the optimizer to explore larger weights.
#pragma once

#include <map>
#include <vector>

#include "core/types.h"

namespace slb {

/// One raw observation cell: the smoothed observed blocking rate at a
/// particular weight, plus the accumulated sample weight (how much evidence
/// backs the value).
struct RawPoint {
  double value = 0.0;
  double weight = 0.0;
};

/// Tunables for RateFunction; defaults follow the paper where it is
/// explicit and DESIGN.md where it is not.
struct RateFunctionConfig {
  /// Mixing factor when folding a new observation into an existing raw
  /// point: raw = mix_alpha * new + (1 - mix_alpha) * old.
  double mix_alpha = 0.5;
  /// Cap on a raw point's accumulated sample weight, so very old evidence
  /// cannot forever outvote fresh data in the isotonic fit.
  double max_point_weight = 8.0;
  /// Small value used when monotonicity must be forced / when comparing
  /// near-zero rates (the paper's delta).
  double delta = 1e-6;
};

/// A single connection's predictive blocking-rate function.
class RateFunction {
 public:
  explicit RateFunction(RateFunctionConfig config = {});

  /// Folds one observation into the raw data: connection was seen blocking
  /// at `rate` (fraction of the period spent blocked) while holding
  /// allocation weight `w`. `sample_weight` scales the evidence (the
  /// controller gives full weight to real blocking and a configurable
  /// smaller weight to zero observations). The fit is refreshed lazily.
  void observe(Weight w, double rate, double sample_weight = 1.0);

  /// Exploration decay: multiplies every raw value at weights strictly
  /// greater than `w` by `factor` (the paper uses 0.9 per iteration).
  void decay_above(Weight w, double factor);

  /// Predicted blocking rate at weight `w`. Triggers a (cached) fit.
  double value(Weight w) const;

  /// The "knee" / effective service rate w_s: the smallest weight at which
  /// the fitted function exceeds delta. Returns kWeightUnits if the
  /// function is flat zero (no blocking ever observed).
  Weight service_rate() const;

  /// Number of distinct raw weights with recorded evidence (excluding the
  /// assumed origin).
  int observed_points() const { return static_cast<int>(raw_.size()); }

  /// Raw data access (for cluster-function construction and tests).
  const std::map<Weight, RawPoint>& raw() const { return raw_; }

  /// Bulk-loads raw data (used when building cluster aggregate functions).
  void load_raw(const std::map<Weight, RawPoint>& points);

  /// Removes all evidence; the function returns to identically zero.
  void reset();

  const RateFunctionConfig& config() const { return config_; }

  /// Entire fitted curve over {0..kWeightUnits}; mainly for tracing and
  /// tests.
  const std::vector<double>& fitted() const;

 private:
  void fit() const;

  RateFunctionConfig config_;
  std::map<Weight, RawPoint> raw_;  // never contains weight 0
  mutable std::vector<double> fitted_;
  mutable Weight service_rate_ = kWeightUnits;
  mutable bool dirty_ = true;
};

}  // namespace slb
