#include "core/saturation.h"

#include <algorithm>
#include <cmath>

namespace slb {

SaturationDetector::SaturationDetector(SaturationConfig config)
    : config_(config), deficit_(config.deficit_alpha) {}

void SaturationDetector::observe(std::span<const double> rates,
                                 std::span<const char> down) {
  if (smoothed_.size() < rates.size()) smoothed_.resize(rates.size(), -1.0);
  double aggregate = 0.0;
  double smoothed_min = 0.0;
  double smoothed_sum = 0.0;
  int live = 0;
  for (std::size_t j = 0; j < rates.size(); ++j) {
    if (j < down.size() && down[j] != 0) {
      // Downed connections carry no signal; forget their history so a
      // returning connection starts from its first fresh sample instead
      // of a stale one.
      smoothed_[j] = -1.0;
      continue;
    }
    double r = rates[j];
    if (!std::isfinite(r) || r < 0.0) r = 0.0;
    aggregate += r;
    smoothed_[j] = smoothed_[j] < 0.0
                       ? r
                       : config_.smoothing_alpha * r +
                             (1.0 - config_.smoothing_alpha) * smoothed_[j];
    smoothed_min =
        live == 0 ? smoothed_[j] : std::min(smoothed_min, smoothed_[j]);
    smoothed_sum += smoothed_[j];
    ++live;
  }
  last_aggregate_ = aggregate;
  if (live == 0) {
    // Nothing live: not an overload problem (the failure path owns this).
    enter_streak_ = 0;
    return;
  }
  const double smoothed_mean = smoothed_sum / static_cast<double>(live);

  if (!overloaded_) {
    const bool saturated =
        aggregate >= config_.enter_aggregate && smoothed_min > 0.0 &&
        smoothed_min >= config_.enter_min_fraction * smoothed_mean;
    enter_streak_ = saturated ? enter_streak_ + 1 : 0;
    if (enter_streak_ >= config_.enter_periods) {
      overloaded_ = true;
      ++episodes_;
      periods_overloaded_ = 0;
      exit_streak_ = 0;
      deficit_.reset();
      deficit_.add(aggregate);
    }
    return;
  }

  ++periods_overloaded_;
  deficit_.add(aggregate);
  // Exit on aggregate slack alone: with the controller frozen the draft
  // leader can pin to one connection, so an evenness requirement here
  // would read normal drafting as recovery.
  exit_streak_ =
      aggregate < config_.exit_aggregate ? exit_streak_ + 1 : 0;
  if (exit_streak_ >= config_.exit_periods) {
    overloaded_ = false;
    enter_streak_ = 0;
    exit_streak_ = 0;
    periods_overloaded_ = 0;
    deficit_.reset();
  }
}

double SaturationDetector::capacity_deficit() const {
  if (!overloaded_) return 0.0;
  return std::clamp(deficit_.value(), 0.0, 1.0);
}

void SaturationDetector::reset() {
  smoothed_.assign(smoothed_.size(), -1.0);
  overloaded_ = false;
  enter_streak_ = 0;
  exit_streak_ = 0;
  periods_overloaded_ = 0;
  last_aggregate_ = 0.0;
  deficit_.reset();
}

}  // namespace slb
