// Saturation (overload) detection for a parallel region's controller.
//
// The paper's blocking-rate mechanism assumes the region is *feasible*:
// some allocation exists under which every connection keeps up. When
// aggregate demand exceeds total worker capacity no such allocation
// exists — back pressure saturates every connection, each F_j flattens at
// its ceiling, and the minimax RAP loses its gradient: every reallocation
// looks equally bad, so decay-driven re-exploration just shovels tuples
// at channels that cannot absorb them.
//
// The detector recognizes that regime from the same per-period blocking
// rates the controller already consumes. The signature of saturation is
// twofold (see DESIGN.md §7):
//
//   1. the splitter is blocked almost all the time (aggregate rate ~1);
//   2. the blocking is *spread across all live connections* — once the
//      optimizer has equalized the F_j at their ceiling, no connection
//      stands out, which is exactly the flat-F_j / zero-gradient state.
//      (A high aggregate concentrated persistently on one connection is
//      the opposite: a strong gradient the optimizer can still exploit.)
//
// Within any single period, blocking concentrates on one connection — the
// paper's drafting phenomenon (Section 4.2): blocking on the leader gives
// every other connection slack. Under saturation the leader *rotates*
// across periods; under a feasible imbalance it pins to the overweighted
// connection until the controller reallocates. The evenness test therefore
// runs on slowly EWMA-smoothed per-connection rates (horizon of roughly a
// rotation cycle), while the aggregate test — a sum, invariant to which
// connection blocks — uses the instantaneous rate.
//
// Entry and exit are hysteretic: `enter_periods` consecutive saturated
// periods declare overload; `exit_periods` consecutive periods with real
// aggregate slack clear it. (Exit deliberately ignores evenness: once the
// controller freezes, the leader can pin without meaning recovery.) While
// overloaded the detector publishes a capacity-deficit estimate — the
// fraction of the offered load the region cannot absorb — which drives
// source admission control and splitter-side shedding.
#pragma once

#include <span>
#include <vector>

#include "util/ewma.h"

namespace slb {

struct SaturationConfig {
  /// Entry: instantaneous aggregate blocking rate (sum over live
  /// connections, in [0,1] for a single-threaded splitter) must reach
  /// this...
  double enter_aggregate = 0.90;
  /// ...with every live connection's *smoothed* rate at least this
  /// fraction of the smoothed live mean (the all-channels-blocking /
  /// flat-F_j test)...
  double enter_min_fraction = 0.25;
  /// ...for this many consecutive periods.
  int enter_periods = 3;

  /// Per-connection smoothing for the evenness test. The horizon
  /// (~1/alpha periods) must cover a drafting rotation cycle, or the
  /// current leader's monopoly on the period masks the spread.
  double smoothing_alpha = 0.05;

  /// Exit (hysteresis): overload clears after `exit_periods` consecutive
  /// periods with instantaneous aggregate below this.
  double exit_aggregate = 0.70;
  int exit_periods = 3;

  /// Smoothing factor for the capacity-deficit estimate.
  double deficit_alpha = 0.3;
};

/// Feed one vector of per-connection blocking rates per sampling period;
/// read back the overload state and the deficit estimate.
class SaturationDetector {
 public:
  explicit SaturationDetector(SaturationConfig config = {});

  /// Ingests one period. `rates[j]` is connection j's blocking rate over
  /// the period (fraction of the period the splitter spent blocked on j,
  /// non-finite and negative values are treated as 0). `down[j] != 0`
  /// excludes connection j from the live set; pass an empty span when
  /// every connection is live.
  void observe(std::span<const double> rates,
               std::span<const char> down = {});

  bool overloaded() const { return overloaded_; }

  /// Estimated fraction of the offered load exceeding region capacity,
  /// in [0, 1]; 0 when not overloaded. Smoothed from the aggregate
  /// blocking rate: the splitter spends this fraction of its time being
  /// refused, so throttling (or shedding) the same fraction of the
  /// source restores feasibility.
  double capacity_deficit() const;

  /// Consecutive periods spent in the current overload episode (0 when
  /// not overloaded). Substrate watchdogs escalate on this.
  int periods_overloaded() const { return periods_overloaded_; }

  /// Total overload episodes entered so far.
  int episodes() const { return episodes_; }

  /// Aggregate blocking rate seen in the most recent period.
  double last_aggregate() const { return last_aggregate_; }

  void reset();

  const SaturationConfig& config() const { return config_; }

 private:
  SaturationConfig config_;
  Ewma deficit_;
  /// Smoothed per-connection rates for the evenness test; negative =
  /// uninitialized (first live sample initializes directly).
  std::vector<double> smoothed_;
  bool overloaded_ = false;
  int enter_streak_ = 0;
  int exit_streak_ = 0;
  int periods_overloaded_ = 0;
  int episodes_ = 0;
  double last_aggregate_ = 0.0;
};

}  // namespace slb
