// Shared vocabulary types for the load-balancing core.
#pragma once

#include <cstdint>
#include <vector>

namespace slb {

/// A discrete allocation weight in units of 0.1 % of the total tuple
/// traffic, exactly the paper's discretization (Section 5.1): the domain of
/// every blocking-rate function is {0, 1, ..., 1000}, i.e. 1001 values.
using Weight = int;

/// Total number of resource units (R in the paper): 1000 units of 0.1 %.
inline constexpr Weight kWeightUnits = 1000;

/// Index of a splitter → worker connection within one parallel region.
using ConnectionId = int;

/// One full allocation: weights_[j] is connection j's share in 0.1 % units.
/// A valid allocation sums to kWeightUnits.
using WeightVector = std::vector<Weight>;

/// Returns an even split of kWeightUnits over n connections; the first
/// (kWeightUnits % n) connections receive one extra unit so the total is
/// exact.
inline WeightVector even_weights(int n) {
  WeightVector w(static_cast<std::size_t>(n), kWeightUnits / n);
  for (int j = 0; j < kWeightUnits % n; ++j) ++w[static_cast<std::size_t>(j)];
  return w;
}

/// Sum of a weight vector.
inline Weight total_weight(const WeightVector& w) {
  Weight sum = 0;
  for (Weight x : w) sum += x;
  return sum;
}

}  // namespace slb
