#include "core/wrr.h"

#include <cassert>

namespace slb {

SmoothWrr::SmoothWrr(int connections) : current_(connections, 0) {
  assert(connections > 0);
  set_weights(even_weights(connections));
}

void SmoothWrr::set_weights(const WeightVector& weights) {
  assert(weights.size() == current_.size());
  weights_ = weights;
  total_ = 0;
  for (Weight w : weights_) {
    assert(w >= 0);
    total_ += w;
  }
  // Keep the accumulated `current_` credit so weight changes do not cause
  // a burst toward low-index connections; clamp credits of connections
  // that just dropped to zero so they cannot be picked on residual credit.
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    if (weights_[j] == 0 && current_[j] > 0) current_[j] = 0;
  }
}

ConnectionId SmoothWrr::pick() {
  if (total_ == 0) {
    // Degenerate all-zero weights: plain round-robin.
    const int n = connections();
    const int choice = fallback_cursor_;
    fallback_cursor_ = (fallback_cursor_ + 1) % n;
    return choice;
  }
  int best = -1;
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    if (weights_[j] == 0) continue;
    current_[j] += weights_[j];
    if (best < 0 || current_[j] > current_[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(j);
    }
  }
  current_[static_cast<std::size_t>(best)] -= total_;
  return best;
}

}  // namespace slb
