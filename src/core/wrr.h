// Smooth weighted round-robin tuple routing.
//
// The splitter routes each tuple to one connection so that, over any
// window, connection j receives a fraction w_j / kWeightUnits of the
// tuples (paper Section 5.1: "round robin allocation weights"). We use the
// interleaving scheme popularized by nginx: it is deterministic, O(N) per
// pick, and spreads each connection's picks as evenly as possible through
// the cycle instead of sending long bursts, which keeps per-connection
// queue occupancy smooth.
#pragma once

#include <vector>

#include "core/types.h"

namespace slb {

class SmoothWrr {
 public:
  /// Starts with an even split over `connections`.
  explicit SmoothWrr(int connections);

  /// Replaces the weights. Zero-weight connections are never picked while
  /// any positive weight exists. An all-zero vector falls back to plain
  /// round-robin so the splitter can always make progress.
  void set_weights(const WeightVector& weights);

  const WeightVector& weights() const { return weights_; }

  /// Chooses the connection for the next tuple.
  ConnectionId pick();

  int connections() const { return static_cast<int>(weights_.size()); }

 private:
  WeightVector weights_;
  std::vector<long long> current_;
  long long total_ = 0;
  int fallback_cursor_ = 0;
};

}  // namespace slb
