// Delivery semantics for an ordered data-parallel region (DESIGN.md §10).
//
// GapSkip is the historical behavior (PR 1): sequences that die with a
// worker are declared gaps and the merger skips them — ordering survives,
// data does not. AtLeastOnce arms the recovery machinery: the splitter
// keeps a bounded per-channel replay buffer of unacked tuples, the merger
// piggybacks cumulative acks (highest contiguously released sequence)
// back to the splitter, and a crash replays the dead channel's unacked
// suffix onto the survivors. The merger's dedup window (any sequence
// below its release cursor) discards re-sent tuples that already made it
// out, so the sink sees every sequence exactly once, in order.
//
// Both substrates — the discrete-event sim (sim::Region) and the
// loopback-TCP runtime (rt::LocalRegion) — consume this one config.
#pragma once

#include <cstddef>

namespace slb::delivery {

enum class DeliveryMode {
  /// Crash losses become merger gaps (skip-and-continue). No buffers,
  /// no acks — byte-identical to the pre-delivery-subsystem behavior.
  kGapSkip,
  /// Unacked tuples are buffered at the splitter and replayed onto
  /// surviving channels after a crash; the merger deduplicates.
  kAtLeastOnce,
};

struct DeliveryConfig {
  DeliveryMode mode = DeliveryMode::kGapSkip;

  /// Per-channel replay-buffer byte cap. A full buffer back-pressures
  /// the source exactly like a full send buffer (the blocked time is
  /// charged to that channel's blocking counter, so the blocking-rate
  /// signal stays truthful). Sizing guidance in DESIGN.md §10: it bounds
  /// worst-case replay work after a crash, so a cap of roughly
  /// (ack round-trip) x (per-channel send rate) x (tuple bytes) keeps
  /// steady state unblocked.
  std::size_t replay_buffer_bytes = 256 * 1024;

  /// Runtime only: the merger piggybacks a cumulative ack after this
  /// many releases (and flushes smaller progress when idle). The sim's
  /// reverse hop coalesces per drain instead — virtual time makes
  /// batching free there.
  int ack_every = 64;

  /// Ack-stall watchdog rung (control loop): escalate after this many
  /// consecutive sample periods with unacked tuples outstanding, ack
  /// progress frozen, and at least one channel unquarantined. 0 disables
  /// the rung (default — keeps GapSkip regions byte-identical).
  int ack_stall_periods = 0;
};

}  // namespace slb::delivery
