// Per-channel in-flight replay buffer (DESIGN.md §10).
//
// The splitter appends every tuple it sends on a channel (sequence,
// wire-size, payload) and trims on cumulative acks from the merger. On a
// crash the whole buffer is taken and re-sent onto surviving channels.
// The buffer is byte-capped: `would_block` tells the splitter to treat
// the channel like a full send buffer, back-pressuring the source, so an
// ack stall cannot pin unbounded memory.
//
// Payload is a template parameter because the two substrates buffer
// different things: the sim buffers sim::Tuple values, the runtime
// buffers encoded wire frames (std::vector<uint8_t>).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

namespace slb::delivery {

template <typename Payload>
class ReplayBuffer {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    std::size_t bytes = 0;
    Payload payload{};
  };

  /// `byte_cap == 0` means unbounded (tests only; real configs cap).
  explicit ReplayBuffer(std::size_t byte_cap = 0) : cap_(byte_cap) {}

  /// True when admitting `next_bytes` more would exceed the cap. An
  /// empty buffer always admits — otherwise one tuple larger than the
  /// cap would wedge the region instead of merely serializing it.
  bool would_block(std::size_t next_bytes) const {
    return cap_ != 0 && !entries_.empty() && bytes_ + next_bytes > cap_;
  }

  void push(std::uint64_t seq, std::size_t bytes, Payload payload) {
    bytes_ += bytes;
    entries_.push_back(Entry{seq, bytes, std::move(payload)});
  }

  /// Cumulative ack: every sequence below `cum_ack` has been released
  /// downstream. Returns the number of entries dropped. Entries are not
  /// sorted after a replay lands fresh sends behind re-sent older
  /// sequences, so this scans past the sorted prefix.
  std::size_t ack(std::uint64_t cum_ack) {
    std::size_t removed = 0;
    while (!entries_.empty() && entries_.front().seq < cum_ack) {
      bytes_ -= entries_.front().bytes;
      entries_.pop_front();
      ++removed;
    }
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->seq < cum_ack) {
        bytes_ -= it->bytes;
        it = entries_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  /// Crash replay: drains the whole buffer; the caller owns re-sending
  /// (and re-buffering on whichever channel each entry lands on).
  std::deque<Entry> take_all() {
    bytes_ = 0;
    return std::exchange(entries_, {});
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t byte_cap() const { return cap_; }

 private:
  std::size_t cap_;
  std::size_t bytes_ = 0;
  std::deque<Entry> entries_;
};

}  // namespace slb::delivery
