#include "flow/pipeline.h"

#include <algorithm>
#include <cassert>

namespace slb::flow {

PipelineBuilder::PipelineBuilder(PipelineConfig config) : config_(config) {}

PipelineBuilder& PipelineBuilder::op(std::string name, DurationNs cost,
                                     sim::LoadProfile load) {
  assert(!consumed_);
  assert(cost > 0);
  StageSpec spec;
  spec.name = std::move(name);
  spec.parallel = false;
  spec.cost = cost;
  spec.load = std::move(load);
  specs_.push_back(std::move(spec));
  return *this;
}

PipelineBuilder& PipelineBuilder::parallel(std::string name, int width,
                                           DurationNs cost,
                                           std::unique_ptr<SplitPolicy> policy,
                                           bool ordered,
                                           sim::LoadProfile load) {
  assert(!consumed_);
  assert(width > 0);
  assert(cost > 0);
  assert(policy != nullptr);
  StageSpec spec;
  spec.name = std::move(name);
  spec.parallel = true;
  spec.width = width;
  spec.cost = cost;
  spec.policy = std::move(policy);
  spec.ordered = ordered;
  spec.load = std::move(load);
  specs_.push_back(std::move(spec));
  return *this;
}

std::unique_ptr<Pipeline> PipelineBuilder::build() {
  assert(!consumed_);
  assert(!specs_.empty());
  consumed_ = true;

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline(config_));
  pipeline->prot_ = config_.resolved_protection();
  const control::ProtectionConfig& prot = pipeline->prot_;
  sim::Simulator* sim = &pipeline->sim_;

  sim::Channel::Config chan_cfg;
  chan_cfg.send_capacity = config_.channel_buffer;
  chan_cfg.recv_capacity = config_.channel_buffer;
  chan_cfg.latency = config_.link_latency;

  // Pass 1: create stage shells and their input channels.
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    auto stage = std::make_unique<Pipeline::Stage>();
    stage->name = specs_[s].name;
    stage->parallel = specs_[s].parallel;
    stage->input = std::make_unique<sim::Channel>(
        sim, static_cast<int>(s), chan_cfg);
    pipeline->stages_.push_back(std::move(stage));
  }

  // Pass 2: wire each stage's machinery and its output adapter.
  pipeline->sink_.set_on_tuple([p = pipeline.get()](const sim::Tuple& t) {
    if (p->seen_any_ && t.seq <= p->last_seq_) p->order_ok_ = false;
    p->last_seq_ = t.seq;
    p->seen_any_ = true;
    p->latency_.add(static_cast<double>(p->sim_.now() - t.created));
  });

  for (std::size_t s = 0; s < specs_.size(); ++s) {
    StageSpec& spec = specs_[s];
    Pipeline::Stage& stage = *pipeline->stages_[s];

    sim::TupleSink* downstream;
    if (s + 1 < specs_.size()) {
      stage.out = std::make_unique<sim::ChannelSink>(
          pipeline->stages_[s + 1]->input.get());
      downstream = stage.out.get();
    } else {
      downstream = &pipeline->sink_;
    }

    if (!spec.parallel) {
      stage.load = std::make_unique<sim::LoadProfile>(
          spec.load.workers() == 0 ? sim::LoadProfile(1)
                                   : std::move(spec.load));
      assert(stage.load->workers() == 1);
      stage.worker = std::make_unique<sim::Worker>(
          sim, /*id=*/0, spec.cost, stage.load.get(), nullptr);
      stage.worker->wire(stage.input.get(), downstream, /*port=*/0);
      continue;
    }

    // Parallel region: splitter fed by the stage input, `width` channels
    // and workers, and an (un)ordered merger chained downstream.
    stage.load = std::make_unique<sim::LoadProfile>(
        spec.load.workers() == 0 ? sim::LoadProfile(spec.width)
                                 : std::move(spec.load));
    assert(stage.load->workers() == spec.width);
    stage.policy = std::move(spec.policy);
    stage.counters =
        std::make_unique<BlockingCounterSet>(static_cast<std::size_t>(
            spec.width));
    stage.merger = std::make_unique<sim::Merger>(
        sim, spec.width, sim::Merger::kUnbounded, spec.ordered);
    stage.merger->connect_downstream(downstream);

    std::vector<sim::Channel*> channel_ptrs;
    for (int j = 0; j < spec.width; ++j) {
      stage.channels.push_back(
          std::make_unique<sim::Channel>(sim, j, chan_cfg));
      stage.workers.push_back(std::make_unique<sim::Worker>(
          sim, j, spec.cost, stage.load.get(), nullptr));
      stage.workers.back()->wire(stage.channels.back().get(),
                                 stage.merger.get());
      channel_ptrs.push_back(stage.channels.back().get());
    }
    stage.splitter = std::make_unique<sim::Splitter>(
        sim, stage.policy.get(), config_.source_overhead);
    stage.splitter->wire(std::move(channel_ptrs), stage.counters.get());
    stage.splitter->set_input(stage.input.get());

    // Each parallel stage runs the shared decision pipeline over its own
    // counters and policy; actuation is aggregated onto the source in
    // Pipeline::sample_tick.
    stage.port = std::make_unique<Pipeline::StagePort>(&stage);
    control::ControlLoopConfig loop_cfg;
    loop_cfg.protection = prot;
    loop_cfg.closed_loop_source = config_.source_interval == 0;
    stage.loop = std::make_unique<control::RegionControlLoop>(
        stage.port.get(), stage.policy.get(), loop_cfg);

    if (config_.metrics) {
      obs::MetricsRegistry& reg = pipeline->metrics_;
      const std::string prefix = "stage." + stage.name + ".";
      sim::SplitterMetrics sm;
      sm.sent = &reg.counter(prefix + "splitter.sent");
      sm.blocks = &reg.counter(prefix + "splitter.blocks");
      sm.block_ns = &reg.histogram(prefix + "splitter.block_ns");
      sm.failovers = &reg.counter(prefix + "splitter.failovers");
      sm.rerouted = &reg.counter(prefix + "splitter.rerouted");
      sm.shed = &reg.counter(prefix + "splitter.shed");
      stage.splitter->set_metrics(sm);
      sim::MergerMetrics mm;
      mm.emitted = &reg.counter(prefix + "merger.emitted");
      mm.gaps = &reg.counter(prefix + "merger.gaps");
      mm.reorder_depth = &reg.histogram(prefix + "merger.reorder_depth");
      mm.gap_wait_ns = &reg.histogram(prefix + "merger.gap_wait_ns");
      stage.merger->set_metrics(mm);
      for (std::size_t j = 0; j < stage.workers.size(); ++j) {
        stage.workers[j]->set_service_histogram(&reg.histogram(
            prefix + "worker." + std::to_string(j) + ".service_ns"));
      }
      stage.policy->attach_metrics(reg, prefix + "policy.");
      stage.loop->attach_metrics(reg, prefix);
    }
  }

  // The source is a 1-connection splitter writing into stage 0's input.
  pipeline->source_policy_ = std::make_unique<RoundRobinPolicy>(1);
  pipeline->source_ = std::make_unique<sim::Splitter>(
      sim, pipeline->source_policy_.get(), config_.source_overhead,
      config_.source_interval);
  pipeline->source_->wire({pipeline->stages_.front()->input.get()},
                          &pipeline->source_counters_);
  if (config_.metrics) {
    obs::MetricsRegistry& reg = pipeline->metrics_;
    sim::SplitterMetrics sm;
    sm.sent = &reg.counter("source.sent");
    sm.blocks = &reg.counter("source.blocks");
    sm.block_ns = &reg.histogram("source.block_ns");
    sm.shed = &reg.counter("source.shed");
    pipeline->source_->set_metrics(sm);
    pipeline->throttle_gauge_ = &reg.gauge("source.throttle_m");
    pipeline->throttle_gauge_->set(1000);
  }
  if (prot.shed_high_watermark > 0) {
    // Shedding needs no gap accounting here: every stage splitter
    // restamps forwarded tuples with its own dense sequence stream, so a
    // source-side shed is invisible to downstream ordering.
    pipeline->source_->set_shed_watermarks(prot.shed_high_watermark,
                                           prot.shed_low_watermark);
    pipeline->applied_shed_high_ = prot.shed_high_watermark;
    pipeline->applied_shed_low_ = prot.shed_low_watermark;
  }
  return pipeline;
}

void Pipeline::ensure_started() {
  if (started_) return;
  started_ = true;
  source_->start();
  for (auto& stage : stages_) {
    if (stage->parallel) stage->splitter->start();
  }
  sim_.schedule_after(config_.sample_period, [this] { sample_tick(); });
}

void Pipeline::sample_tick() {
  // Run every parallel stage's decision pipeline, then aggregate the
  // resulting actions onto the single shared source: the throttle is the
  // min over stage factors (equivalently 1 - max capacity deficit,
  // floored at min_throttle, since clamp is monotone), and the shed
  // watermarks are the tightest any stage's watchdog demands.
  double factor = 1.0;
  bool throttled = false;
  std::uint64_t shed_high = prot_.shed_high_watermark;
  std::uint64_t shed_low = prot_.shed_low_watermark;
  for (auto& stage : stages_) {
    if (!stage->parallel) continue;
    const control::ControlActions& acts =
        stage->loop->tick(sim_.now(), config_.sample_period);
    if (acts.throttle_set) {
      throttled = true;
      factor = std::min(factor, acts.throttle);
    }
    if (prot_.shed_high_watermark > 0 && acts.shed_high < shed_high) {
      shed_high = acts.shed_high;
      shed_low = acts.shed_low;
    }
  }
  if (throttled) {
    source_throttle_ = factor;
    source_->set_throttle(factor);
    if (throttle_gauge_ != nullptr) {
      throttle_gauge_->set(static_cast<std::int64_t>(factor * 1000.0));
    }
  }
  if (prot_.shed_high_watermark > 0 &&
      (shed_high != applied_shed_high_ || shed_low != applied_shed_low_)) {
    applied_shed_high_ = shed_high;
    applied_shed_low_ = shed_low;
    source_->set_shed_watermarks(shed_high, shed_low);
  }
  sim_.schedule_after(config_.sample_period, [this] { sample_tick(); });
}

void Pipeline::run_for(DurationNs duration) {
  ensure_started();
  sim_.run_until(sim_.now() + duration);
}

std::uint64_t Pipeline::stage_processed(int s) const {
  const Stage& stage = *stages_[static_cast<std::size_t>(s)];
  return stage.parallel ? stage.merger->emitted()
                        : stage.worker->processed();
}

SplitPolicy& Pipeline::stage_policy(int s) {
  Stage& stage = *stages_[static_cast<std::size_t>(s)];
  assert(stage.parallel);
  return *stage.policy;
}

BlockingCounterSet& Pipeline::stage_counters(int s) {
  Stage& stage = *stages_[static_cast<std::size_t>(s)];
  assert(stage.parallel);
  return *stage.counters;
}

control::RegionControlLoop& Pipeline::stage_control(int s) {
  Stage& stage = *stages_[static_cast<std::size_t>(s)];
  assert(stage.parallel);
  return *stage.loop;
}

std::uint64_t Pipeline::shed_tuples() const { return source_->shed(); }

int Pipeline::StagePort::channels() const {
  return static_cast<int>(stage->workers.size());
}

std::vector<DurationNs> Pipeline::StagePort::sample_blocked() {
  return stage->counters->sample();
}

std::vector<std::uint64_t> Pipeline::StagePort::sample_delivered() {
  std::vector<std::uint64_t> delivered;
  delivered.reserve(stage->workers.size());
  for (std::size_t j = 0; j < stage->workers.size(); ++j) {
    delivered.push_back(stage->merger->emitted_from(static_cast<int>(j)));
  }
  return delivered;
}

}  // namespace slb::flow
