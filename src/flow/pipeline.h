// A small dataflow layer over the simulator: linear pipelines of
// operators with embedded data-parallel regions — the shape of the
// paper's Figure 1 application (Src -> ... -> splitter -> F_1..F_N ->
// merger -> ... -> Sink), minus task-parallel side branches.
//
// Every hop is a bounded TCP-like channel, so back pressure propagates
// end to end: a slow stage eventually stalls the source, and a parallel
// region's splitter measures per-connection blocking exactly as in a
// standalone region. Each parallel stage runs its own routing policy
// (LB-adaptive and friends) fed by its own counters.
//
//   flow::PipelineBuilder b;
//   b.op("parse", micros(2))
//    .parallel("score", 4, micros(20),
//              std::make_unique<LoadBalancingPolicy>(4, ControllerConfig{}))
//    .op("sink-prep", micros(1));
//   auto p = b.build();
//   p->run_for(seconds(1));
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/protection.h"
#include "control/region_control.h"
#include "control/region_port.h"
#include "core/blocking_counter.h"
#include "core/policies.h"
#include "obs/metrics.h"
#include "sim/channel.h"
#include "sim/event.h"
#include "sim/load_profile.h"
#include "sim/merger.h"
#include "sim/sink.h"
#include "sim/splitter.h"
#include "sim/worker.h"
#include "util/stats.h"
#include "util/time.h"

namespace slb::flow {

struct PipelineConfig {
  /// Source pacing: 0 = closed loop (a tuple is always available).
  DurationNs source_interval = 0;
  /// Source per-tuple cost (bounds the maximum input rate).
  DurationNs source_overhead = 100;
  /// Channel buffer depth (send and receive sides) for every hop.
  std::size_t channel_buffer = 32;
  DurationNs link_latency = micros(2);
  /// Sampling / policy-update period for parallel stages.
  DurationNs sample_period = millis(10);

  /// Protection knobs (DESIGN.md §7, §9), enforced per parallel stage by
  /// the shared control::RegionControlLoop and aggregated onto the
  /// pipeline's single source: admission throttle = min over stage
  /// factors (equivalently 1 - max capacity deficit, floored at
  /// min_throttle), shed watermarks = the tightest across stages, and the
  /// full watchdog ladder (forced throttle → tightened shedding →
  /// safe-mode WRR) per stage.
  control::ProtectionConfig protection;

  /// Deprecated aliases of `protection.admission_control` /
  /// `protection.min_throttle` (pre-control-plane layout). A field set
  /// away from its default overrides the embedded struct; new code
  /// should write `protection.*`.
  bool admission_control = false;
  double min_throttle = 0.25;

  /// Legacy aliases resolved against the embedded struct.
  control::ProtectionConfig resolved_protection() const {
    return control::merged_protection(protection, admission_control,
                                      min_throttle, 0, 0, false, 0.9, 8);
  }
  /// Observability (DESIGN.md §8): populate the pipeline's registry with
  /// "source.*" and per-parallel-stage "stage.<name>.*" metrics.
  bool metrics = true;
};

class Pipeline;

class PipelineBuilder {
 public:
  explicit PipelineBuilder(PipelineConfig config = {});

  /// Appends a single-PE operator with the given per-tuple cost.
  /// `load` (optional, 1 worker) imposes time-varying external load.
  PipelineBuilder& op(std::string name, DurationNs cost,
                      sim::LoadProfile load = {});

  /// Appends a data-parallel region: splitter + `width` replicas +
  /// in-order merger (or parallel sinks when `ordered` is false),
  /// balanced by `policy`. `load` (optional, `width` workers) imposes
  /// per-replica external load.
  PipelineBuilder& parallel(std::string name, int width, DurationNs cost,
                            std::unique_ptr<SplitPolicy> policy,
                            bool ordered = true,
                            sim::LoadProfile load = {});

  /// Assembles the pipeline. The builder is consumed.
  std::unique_ptr<Pipeline> build();

 private:
  friend class Pipeline;

  struct StageSpec {
    std::string name;
    bool parallel = false;
    int width = 1;
    DurationNs cost = 0;
    std::unique_ptr<SplitPolicy> policy;
    bool ordered = true;
    sim::LoadProfile load;
  };

  PipelineConfig config_;
  std::vector<StageSpec> specs_;
  bool consumed_ = false;
};

/// An assembled, runnable pipeline.
class Pipeline {
 public:
  /// Runs for `duration` virtual time (the source starts on first use).
  void run_for(DurationNs duration);

  /// Tuples that reached the terminal sink.
  std::uint64_t delivered() const { return sink_.count(); }

  /// True while every delivered tuple has arrived in sequence order.
  bool order_ok() const { return order_ok_; }

  int stages() const { return static_cast<int>(stages_.size()); }
  const std::string& stage_name(int s) const {
    return stages_[static_cast<std::size_t>(s)]->name;
  }
  bool stage_is_parallel(int s) const {
    return stages_[static_cast<std::size_t>(s)]->parallel;
  }
  /// Tuples the stage has fully processed (for parallel stages: released
  /// by its merger).
  std::uint64_t stage_processed(int s) const;

  /// The routing policy of a parallel stage (asserts on op stages).
  SplitPolicy& stage_policy(int s);
  /// The blocking counters of a parallel stage (asserts on op stages).
  BlockingCounterSet& stage_counters(int s);
  /// The control loop of a parallel stage (asserts on op stages): the
  /// shared per-period decision pipeline of DESIGN.md §9.
  control::RegionControlLoop& stage_control(int s);
  /// Watchdog escalation stage of a parallel stage (0 = normal).
  int stage_watchdog_stage(int s) {
    return stage_control(s).watchdog_stage();
  }

  sim::Simulator& simulator() { return sim_; }
  TimeNs now() const { return sim_.now(); }

  /// Cumulative time the *source* spent blocked: end-to-end back
  /// pressure reaching the front of the pipeline.
  DurationNs source_blocked() const {
    return source_counters_.at(0).cumulative();
  }

  /// End-to-end tuple latency (source release -> terminal sink), over
  /// every delivered tuple.
  const RunningStats& latency() const { return latency_; }

  /// Current admission-control factor on the source (1.0 = unthrottled).
  double source_throttle() const { return source_throttle_; }

  /// Tuples shed at the source so far. Each consumed a source sequence
  /// number, but stage splitters restamp forwarded tuples with their own
  /// dense streams, so sheds are invisible to downstream ordering.
  std::uint64_t shed_tuples() const;

  /// The pipeline's metrics registry (DESIGN.md §8): "source.*" for the
  /// source splitter plus "stage.<name>.*" for every parallel stage
  /// (splitter/merger/worker metrics and the stage policy's own, e.g.
  /// "stage.score.policy.updates"). Empty when config.metrics is off.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  friend class PipelineBuilder;

  struct Stage;

  /// The control loop's view of one parallel stage. Actuation (throttle,
  /// shed watermarks) happens at the pipeline's single shared source, so
  /// the per-stage port only samples; sample_tick aggregates each loop's
  /// ControlActions into the source settings.
  struct StagePort final : control::RegionPort {
    explicit StagePort(Stage* s) : stage(s) {}
    Stage* stage;
    int channels() const override;
    std::vector<DurationNs> sample_blocked() override;
    std::vector<std::uint64_t> sample_delivered() override;
    void apply_throttle(double /*factor*/) override {}
    void apply_shed_watermarks(std::uint64_t /*high*/,
                               std::uint64_t /*low*/) override {}
  };

  struct Stage {
    std::string name;
    bool parallel = false;
    std::unique_ptr<sim::Channel> input;  // upstream writes, stage reads
    std::unique_ptr<sim::TupleSink> out;  // adapter into the next input
    std::unique_ptr<sim::LoadProfile> load;

    // Op stages:
    std::unique_ptr<sim::Worker> worker;

    // Parallel stages:
    std::unique_ptr<SplitPolicy> policy;
    std::unique_ptr<BlockingCounterSet> counters;
    std::unique_ptr<sim::Splitter> splitter;
    std::vector<std::unique_ptr<sim::Channel>> channels;
    std::vector<std::unique_ptr<sim::Worker>> workers;
    std::unique_ptr<sim::Merger> merger;
    std::unique_ptr<StagePort> port;
    std::unique_ptr<control::RegionControlLoop> loop;
  };

  explicit Pipeline(PipelineConfig config) : config_(config) {}

  void ensure_started();
  void sample_tick();

  PipelineConfig config_;
  /// config_'s protection knobs with legacy aliases resolved (fixed at
  /// build time; shared by every stage loop and the source aggregation).
  control::ProtectionConfig prot_;
  /// Declared before the stages that hold handles into it.
  obs::MetricsRegistry metrics_;
  obs::Gauge* throttle_gauge_ = nullptr;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<Stage>> stages_;

  std::unique_ptr<RoundRobinPolicy> source_policy_;
  BlockingCounterSet source_counters_{1};
  std::unique_ptr<sim::Splitter> source_;

  sim::CountingSink sink_;
  RunningStats latency_;
  std::uint64_t last_seq_ = 0;
  bool seen_any_ = false;
  bool order_ok_ = true;
  bool started_ = false;
  double source_throttle_ = 1.0;
  /// Shed watermarks currently applied to the source (0 when shedding is
  /// off); re-applied only when the per-stage aggregate changes.
  std::uint64_t applied_shed_high_ = 0;
  std::uint64_t applied_shed_low_ = 0;
};

}  // namespace slb::flow
