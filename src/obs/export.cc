#include "obs/export.h"

#include "obs/journal.h"

namespace slb::obs {

std::string to_json_line(const MetricsSnapshot& snap, std::int64_t t,
                         std::string_view kind) {
  std::string out = "{\"t\":";
  out += std::to_string(t);
  out += ",\"kind\":\"";
  out += kind;
  out += "\",\"metrics\":{";
  bool first = true;
  for (const auto& [name, v] : snap.entries) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    switch (v.kind) {
      case MetricKind::kCounter:
        out += std::to_string(v.count);
        break;
      case MetricKind::kGauge:
        out += std::to_string(v.gauge);
        break;
      case MetricKind::kHistogram: {
        out += "{\"count\":";
        out += std::to_string(v.count);
        out += ",\"sum\":";
        out += std::to_string(v.sum);
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (std::size_t k = 0; k < v.buckets.size(); ++k) {
          if (v.buckets[k] == 0) continue;
          if (!first_bucket) out += ',';
          first_bucket = false;
          out += '[';
          out += std::to_string(k);
          out += ',';
          out += std::to_string(v.buckets[k]);
          out += ']';
        }
        out += "]}";
        break;
      }
    }
  }
  out += "}}";
  return out;
}

JsonlExporter::JsonlExporter(const MetricsRegistry* registry,
                             const std::string& path, bool append)
    : registry_(registry),
      out_(path, append ? std::ios::app : std::ios::trunc) {}

bool JsonlExporter::tick(std::int64_t t) {
  if (!out_) return false;
  const MetricsSnapshot cur = registry_->snapshot();
  out_ << to_json_line(delta(last_, cur), t, "delta") << '\n';
  last_ = cur;
  return static_cast<bool>(out_);
}

bool JsonlExporter::dump(std::int64_t t) {
  if (!out_) return false;
  out_ << to_json_line(registry_->snapshot(), t, "snapshot") << '\n';
  out_.flush();
  return static_cast<bool>(out_);
}

}  // namespace slb::obs
