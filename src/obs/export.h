// JSON-lines export of registry snapshots (DESIGN.md §8).
//
// One line per capture: {"t":<ns>,"kind":"delta"|"snapshot","metrics":{...}}
// with counters/gauges as integers and histograms as
// {"count":N,"sum":S,"buckets":[[k,c],...]} (sparse bucket pairs). A
// JsonlExporter owns the file sink: tick(now) appends the delta since the
// previous tick (the periodic sink); dump(now) appends a full cumulative
// snapshot (the end-of-run record). tools/chaos_soak and the bench/ext_*
// binaries consume this format.
#pragma once

#include <fstream>
#include <string>

#include "obs/metrics.h"

namespace slb::obs {

/// Serializes one snapshot to a single JSON object line (no newline).
/// `t` is the capture's timestamp in ns (virtual or wall — caller's
/// clock); `kind` names the semantics ("delta" or "snapshot").
std::string to_json_line(const MetricsSnapshot& snap, std::int64_t t,
                         std::string_view kind);

class JsonlExporter {
 public:
  /// Opens `path` for writing (truncates unless `append`). ok() reports
  /// whether the sink is usable; ticks on a dead sink are no-ops.
  JsonlExporter(const MetricsRegistry* registry, const std::string& path,
                bool append = false);

  bool ok() const { return static_cast<bool>(out_); }

  /// Periodic sink: appends the delta since the previous tick (the first
  /// tick is a delta against zero, i.e. the cumulative totals so far).
  bool tick(std::int64_t t);

  /// End-of-run dump: appends a full cumulative snapshot.
  bool dump(std::int64_t t);

 private:
  const MetricsRegistry* registry_;
  std::ofstream out_;
  MetricsSnapshot last_;
};

}  // namespace slb::obs
