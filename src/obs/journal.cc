#include "obs/journal.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace slb::obs {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

void JsonLine::key(std::string_view k) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += k;  // keys are code constants: no escaping needed
  out_ += "\":";
}

JsonLine& JsonLine::str(std::string_view k, std::string_view value) {
  key(k);
  out_ += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += '"';
  return *this;
}

JsonLine& JsonLine::num(std::string_view k, std::int64_t value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}

JsonLine& JsonLine::num(std::string_view k, std::uint64_t value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}

JsonLine& JsonLine::real(std::string_view k, double value) {
  key(k);
  out_ += format_double(value);
  return *this;
}

JsonLine& JsonLine::boolean(std::string_view k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}

JsonLine& JsonLine::ints(std::string_view k, std::span<const int> values) {
  key(k);
  out_ += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ += ',';
    out_ += std::to_string(values[i]);
  }
  out_ += ']';
  return *this;
}

JsonLine& JsonLine::reals(std::string_view k, std::span<const double> values) {
  key(k);
  out_ += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ += ',';
    out_ += format_double(values[i]);
  }
  out_ += ']';
  return *this;
}

JsonLine& JsonLine::int_lists(std::string_view k,
                              std::span<const std::vector<int>> values) {
  key(k);
  out_ += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ += ',';
    out_ += '[';
    for (std::size_t j = 0; j < values[i].size(); ++j) {
      if (j != 0) out_ += ',';
      out_ += std::to_string(values[i][j]);
    }
    out_ += ']';
  }
  out_ += ']';
  return *this;
}

std::string JsonLine::finish() {
  out_ += '}';
  return std::move(out_);
}

void DecisionJournal::append(std::string line) {
  for (unsigned char c : line) {
    digest_ = (digest_ ^ c) * kFnvPrime;
  }
  digest_ = (digest_ ^ static_cast<unsigned char>('\n')) * kFnvPrime;
  lines_.push_back(std::move(line));
}

std::string DecisionJournal::digest_hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest_));
  return std::string(buf);
}

bool DecisionJournal::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const std::string& line : lines_) out << line << '\n';
  out.flush();
  return static_cast<bool>(out);
}

void DecisionJournal::clear() {
  lines_.clear();
  digest_ = kFnvOffset;
}

}  // namespace slb::obs
