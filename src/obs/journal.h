// Controller decision journal (DESIGN.md §8).
//
// Every adaptation decision — observe, decay, cluster, solve, overload
// transition, mark_down/mark_up — is recorded as one flat JSON object
// with the inputs the controller saw (blocking rates, the weights that
// produced them, the capacity deficit) and the outputs it chose (weight
// vector, objective, mode). Lines are appended in decision order, so a
// fixed-seed run serializes to a byte-stable JSON-lines document; the
// journal maintains an FNV-1a digest incrementally, making two runs
// comparable with a single integer and regressions pinpointable at the
// first divergent line (tests/test_golden_trace.cc).
//
// Serialization is deterministic by construction: keys are emitted in
// call order, integers exactly, and doubles with shortest-round-trip
// std::to_chars (non-finite values degrade to JSON null).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace slb::obs {

/// Shortest round-trip decimal form of `v` (std::to_chars); "null" for
/// non-finite values so journal lines stay valid JSON.
std::string format_double(double v);

/// Builder for one flat JSON object. Keys are written in call order; the
/// caller guarantees uniqueness. finish() seals and returns the line.
class JsonLine {
 public:
  JsonLine& str(std::string_view key, std::string_view value);
  JsonLine& num(std::string_view key, std::int64_t value);
  JsonLine& num(std::string_view key, std::uint64_t value);
  JsonLine& real(std::string_view key, double value);
  JsonLine& boolean(std::string_view key, bool value);
  JsonLine& ints(std::string_view key, std::span<const int> values);
  JsonLine& reals(std::string_view key, std::span<const double> values);
  /// Array of arrays of ints (cluster membership lists).
  JsonLine& int_lists(std::string_view key,
                      std::span<const std::vector<int>> values);
  std::string finish();

 private:
  void key(std::string_view k);
  std::string out_ = "{";
  bool first_ = true;
};

/// Append-only record of journal lines with an incrementally-maintained
/// 64-bit FNV-1a digest over `line + '\n'` for every line.
class DecisionJournal {
 public:
  static constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

  /// Appends one serialized JSON object (no trailing newline).
  void append(std::string line);

  const std::vector<std::string>& lines() const { return lines_; }
  std::size_t entries() const { return lines_.size(); }

  /// Digest over everything appended so far; two byte-identical journals
  /// have equal digests.
  std::uint64_t digest() const { return digest_; }
  std::string digest_hex() const;

  /// Writes the journal as JSON-lines. Returns false on I/O failure.
  bool write_jsonl(const std::string& path) const;

  void clear();

 private:
  std::vector<std::string> lines_;
  std::uint64_t digest_ = kFnvOffset;
};

}  // namespace slb::obs
