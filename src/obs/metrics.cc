#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace slb::obs {

double Histogram::quantile(double q) const {
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  // Capture a consistent-enough view: read the buckets once and size the
  // rank against their own total.
  std::array<std::uint64_t, kBuckets> b;
  std::uint64_t n = 0;
  for (int k = 0; k < kBuckets; ++k) {
    b[static_cast<std::size_t>(k)] = bucket_count(k);
    n += b[static_cast<std::size_t>(k)];
  }
  if (n == 0) return 0.0;
  // 0-based rank of the requested order statistic.
  const double target = q * static_cast<double>(n - 1);
  std::uint64_t before = 0;
  for (int k = 0; k < kBuckets; ++k) {
    const std::uint64_t c = b[static_cast<std::size_t>(k)];
    if (c == 0) continue;
    if (static_cast<double>(before + c) > target) {
      // Rank lands in this bucket: interpolate at the midpoint of the
      // rank's share of the bucket range (exact for bucket 0, whose only
      // admissible value is 0).
      const double lo = static_cast<double>(bucket_floor(k));
      const double hi = static_cast<double>(bucket_ceil(k));
      const double within =
          (target - static_cast<double>(before) + 0.5) / static_cast<double>(c);
      return lo + (hi - lo) * std::min(1.0, within);
    }
    before += c;
  }
  return static_cast<double>(bucket_ceil(kBuckets - 1));
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& [n, v] : entries) {
    if (n == name) return &v;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const MetricValue* v = find(name);
  return v == nullptr ? 0 : v->count;
}

MetricsSnapshot delta(const MetricsSnapshot& prev,
                      const MetricsSnapshot& cur) {
  MetricsSnapshot out;
  out.entries.reserve(cur.entries.size());
  for (const auto& [name, v] : cur.entries) {
    MetricValue d = v;
    const MetricValue* p = prev.find(name);
    if (p != nullptr && p->kind == v.kind && v.kind != MetricKind::kGauge) {
      d.count = v.count >= p->count ? v.count - p->count : 0;
      d.sum = v.sum >= p->sum ? v.sum - p->sum : 0;
      for (std::size_t k = 0; k < d.buckets.size() && k < p->buckets.size();
           ++k) {
        d.buckets[k] =
            d.buckets[k] >= p->buckets[k] ? d.buckets[k] - p->buckets[k] : 0;
      }
    }
    out.entries.emplace_back(name, std::move(d));
  }
  return out;
}

MetricsRegistry::Node& MetricsRegistry::node(std::string_view name,
                                             MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    assert(it->second->kind == kind);
    return *it->second;
  }
  Node& n = nodes_.emplace_back();  // Node holds atomics: construct in place
  n.name = std::string(name);
  n.kind = kind;
  index_.emplace(n.name, &n);
  return n;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return node(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return node(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return node(name, MetricKind::kHistogram).histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.entries.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    MetricValue v;
    v.kind = n.kind;
    switch (n.kind) {
      case MetricKind::kCounter:
        v.count = n.counter.value();
        break;
      case MetricKind::kGauge:
        v.gauge = n.gauge.value();
        break;
      case MetricKind::kHistogram: {
        v.sum = n.histogram.sum();
        // One pass over the buckets: the captured values also supply the
        // sample count, so count and buckets are mutually consistent.
        int last = -1;
        std::array<std::uint64_t, Histogram::kBuckets> b;
        for (int k = 0; k < Histogram::kBuckets; ++k) {
          b[static_cast<std::size_t>(k)] = n.histogram.bucket_count(k);
          v.count += b[static_cast<std::size_t>(k)];
          if (b[static_cast<std::size_t>(k)] != 0) last = k;
        }
        v.buckets.assign(b.begin(), b.begin() + (last + 1));
        break;
      }
    }
    snap.entries.emplace_back(n.name, std::move(v));
  }
  return snap;
}

}  // namespace slb::obs
