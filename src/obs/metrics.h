// Low-overhead metrics substrate shared by every layer (DESIGN.md §8).
//
// A MetricsRegistry hands out stable handles — Counter, Gauge, Histogram —
// that hot paths update with single relaxed atomic operations (no locks,
// no allocation, no branches beyond a null check when instrumentation is
// optional). Registration is the only synchronized operation and happens
// at wiring time, never per tuple.
//
// Histograms use power-of-2 log buckets: bucket 0 holds the value 0 and
// bucket k >= 1 holds [2^(k-1), 2^k). 64 buckets cover the full uint64
// range, so a nanosecond-valued histogram spans sub-ns to ~585 years with
// a fixed 2x resolution — the right trade for service times and blocking
// waits, where order of magnitude is the signal.
//
// Snapshot/delta semantics: snapshot() captures every metric in
// registration order; delta(prev, cur) subtracts counters and histogram
// buckets (gauges keep their current value), giving per-period views
// without resetting the live handles (readers never race writers).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slb::obs {

/// Monotone event count.
///
/// Single-writer contract (all hot-path metrics here): every Counter,
/// Gauge, and Histogram is updated by exactly one thread — the component
/// that owns it (the splitter loop, one worker PE, the merger sync).
/// Updates are therefore plain load+store on a relaxed atomic: readers on
/// other threads (exporters, tests) always see a torn-free, monotone
/// value, and the writer pays no locked RMW on the per-tuple path.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (throttle factor x1000, watchdog
/// stage, queue depth...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) {
    v_.store(v_.load(std::memory_order_relaxed) + d,
             std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed (power-of-2) histogram of non-negative integer samples.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket 0 <- value 0; bucket k >= 1 <- [2^(k-1), 2^k).
  static int bucket_index(std::uint64_t v) {
    if (v == 0) return 0;
    const int k = 64 - std::countl_zero(v);
    return k < kBuckets ? k : kBuckets - 1;
  }
  /// Smallest value the bucket admits.
  static std::uint64_t bucket_floor(int k) {
    return k == 0 ? 0 : std::uint64_t{1} << (k - 1);
  }
  /// Largest value the bucket admits.
  static std::uint64_t bucket_ceil(int k) {
    if (k == 0) return 0;
    if (k >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << k) - 1;
  }

  /// Two single-writer load+store pairs on the hot path (see Counter for
  /// the contract); the sample count is derived from the buckets at read
  /// time instead of being a third atomic.
  void record(std::uint64_t v) {
    auto& b = buckets_[static_cast<std::size_t>(bucket_index(v))];
    b.store(b.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  std::uint64_t bucket_count(int k) const {
    return buckets_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }

  /// Log-bucket quantile estimate (within-bucket linear interpolation).
  /// q outside [0, 1] (including NaN) is clamped; 0 samples -> 0. With a
  /// single sample — or every sample in one bucket — this degrades to a
  /// point inside that bucket, never a division by zero.
  double quantile(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's captured value.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  // counter value, or histogram sample count
  std::uint64_t sum = 0;    // histogram sum
  std::int64_t gauge = 0;   // gauge value
  std::vector<std::uint64_t> buckets;  // histogram only; trailing zeros cut
};

/// A consistent-enough capture of the whole registry (each metric is read
/// atomically; cross-metric skew is bounded by the capture loop).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, MetricValue>> entries;

  const MetricValue* find(std::string_view name) const;
  /// Counter/histogram value by name; 0 when absent (tests, exporters).
  std::uint64_t counter(std::string_view name) const;
};

/// cur - prev for counters and histograms; gauges keep cur. Metrics absent
/// from prev pass through unchanged.
MetricsSnapshot delta(const MetricsSnapshot& prev, const MetricsSnapshot& cur);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration: returns a handle stable for the registry's lifetime.
  /// Re-registering a name returns the existing handle (same kind
  /// required). Synchronized — call at wiring time, not per event.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::size_t size() const;
  MetricsSnapshot snapshot() const;

 private:
  struct Node {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  Node& node(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::deque<Node> nodes_;  // deque: stable addresses for handles
  std::map<std::string, Node*, std::less<>> index_;
};

}  // namespace slb::obs
