#include "runtime/local_region.h"

#include <sys/socket.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "transport/framing.h"

namespace slb::rt {

LocalRegion::LocalRegion(LocalRegionConfig config,
                         std::unique_ptr<SplitPolicy> policy)
    : config_(config),
      policy_(std::move(policy)),
      prot_(config.resolved_protection()),
      counters_(static_cast<std::size_t>(config.workers)) {
  assert(config_.workers > 0);
  assert(policy_ != nullptr);
  net::ignore_sigpipe();  // dead peers must surface as EPIPE, not SIGPIPE

  service_hists_.assign(static_cast<std::size_t>(config_.workers), nullptr);
  if (config_.metrics) {
    mc_.sent = &metrics_.counter("splitter.sent");
    mc_.shed = &metrics_.counter("splitter.shed");
    mc_.rerouted = &metrics_.counter("splitter.rerouted");
    mc_.failovers = &metrics_.counter("splitter.failovers");
    mc_.channel_failures = &metrics_.counter("splitter.channel_failures");
    mc_.reconnects = &metrics_.counter("splitter.reconnects");
    mc_.retransmits = &metrics_.counter("splitter.retransmits");
    replay_bytes_g_ = &metrics_.gauge("splitter.replay_buffer_bytes");
    ack_lag_g_ = &metrics_.gauge("splitter.ack_lag");
    merger_emitted_c_ = &metrics_.counter("merger.emitted");
    merger_gaps_c_ = &metrics_.counter("merger.gaps");
    merger_reconnects_c_ = &metrics_.counter("merger.reconnects");
    merger_dups_c_ = &metrics_.counter("merger.dup_discards");
    merger_lates_c_ = &metrics_.counter("merger.late_discards");
    merger_depth_g_ = &metrics_.gauge("merger.max_depth");
    for (int j = 0; j < config_.workers; ++j) {
      service_hists_[static_cast<std::size_t>(j)] = &metrics_.histogram(
          "worker." + std::to_string(j) + ".service_ns");
    }
    policy_->attach_metrics(metrics_, "policy.");
  }

  // Topology bring-up: a listener per worker for the splitter connection,
  // one listener at the merger side for the worker->merger connections.
  net::Listener merger_listener;
  std::vector<net::Fd> worker_to_merger;
  std::vector<net::Fd> merger_from_worker;
  for (int j = 0; j < config_.workers; ++j) {
    worker_to_merger.push_back(
        net::connect_loopback(merger_listener.port()));
    merger_from_worker.push_back(merger_listener.accept_one());
  }

  for (int j = 0; j < config_.workers; ++j) {
    net::Listener worker_listener;
    net::Fd splitter_side = net::connect_loopback(worker_listener.port());
    net::Fd worker_side = worker_listener.accept_one();

    net::set_nodelay(splitter_side.get());
    net::set_send_buffer(splitter_side.get(), config_.socket_buffer_bytes);
    net::set_recv_buffer(worker_side.get(), config_.socket_buffer_bytes);
    net::set_nodelay(worker_to_merger[static_cast<std::size_t>(j)].get());

    senders_.push_back(std::make_unique<net::InstrumentedSender>(
        splitter_side.get(), &counters_.at(static_cast<std::size_t>(j))));
    to_workers_.push_back(std::move(splitter_side));
    workers_.push_back(std::make_unique<WorkerPe>(
        j, std::move(worker_side),
        std::move(worker_to_merger[static_cast<std::size_t>(j)]),
        config_.multiplies, config_.work_mode,
        service_hists_[static_cast<std::size_t>(j)]));
  }
  // At-least-once bring-up: the merger->splitter ack connection (the
  // reverse hop cumulative acks ride on) and one replay buffer per
  // connection. The splitter reads its end non-blocking between sends.
  net::Fd merger_ack_out;
  if (alo()) {
    net::Listener ack_listener;
    ack_in_ = net::connect_loopback(ack_listener.port());
    merger_ack_out = ack_listener.accept_one();
    net::set_nodelay(merger_ack_out.get());
    replay_.assign(static_cast<std::size_t>(config_.workers),
                   WireReplayBuffer(config_.delivery.replay_buffer_bytes));
  }

  MergerFaultConfig fault;
  fault.enabled = !config_.failure_events.empty();
  fault.gap_timeout = config_.merger_gap_timeout;
  MergerDeliveryConfig merger_delivery;
  merger_delivery.mode = config_.delivery.mode;
  merger_delivery.ack_every = config_.delivery.ack_every;
  merger_ = std::make_unique<MergerPe>(std::move(merger_from_worker), fault,
                                       merger_delivery,
                                       std::move(merger_ack_out));
  pending_.resize(static_cast<std::size_t>(config_.workers));

  const auto n = static_cast<std::size_t>(config_.workers);
  chan_down_.assign(n, 0);
  worker_up_.assign(n, 1);
  next_reconnect_.assign(n, 0);
  backoff_.assign(n, 0);
  load_mult_.assign(n, 1.0);

  shed_high_ = prot_.shed_high_watermark;
  shed_low_ = prot_.shed_low_watermark;
  control::ControlLoopConfig loop_cfg;
  loop_cfg.protection = prot_;
  loop_cfg.closed_loop_source = config_.source_interval == 0;
  if (alo()) loop_cfg.ack_stall_periods = config_.delivery.ack_stall_periods;
  loop_ = std::make_unique<control::RegionControlLoop>(
      static_cast<control::RegionPort*>(this), policy_.get(), loop_cfg);
  if (config_.metrics) loop_->attach_metrics(metrics_, "region.");
}

void LocalRegion::flush_pending(int k, bool blocking) {
  auto& buf = pending_[static_cast<std::size_t>(k)];
  if (buf.empty()) return;
  auto& sender = *senders_[static_cast<std::size_t>(k)];
  if (blocking) {
    if (sender.send_all(buf.data(), buf.size())) buf.clear();
    return;
  }
  const std::size_t accepted = sender.try_send(buf.data(), buf.size());
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(accepted));
}

LocalRegion::~LocalRegion() {
  // Tear down in dependency order so a constructed-but-never-run region
  // (e.g. a parity test driving the control loop externally) still
  // unwinds: close the splitter sockets so workers reading them see EOF,
  // join the worker threads, then destroy them — which closes their
  // worker->merger sockets, the EOFs the merger needs to finish. A
  // fault-mode merger additionally waits for reconnects that will never
  // come unless told the region is closing.
  to_workers_.clear();
  for (auto& w : workers_) w->join();
  workers_.clear();
  merger_->begin_shutdown();
}

DurationNs LocalRegion::jitter(DurationNs limit) {
  // xorshift64*: plenty for de-synchronizing retry storms, and seeded
  // deterministically so runs stay reproducible.
  jitter_state_ ^= jitter_state_ >> 12;
  jitter_state_ ^= jitter_state_ << 25;
  jitter_state_ ^= jitter_state_ >> 27;
  if (limit <= 0) return 0;
  return static_cast<DurationNs>(
      (jitter_state_ * 0x2545F4914F6CDD1Dull >> 33) %
      static_cast<std::uint64_t>(limit));
}

void LocalRegion::quarantine(int j, TimeNs now, LocalRunStats& stats) {
  const auto ju = static_cast<std::size_t>(j);
  if (chan_down_[ju]) return;
  chan_down_[ju] = 1;
  // A half-written frame died with the worker. GapSkip: its sequence
  // becomes a merger gap, so the remainder must not be re-sent anywhere.
  // At-least-once: the complete frame sits in the replay buffer and will
  // be re-sent whole onto a survivor below.
  pending_[ju].clear();
  ++stats.channel_failures;
  if (mc_.channel_failures != nullptr) mc_.channel_failures->inc();
  if (alo()) {
    // Queue the channel's unacked suffix for retransmission through the
    // normal routing path (WRR over the survivors, replay-buffer back
    // pressure included). Entries already covered by an ack raced the
    // trim and are dropped here.
    std::uint64_t tuples = 0;
    std::uint64_t bytes = 0;
    for (auto& e : replay_[ju].take_all()) {
      if (e.seq < acked_) continue;
      ++tuples;
      bytes += e.bytes;
      replay_pending_.push_back(std::move(e));
    }
    std::sort(replay_pending_.begin(), replay_pending_.end(),
              [](const WireReplayBuffer::Entry& a,
                 const WireReplayBuffer::Entry& b) { return a.seq < b.seq; });
    loop_->note_replay(now - run_start_, j, tuples, bytes);
  }
  backoff_[ju] = config_.reconnect_backoff_initial;
  next_reconnect_[ju] = now + backoff_[ju] + jitter(backoff_[ju] / 2 + 1);
  loop_->mark_channel_down(j);
}

bool LocalRegion::try_reconnect(int j, TimeNs now, LocalRunStats& stats) {
  const auto ju = static_cast<std::size_t>(j);
  if (!worker_up_[ju]) {
    // The worker process is still gone: treat as a failed dial and back
    // off exponentially (with jitter, so several quarantined connections
    // do not retry in lockstep).
    backoff_[ju] =
        std::min(backoff_[ju] * 2, config_.reconnect_backoff_max);
    next_reconnect_[ju] = now + backoff_[ju] + jitter(backoff_[ju] / 2 + 1);
    return false;
  }
  try {
    // Rebuild the splitter->worker connection and spawn the stateless
    // replacement PE, exactly like bring-up.
    net::Listener listener;
    net::Fd splitter_side = net::connect_loopback(listener.port(), 1000);
    net::Fd worker_side = listener.accept_one(1000);
    net::set_nodelay(splitter_side.get());
    net::set_send_buffer(splitter_side.get(), config_.socket_buffer_bytes);
    net::set_recv_buffer(worker_side.get(), config_.socket_buffer_bytes);

    // Re-admit the worker's merger stream: dial the merger's reconnect
    // port and announce the slot with a hello frame before any data
    // flows.
    net::Fd to_merger =
        net::connect_loopback(merger_->reconnect_port(), 1000);
    net::set_nodelay(to_merger.get());
    const std::vector<std::uint8_t> hello =
        net::hello_bytes(static_cast<std::uint32_t>(j));
    net::write_all(to_merger.get(), hello.data(), hello.size());

    workers_[ju] = std::make_unique<WorkerPe>(
        j, std::move(worker_side), std::move(to_merger),
        config_.multiplies, config_.work_mode, service_hists_[ju]);
    workers_[ju]->set_load_multiplier(load_mult_[ju]);
    senders_[ju]->rebind(splitter_side.get());
    to_workers_[ju] = std::move(splitter_side);
  } catch (const std::exception&) {
    backoff_[ju] =
        std::min(std::max(backoff_[ju] * 2,
                          config_.reconnect_backoff_initial),
                 config_.reconnect_backoff_max);
    next_reconnect_[ju] = now + backoff_[ju] + jitter(backoff_[ju] / 2 + 1);
    return false;
  }
  chan_down_[ju] = 0;
  backoff_[ju] = 0;
  ++stats.reconnects;
  if (mc_.reconnects != nullptr) mc_.reconnects->inc();
  loop_->mark_channel_up(j);
  return true;
}

LocalRunStats LocalRegion::run(DurationNs duration) {
  if (ran_) throw std::logic_error("LocalRegion::run is one-shot");
  ran_ = true;

  std::vector<LoadEvent> events = config_.load_events;
  std::sort(events.begin(), events.end(),
            [](const LoadEvent& a, const LoadEvent& b) { return a.at < b.at; });
  std::size_t next_event = 0;
  std::vector<FailureEvent> failures = config_.failure_events;
  std::sort(failures.begin(), failures.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              return a.at < b.at;
            });
  std::size_t next_failure = 0;

  const TimeNs start = monotonic_now();
  run_start_ = start;
  TimeNs next_sample = start + config_.sample_period;

  LocalRunStats stats;
  net::Frame frame;
  frame.payload.assign(config_.payload_bytes, 0xAB);
  std::vector<std::uint8_t> wire;

  const int n = config_.workers;
  const bool alo = this->alo();

  // At-least-once: drain the merger's cumulative acks (non-blocking) and
  // trim the replay buffers. An ack only ever shrinks state, so doing
  // this between any two sends is safe.
  std::vector<std::uint8_t> ack_rd(4096);
  const auto pump_acks = [&] {
    if (!alo || !ack_in_.valid()) return;
    for (;;) {
      const ssize_t got =
          ::recv(ack_in_.get(), ack_rd.data(), ack_rd.size(), MSG_DONTWAIT);
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          return;
        }
        ack_in_.reset();
        return;
      }
      if (got == 0) {  // merger closed its end (shutdown)
        ack_in_.reset();
        return;
      }
      ack_decoder_.feed(ack_rd.data(), static_cast<std::size_t>(got));
      net::Frame ack;
      while (ack_decoder_.next(ack)) {
        if (!ack.is_ack() || ack.ack_value() <= acked_) continue;
        acked_ = ack.ack_value();
        for (auto& b : replay_) b.ack(acked_);
        while (!replay_pending_.empty() &&
               replay_pending_.front().seq < acked_) {
          replay_pending_.pop_front();
        }
      }
      if (ack_decoder_.corrupt()) {
        ack_in_.reset();
        return;
      }
    }
  };

  // Liveness sweep: a worker death is normally discovered by a failing
  // send, but a channel nobody is sending to (its replay window is full,
  // or traffic routes elsewhere) can die invisibly — and with its receive
  // window closed no RST will ever surface. The stream is one-way, so a
  // readable splitter-side socket can only mean FIN/RST: peek each live
  // channel and quarantine the dead ones, which (at-least-once) requeues
  // their unacked frames for replay and unfreezes the ack cursor.
  const auto sweep_dead_channels = [&](TimeNs tnow, LocalRunStats& st) {
    for (int k = 0; k < n; ++k) {
      const auto ku = static_cast<std::size_t>(k);
      if (chan_down_[ku]) continue;
      std::uint8_t probe;
      const ssize_t got = ::recv(to_workers_[ku].get(), &probe, 1,
                                 MSG_DONTWAIT | MSG_PEEK);
      if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
        quarantine(k, tnow, st);
      }
    }
  };

  // Replay-buffer back pressure: every live candidate's unacked window
  // is full, so the send must wait for ack progress. The wait is charged
  // to the picked connection's blocking counter — to the control plane
  // this is indistinguishable from (and as real as) a full socket
  // buffer, which keeps the blocking-rate signal truthful.
  const auto block_on_replay = [&](int j) {
    const TimeNs b0 = monotonic_now();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    counters_.at(static_cast<std::size_t>(j)).add(monotonic_now() - b0);
    pump_acks();
    // The ack we are waiting for may be gated on a frame that died with
    // its worker; only quarantine-and-replay can break that cycle.
    sweep_dead_channels(monotonic_now(), stats);
  };

  // Sequence numbers are issued from next_seq; shed tuples consume them
  // without being sent. The protection decisions themselves (throttle_,
  // shed watermarks, watchdog ladder) come out of the shared control
  // loop, ticked once per sample period below.
  std::uint64_t next_seq = 0;
  TimeNs next_release = start;  // open-loop release clock
  std::uint64_t prev_shed = 0;
  double throttle_debt = 0.0;  // accumulated ns to sleep off
  // Shed ranges not yet announced to the merger: [first, count). Flushed
  // through any live worker connection (workers forward gap frames with
  // zero work); held and retried while everything is down.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> gap_queue;

  const auto flush_gaps = [&](TimeNs tnow) {
    while (!gap_queue.empty()) {
      int live = -1;
      for (int k = 0; k < n; ++k) {
        if (!chan_down_[static_cast<std::size_t>(k)]) {
          live = k;
          break;
        }
      }
      if (live < 0) return;  // all quarantined; retry after a reconnect
      const auto ku = static_cast<std::size_t>(live);
      // A half-flushed re-route remainder owns the stream until it is
      // complete; finishing it is mandatory before interleaving a frame.
      flush_pending(live, /*blocking=*/true);
      if (!pending_[ku].empty()) return;  // flush hit a broken sender
      const std::vector<std::uint8_t> gap_frame =
          net::gap_bytes(gap_queue.front().first, gap_queue.front().second);
      if (senders_[ku]->send_all(gap_frame.data(), gap_frame.size())) {
        gap_queue.erase(gap_queue.begin());
      } else {
        quarantine(live, tnow, stats);
      }
    }
  };
  for (;;) {
    // Time-driven bookkeeping, checked every iteration (a clock read per
    // tuple is ~20 ns, and the non-blocking ack read is one syscall —
    // both negligible next to a TCP send).
    const TimeNs now = monotonic_now();
    if (now - start >= duration) break;
    pump_acks();
    while (next_event < events.size() &&
           now - start >= events[next_event].at) {
      const auto w =
          static_cast<std::size_t>(events[next_event].worker);
      load_mult_[w] = events[next_event].multiplier;
      workers_[w]->set_load_multiplier(events[next_event].multiplier);
      ++next_event;
    }
    while (next_failure < failures.size() &&
           now - start >= failures[next_failure].at) {
      const FailureEvent& f = failures[next_failure];
      const auto w = static_cast<std::size_t>(f.worker);
      if (f.restart) {
        worker_up_[w] = 1;  // the next reconnect attempt will succeed
      } else {
        worker_up_[w] = 0;
        workers_[w]->kill();
        // The splitter discovers the death on its next send to w — the
        // kill itself is invisible, exactly like a remote PE crash.
      }
      ++next_failure;
    }
    for (int j = 0; j < n; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      if (chan_down_[ju] && now >= next_reconnect_[ju]) {
        try_reconnect(j, now, stats);
      }
    }
    if (now >= next_sample) {
      // A long blocking episode can push us several periods past
      // next_sample; normalize by the *actual* elapsed span. The whole
      // decision pipeline — observation ingest, policy update, admission
      // throttle, watchdog ladder — runs in the shared control loop,
      // which samples and actuates through this region's RegionPort.
      const DurationNs span = config_.sample_period + (now - next_sample);
      // Catch silently-dead channels once per period so the tick below
      // sees them as down rather than merely quiet.
      sweep_dead_channels(now, stats);
      if (alo) {
        std::uint64_t rb = 0;
        std::uint64_t lag = replay_pending_.size();
        for (const auto& b : replay_) {
          rb += b.bytes();
          lag += b.size();
        }
        for (const auto& e : replay_pending_) rb += e.bytes;
        if (replay_bytes_g_ != nullptr) {
          replay_bytes_g_->set(static_cast<std::int64_t>(rb));
        }
        if (ack_lag_g_ != nullptr) {
          ack_lag_g_->set(static_cast<std::int64_t>(lag));
        }
      }
      const control::ControlActions& acts = loop_->tick(now - start, span);

      sync_merger_metrics();

      if (sample_hook_) {
        LocalSample sample;
        sample.elapsed = now - start;
        sample.weights = acts.weights;
        sample.block_rates = acts.block_rates;
        sample.emitted = merger_->emitted();
        sample.shed_in_period = stats.shed - prev_shed;
        sample.overloaded = acts.overloaded;
        sample.watchdog_stage = acts.watchdog_stage;
        sample_hook_(sample);
      }
      prev_shed = stats.shed;
      next_sample = now + config_.sample_period;
    }

    // Announce any shed ranges that could not be delivered earlier.
    if (!gap_queue.empty()) flush_gaps(now);

    // At-least-once: frames queued for retransmission drain ahead of
    // fresh input (and ahead of source pacing — they were released long
    // ago). Keeping old-before-new bounds how far the merger's replay
    // pool has to reorder.
    const bool retransmit = alo && !replay_pending_.empty();

    if (!retransmit && config_.source_interval > 0) {
      // Open loop: shed when the backlog crosses the high watermark...
      if (shed_high_ > 0 && now > next_release) {
        const std::uint64_t backlog = static_cast<std::uint64_t>(
            (now - next_release) / config_.source_interval);
        if (backlog >= shed_high_) {
          const std::uint64_t drop = backlog - shed_low_;
          gap_queue.emplace_back(next_seq, drop);
          next_seq += drop;
          stats.shed += drop;
          if (mc_.shed != nullptr) mc_.shed->inc(drop);
          next_release +=
              static_cast<DurationNs>(drop) * config_.source_interval;
          flush_gaps(now);
        }
      }
      // ...and wait for the next release otherwise.
      if (now < next_release) {
        const DurationNs wait = next_release - now;
        if (wait > micros(100)) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(wait - micros(50)));
        }
        continue;  // re-reads the clock and re-runs event processing
      }
    }

    std::uint64_t frame_seq;
    if (retransmit) {
      frame_seq = replay_pending_.front().seq;
      wire = replay_pending_.front().payload;  // popped only on success
    } else {
      frame_seq = next_seq;
      frame.seq = next_seq;
      wire.clear();
      net::encode_frame(frame, wire);
    }

    int j = policy_->pick_connection();
    if (chan_down_[static_cast<std::size_t>(j)]) {
      // Quarantined connection: fail over to the next live one. The
      // policy's weight for j is already zero, but smooth-WRR state can
      // still name it briefly.
      int live = -1;
      for (int step = 1; step < n; ++step) {
        const int k = (j + step) % n;
        if (!chan_down_[static_cast<std::size_t>(k)]) {
          live = k;
          break;
        }
      }
      if (live < 0) {
        // Total outage: idle until a reconnect lands.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      ++stats.failovers;
      if (mc_.failovers != nullptr) mc_.failovers->inc();
      j = live;
    }

    int delivered_to = -1;
    if (policy_->reroute_on_block()) {
      // Section 4.4 baseline: divert whole frames to any connection whose
      // kernel buffer accepts them without blocking. A partially-accepted
      // frame must finish on the same socket before anything else goes
      // there, so remainders sit in a per-connection userspace buffer
      // (mirroring a transport layer's output queue) and are flushed
      // opportunistically; a connection with pending bytes is skipped by
      // the re-route scan.
      for (int k = 0; k < n; ++k) {
        if (!chan_down_[static_cast<std::size_t>(k)]) {
          flush_pending(k, /*blocking=*/false);
        }
      }
      int target = -1;
      for (int step = 0; step < n; ++step) {
        const int k = (j + step) % n;
        const auto ku = static_cast<std::size_t>(k);
        if (chan_down_[ku]) continue;
        if (!pending_[ku].empty()) continue;
        // A full replay buffer back-pressures exactly like a full kernel
        // buffer: the re-route scan walks past it.
        if (alo && replay_[ku].would_block(wire.size())) continue;
        const std::size_t accepted =
            senders_[ku]->try_send(wire.data(), wire.size());
        if (senders_[ku]->broken()) {
          quarantine(k, now, stats);
          continue;
        }
        if (accepted == wire.size()) {
          target = k;
          break;
        }
        if (accepted > 0) {
          pending_[ku].assign(wire.begin() +
                                  static_cast<std::ptrdiff_t>(accepted),
                              wire.end());
          target = k;
          break;
        }
      }
      if (target < 0) {
        if (chan_down_[static_cast<std::size_t>(j)]) continue;  // re-pick
        if (alo &&
            replay_[static_cast<std::size_t>(j)].would_block(wire.size())) {
          block_on_replay(j);
          continue;
        }
        // Everything is full: elect to block on the picked connection,
        // exactly like the paper's splitter.
        flush_pending(j, /*blocking=*/true);
        if (!senders_[static_cast<std::size_t>(j)]->send_all(
                wire.data(), wire.size())) {
          quarantine(j, now, stats);
          continue;  // the frame is re-sent (same seq) next iteration
        }
        target = j;
      }
      if (target != j) {
        ++stats.rerouted;
        if (mc_.rerouted != nullptr) mc_.rerouted->inc();
      }
      delivered_to = target;
    } else {
      for (int step = 0; step < n && delivered_to < 0; ++step) {
        const int k = (j + step) % n;
        const auto ku = static_cast<std::size_t>(k);
        if (chan_down_[ku]) continue;
        if (alo && replay_[ku].would_block(wire.size())) continue;
        if (senders_[ku]->send_all(wire.data(), wire.size())) {
          delivered_to = k;
          if (k != j) {
            ++stats.failovers;
            if (mc_.failovers != nullptr) mc_.failovers->inc();
          }
        } else {
          // Peer vanished mid-send: the dead worker never decoded the
          // partial frame, so the *whole* frame fails over to the next
          // survivor with its sequence number intact.
          quarantine(k, now, stats);
        }
      }
      if (delivered_to < 0) {
        // Everyone down — retry after events — or (at-least-once) every
        // survivor's replay window is full: wait for ack progress.
        if (alo && !chan_down_[static_cast<std::size_t>(j)]) {
          block_on_replay(j);
        }
        continue;
      }
    }
    if (alo) {
      // The frame is now in flight and unacked: it joins the replay
      // buffer of whichever connection carried it.
      replay_[static_cast<std::size_t>(delivered_to)].push(
          frame_seq, wire.size(), wire);
    }
    if (retransmit) {
      replay_pending_.pop_front();
      ++stats.retransmits;
      if (mc_.retransmits != nullptr) mc_.retransmits->inc();
      continue;  // a re-send is not a fresh sequence: no sent/pacing
    }
    ++stats.sent;
    if (mc_.sent != nullptr) mc_.sent->inc();
    ++next_seq;
    if (config_.source_interval > 0) {
      next_release += config_.source_interval;
    } else if (throttle_ < 1.0) {
      // Admission control: pay out the complement of the throttle factor
      // as sleep, batched so sub-100µs debts still take effect.
      const TimeNs after = monotonic_now();
      throttle_debt +=
          (1.0 / throttle_ - 1.0) * static_cast<double>(after - now);
      if (throttle_debt >= 100000.0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            static_cast<long long>(throttle_debt)));
        throttle_debt = 0.0;
      }
    }
  }

  // Shutdown: switch workers to fast-drain (forward buffered tuples
  // without paying their processing cost), flush any re-routing
  // remainders, FIN every live worker, then wait for the merger to
  // drain. begin_shutdown tells the merger that crashed slots will never
  // reconnect, so it must not wait for them.
  for (auto& w : workers_) w->fast_drain();
  // Pending shed announcements must reach the merger before the FINs, or
  // it would gate forever (plain mode) or mis-account trailing sheds.
  flush_gaps(monotonic_now());
  // At-least-once: frames still queued for retransmission must reach a
  // survivor before the FINs, or their sequences would be lost after
  // all. Reconnect attempts continue (a restart may be pending), but the
  // drain is bounded — a region that lost every worker for good reports
  // the loss instead of hanging.
  if (alo) {
    const TimeNs drain_deadline = monotonic_now() + millis(2000);
    while (!replay_pending_.empty() && monotonic_now() < drain_deadline) {
      pump_acks();  // an in-flight ack may cover the front entries
      if (replay_pending_.empty()) break;
      const TimeNs dnow = monotonic_now();
      // A channel that died after the last sweep would otherwise soak up
      // the whole drain budget in blocked sends below.
      sweep_dead_channels(dnow, stats);
      int live = -1;
      for (int k = 0; k < n; ++k) {
        const auto ku = static_cast<std::size_t>(k);
        if (chan_down_[ku] && dnow >= next_reconnect_[ku]) {
          try_reconnect(k, dnow, stats);
        }
        if (!chan_down_[ku] && live < 0) live = k;
      }
      if (live < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      const auto lu = static_cast<std::size_t>(live);
      flush_pending(live, /*blocking=*/true);
      if (!pending_[lu].empty()) {
        quarantine(live, monotonic_now(), stats);
        continue;
      }
      WireReplayBuffer::Entry& e = replay_pending_.front();
      if (senders_[lu]->send_all(e.payload.data(), e.payload.size())) {
        replay_[lu].push(e.seq, e.bytes, std::move(e.payload));
        replay_pending_.pop_front();
        ++stats.retransmits;
        if (mc_.retransmits != nullptr) mc_.retransmits->inc();
      } else {
        quarantine(live, monotonic_now(), stats);
      }
    }
  }
  const std::vector<std::uint8_t> fin = net::fin_bytes();
  for (int j = 0; j < n; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (chan_down_[ju]) continue;
    flush_pending(j, /*blocking=*/true);
    if (!senders_[ju]->send_all(fin.data(), fin.size())) {
      quarantine(j, monotonic_now(), stats);
    }
  }
  for (auto& w : workers_) w->join();
  merger_->begin_shutdown();
  merger_->join();
  sync_merger_metrics();

  stats.elapsed = monotonic_now() - start;
  stats.emitted = merger_->emitted();
  stats.gaps = merger_->gaps();
  stats.dup_discards = merger_->dup_discards();
  stats.late_discards = merger_->late_discards();
  stats.order_ok = merger_->order_ok() &&
                   stats.emitted + stats.gaps == stats.sent + stats.shed;
  stats.blocked = counters_.sample();
  stats.final_weights = policy_->weights();
  return stats;
}

void LocalRegion::sync_merger_metrics() {
  if (merger_emitted_c_ == nullptr || merger_ == nullptr) return;
  const std::uint64_t emitted = merger_->emitted();
  const std::uint64_t gaps = merger_->gaps();
  const std::uint64_t reconnects = merger_->reconnects();
  if (emitted > merger_emitted_seen_) {
    merger_emitted_c_->inc(emitted - merger_emitted_seen_);
    merger_emitted_seen_ = emitted;
  }
  if (gaps > merger_gaps_seen_) {
    merger_gaps_c_->inc(gaps - merger_gaps_seen_);
    merger_gaps_seen_ = gaps;
  }
  if (reconnects > merger_reconnects_seen_) {
    merger_reconnects_c_->inc(reconnects - merger_reconnects_seen_);
    merger_reconnects_seen_ = reconnects;
  }
  const std::uint64_t dups = merger_->dup_discards();
  if (dups > merger_dups_seen_) {
    merger_dups_c_->inc(dups - merger_dups_seen_);
    merger_dups_seen_ = dups;
  }
  const std::uint64_t lates = merger_->late_discards();
  if (lates > merger_lates_seen_) {
    merger_lates_c_->inc(lates - merger_lates_seen_);
    merger_lates_seen_ = lates;
  }
  merger_depth_g_->set(
      static_cast<std::int64_t>(merger_->max_queue_depth()));
}

}  // namespace slb::rt
