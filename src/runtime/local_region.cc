#include "runtime/local_region.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "transport/framing.h"

namespace slb::rt {

LocalRegion::LocalRegion(LocalRegionConfig config,
                         std::unique_ptr<SplitPolicy> policy)
    : config_(config),
      policy_(std::move(policy)),
      counters_(static_cast<std::size_t>(config.workers)) {
  assert(config_.workers > 0);
  assert(policy_ != nullptr);

  // Topology bring-up: a listener per worker for the splitter connection,
  // one listener at the merger side for the worker->merger connections.
  net::Listener merger_listener;
  std::vector<net::Fd> worker_to_merger;
  std::vector<net::Fd> merger_from_worker;
  for (int j = 0; j < config_.workers; ++j) {
    worker_to_merger.push_back(
        net::connect_loopback(merger_listener.port()));
    merger_from_worker.push_back(merger_listener.accept_one());
  }

  for (int j = 0; j < config_.workers; ++j) {
    net::Listener worker_listener;
    net::Fd splitter_side = net::connect_loopback(worker_listener.port());
    net::Fd worker_side = worker_listener.accept_one();

    net::set_nodelay(splitter_side.get());
    net::set_send_buffer(splitter_side.get(), config_.socket_buffer_bytes);
    net::set_recv_buffer(worker_side.get(), config_.socket_buffer_bytes);
    net::set_nodelay(worker_to_merger[static_cast<std::size_t>(j)].get());

    senders_.push_back(std::make_unique<net::InstrumentedSender>(
        splitter_side.get(), &counters_.at(static_cast<std::size_t>(j))));
    to_workers_.push_back(std::move(splitter_side));
    workers_.push_back(std::make_unique<WorkerPe>(
        j, std::move(worker_side),
        std::move(worker_to_merger[static_cast<std::size_t>(j)]),
        config_.multiplies, config_.work_mode));
  }
  merger_ = std::make_unique<MergerPe>(std::move(merger_from_worker));
  pending_.resize(static_cast<std::size_t>(config_.workers));
}

void LocalRegion::flush_pending(int k, bool blocking) {
  auto& buf = pending_[static_cast<std::size_t>(k)];
  if (buf.empty()) return;
  auto& sender = *senders_[static_cast<std::size_t>(k)];
  if (blocking) {
    sender.send_all(buf.data(), buf.size());
    buf.clear();
    return;
  }
  const std::size_t accepted = sender.try_send(buf.data(), buf.size());
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(accepted));
}

LocalRegion::~LocalRegion() {
  // PEs join in their own destructors; close splitter sockets first so
  // any worker still reading sees EOF.
  to_workers_.clear();
}

LocalRunStats LocalRegion::run(DurationNs duration) {
  if (ran_) throw std::logic_error("LocalRegion::run is one-shot");
  ran_ = true;

  std::vector<LoadEvent> events = config_.load_events;
  std::sort(events.begin(), events.end(),
            [](const LoadEvent& a, const LoadEvent& b) { return a.at < b.at; });
  std::size_t next_event = 0;

  const TimeNs start = monotonic_now();
  TimeNs next_sample = start + config_.sample_period;
  std::vector<DurationNs> prev_blocked(
      static_cast<std::size_t>(config_.workers), 0);

  LocalRunStats stats;
  net::Frame frame;
  frame.payload.assign(config_.payload_bytes, 0xAB);
  std::vector<std::uint8_t> wire;

  const int n = config_.workers;
  for (;;) {
    // Time-driven bookkeeping, checked every iteration (a clock read per
    // tuple is ~20 ns, negligible next to a TCP send).
    const TimeNs now = monotonic_now();
    if (now - start >= duration) break;
    while (next_event < events.size() &&
           now - start >= events[next_event].at) {
      workers_[static_cast<std::size_t>(events[next_event].worker)]
          ->set_load_multiplier(events[next_event].multiplier);
      ++next_event;
    }
    if (now >= next_sample) {
      const std::vector<DurationNs> cumulative = counters_.sample();
      policy_->on_sample(now - start, cumulative);
      if (sample_hook_) {
        LocalSample sample;
        sample.elapsed = now - start;
        sample.weights = policy_->weights();
        sample.block_rates.reserve(static_cast<std::size_t>(n));
        // A long blocking episode can push us several periods past
        // next_sample; normalize by the *actual* elapsed span.
        const DurationNs span =
            config_.sample_period + (now - next_sample);
        for (int j = 0; j < n; ++j) {
          const auto ju = static_cast<std::size_t>(j);
          sample.block_rates.push_back(
              static_cast<double>(cumulative[ju] - prev_blocked[ju]) /
              static_cast<double>(span));
          prev_blocked[ju] = cumulative[ju];
        }
        sample.emitted = merger_->emitted();
        sample_hook_(sample);
      }
      next_sample = now + config_.sample_period;
    }

    frame.seq = stats.sent;
    wire.clear();
    net::encode_frame(frame, wire);

    const int j = policy_->pick_connection();
    if (policy_->reroute_on_block()) {
      // Section 4.4 baseline: divert whole frames to any connection whose
      // kernel buffer accepts them without blocking. A partially-accepted
      // frame must finish on the same socket before anything else goes
      // there, so remainders sit in a per-connection userspace buffer
      // (mirroring a transport layer's output queue) and are flushed
      // opportunistically; a connection with pending bytes is skipped by
      // the re-route scan.
      for (int k = 0; k < n; ++k) flush_pending(k, /*blocking=*/false);
      int target = -1;
      for (int step = 0; step < n; ++step) {
        const int k = (j + step) % n;
        const auto ku = static_cast<std::size_t>(k);
        if (!pending_[ku].empty()) continue;
        const std::size_t accepted =
            senders_[ku]->try_send(wire.data(), wire.size());
        if (accepted == wire.size()) {
          target = k;
          break;
        }
        if (accepted > 0) {
          pending_[ku].assign(wire.begin() +
                                  static_cast<std::ptrdiff_t>(accepted),
                              wire.end());
          target = k;
          break;
        }
      }
      if (target < 0) {
        // Everything is full: elect to block on the picked connection,
        // exactly like the paper's splitter.
        flush_pending(j, /*blocking=*/true);
        senders_[static_cast<std::size_t>(j)]->send_all(wire.data(),
                                                        wire.size());
        target = j;
      }
      if (target != j) ++stats.rerouted;
    } else {
      senders_[static_cast<std::size_t>(j)]->send_all(wire.data(),
                                                      wire.size());
    }
    ++stats.sent;
  }

  // Shutdown: switch workers to fast-drain (forward buffered tuples
  // without paying their processing cost), flush any re-routing
  // remainders, FIN every worker, then wait for the merger to drain.
  for (auto& w : workers_) w->fast_drain();
  const std::vector<std::uint8_t> fin = net::fin_bytes();
  for (int j = 0; j < n; ++j) {
    flush_pending(j, /*blocking=*/true);
    senders_[static_cast<std::size_t>(j)]->send_all(fin.data(), fin.size());
  }
  for (auto& w : workers_) w->join();
  merger_->join();

  stats.elapsed = monotonic_now() - start;
  stats.emitted = merger_->emitted();
  stats.order_ok = merger_->order_ok() && stats.emitted == stats.sent;
  stats.blocked = counters_.sample();
  stats.final_weights = policy_->weights();
  return stats;
}

}  // namespace slb::rt
