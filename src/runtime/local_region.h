// A complete parallel region of the threaded runtime, assembled over real
// loopback TCP: the splitter (run on the calling thread), N worker PE
// threads, and the merger PE thread.
//
//   splitter ==TCP==> worker_0..N-1 ==TCP==> merger
//
// Substitution note (DESIGN.md): the paper runs PEs as processes across a
// cluster; we run them as threads in one process over 127.0.0.1. The
// kernel socket path — buffers, flow control, EAGAIN — is the same, which
// is all the blocking-rate mechanism observes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/blocking_counter.h"
#include "core/policies.h"
#include "runtime/merger_pe.h"
#include "runtime/worker_pe.h"
#include "transport/instrumented_sender.h"
#include "util/time.h"

namespace slb::rt {

/// One scheduled external-load change, relative to run() start.
struct LoadEvent {
  DurationNs at = 0;
  int worker = 0;
  double multiplier = 1.0;
};

struct LocalRegionConfig {
  int workers = 2;
  /// Dependent integer multiplies per tuple (the paper's base cost).
  long multiplies = 10000;
  /// kSpin burns real CPU (paper-faithful); kSleep waits the equivalent
  /// time, keeping capacities stable on machines with fewer cores than
  /// PEs (see WorkMode).
  WorkMode work_mode = WorkMode::kSpin;
  /// Tuple payload size on the wire (plus the 12-byte frame header).
  std::size_t payload_bytes = 64;
  /// Kernel send/receive buffer request per socket; small values make
  /// back pressure (and therefore blocking) visible quickly.
  int socket_buffer_bytes = 16 * 1024;
  /// How often the splitter samples counters and updates the policy.
  DurationNs sample_period = millis(100);
  /// External-load schedule applied during run().
  std::vector<LoadEvent> load_events;
};

/// Result of one run.
struct LocalRunStats {
  std::uint64_t sent = 0;
  std::uint64_t emitted = 0;
  std::uint64_t rerouted = 0;
  DurationNs elapsed = 0;
  bool order_ok = false;
  /// Cumulative blocked ns per connection at the end of the run.
  std::vector<DurationNs> blocked;
  /// Final allocation weights.
  WeightVector final_weights;
};

/// Sample-time snapshot passed to the optional hook.
struct LocalSample {
  DurationNs elapsed = 0;
  WeightVector weights;
  std::vector<double> block_rates;
  std::uint64_t emitted = 0;
};

class LocalRegion {
 public:
  LocalRegion(LocalRegionConfig config, std::unique_ptr<SplitPolicy> policy);
  ~LocalRegion();

  LocalRegion(const LocalRegion&) = delete;
  LocalRegion& operator=(const LocalRegion&) = delete;

  /// Called once per sample period from the splitter thread.
  void set_sample_hook(std::function<void(const LocalSample&)> hook) {
    sample_hook_ = std::move(hook);
  }

  /// Runs the splitter loop for `duration` wall time on the calling
  /// thread, then shuts the pipeline down and joins all PEs. One-shot.
  LocalRunStats run(DurationNs duration);

  SplitPolicy& policy() { return *policy_; }
  BlockingCounterSet& counters() { return counters_; }
  MergerPe& merger() { return *merger_; }
  WorkerPe& worker(int j) { return *workers_[static_cast<std::size_t>(j)]; }

 private:
  /// Drains connection k's userspace remainder buffer (re-routing mode).
  /// Non-blocking mode sends what the kernel accepts; blocking mode
  /// finishes the whole remainder (blocked time is recorded as usual).
  void flush_pending(int k, bool blocking);

  LocalRegionConfig config_;
  std::unique_ptr<SplitPolicy> policy_;
  BlockingCounterSet counters_;
  std::vector<std::vector<std::uint8_t>> pending_;

  std::vector<net::Fd> to_workers_;
  std::vector<std::unique_ptr<net::InstrumentedSender>> senders_;
  std::vector<std::unique_ptr<WorkerPe>> workers_;
  std::unique_ptr<MergerPe> merger_;
  std::function<void(const LocalSample&)> sample_hook_;
  bool ran_ = false;
};

}  // namespace slb::rt
