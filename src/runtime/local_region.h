// A complete parallel region of the threaded runtime, assembled over real
// loopback TCP: the splitter (run on the calling thread), N worker PE
// threads, and the merger PE thread.
//
//   splitter ==TCP==> worker_0..N-1 ==TCP==> merger
//
// Substitution note (DESIGN.md): the paper runs PEs as processes across a
// cluster; we run them as threads in one process over 127.0.0.1. The
// kernel socket path — buffers, flow control, EAGAIN — is the same, which
// is all the blocking-rate mechanism observes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "control/protection.h"
#include "control/region_control.h"
#include "control/region_port.h"
#include "core/blocking_counter.h"
#include "core/policies.h"
#include "delivery/delivery.h"
#include "delivery/replay_buffer.h"
#include "obs/metrics.h"
#include "runtime/merger_pe.h"
#include "runtime/worker_pe.h"
#include "transport/framing.h"
#include "transport/instrumented_sender.h"
#include "util/time.h"

namespace slb::rt {

/// One scheduled external-load change, relative to run() start.
struct LoadEvent {
  DurationNs at = 0;
  int worker = 0;
  double multiplier = 1.0;
};

/// One scheduled worker failure, relative to run() start. `restart =
/// false` kills the worker PE abruptly (sockets reset, buffered tuples
/// lost); `restart = true` makes a fresh, stateless replacement available
/// — the splitter's next reconnect attempt then succeeds and re-admits
/// the connection through the policy's probing path.
struct FailureEvent {
  DurationNs at = 0;
  int worker = 0;
  bool restart = false;
};

struct LocalRegionConfig {
  int workers = 2;
  /// Dependent integer multiplies per tuple (the paper's base cost).
  long multiplies = 10000;
  /// kSpin burns real CPU (paper-faithful); kSleep waits the equivalent
  /// time, keeping capacities stable on machines with fewer cores than
  /// PEs (see WorkMode).
  WorkMode work_mode = WorkMode::kSpin;
  /// Tuple payload size on the wire (plus the 16-byte frame header).
  std::size_t payload_bytes = 64;
  /// Kernel send/receive buffer request per socket; small values make
  /// back pressure (and therefore blocking) visible quickly.
  int socket_buffer_bytes = 16 * 1024;
  /// How often the splitter samples counters and updates the policy.
  DurationNs sample_period = millis(100);
  /// External-load schedule applied during run().
  std::vector<LoadEvent> load_events;
  /// Failure schedule applied during run(). Non-empty schedules enable
  /// the fault-tolerant merger (reconnect port + gap skipping).
  std::vector<FailureEvent> failure_events;
  /// Reconnect backoff for quarantined connections: doubles from initial
  /// to max, with deterministic jitter.
  DurationNs reconnect_backoff_initial = millis(10);
  DurationNs reconnect_backoff_max = millis(320);
  /// How long the merger waits on a missing sequence before declaring it
  /// dead (see MergerFaultConfig::gap_timeout).
  DurationNs merger_gap_timeout = millis(500);

  // --- Overload protection (DESIGN.md §7, §9) --------------------------

  /// Source pacing: 0 = closed loop (send as fast as the region accepts);
  /// > 0 = open loop releasing one tuple every `source_interval` ns, with
  /// arrears bursting out after blocking.
  DurationNs source_interval = 0;

  /// The region's protection knobs (admission control, shed watermarks,
  /// watchdog ladder), enforced by the shared control::RegionControlLoop
  /// the splitter thread ticks once per sample period.
  control::ProtectionConfig protection;

  /// Deprecated aliases of the `protection` fields (pre-control-plane
  /// flat layout). A field set away from its default overrides the
  /// embedded struct via control::merged_protection, so old call sites
  /// keep working; new code should write `protection.*`.
  bool admission_control = false;
  double min_throttle = 0.25;
  std::uint64_t shed_high_watermark = 0;
  std::uint64_t shed_low_watermark = 0;
  bool watchdog = false;
  double watchdog_block_budget = 0.9;
  int watchdog_periods = 8;

  /// Legacy aliases resolved against the embedded struct.
  control::ProtectionConfig resolved_protection() const {
    return control::merged_protection(
        protection, admission_control, min_throttle, shed_high_watermark,
        shed_low_watermark, watchdog, watchdog_block_budget,
        watchdog_periods);
  }

  // --- Delivery semantics (DESIGN.md §10) ------------------------------

  /// GapSkip (default: byte-identical to the pre-delivery behavior) or
  /// at-least-once. At-least-once adds a merger->splitter ack connection,
  /// per-connection replay buffers of unacked wire frames, and
  /// crash-triggered retransmission through the normal routing path.
  delivery::DeliveryConfig delivery;

  // --- Observability (DESIGN.md §8) ------------------------------------

  /// Wire the region's MetricsRegistry into the splitter loop, worker PEs
  /// (service-time histograms), merger sync, and the policy. Counters are
  /// relaxed atomics, safe across PE threads.
  bool metrics = true;
};

/// Result of one run.
struct LocalRunStats {
  std::uint64_t sent = 0;
  std::uint64_t emitted = 0;
  std::uint64_t rerouted = 0;
  DurationNs elapsed = 0;
  /// Emission stayed in sequence order and accounted for every issued
  /// sequence number: emitted + gaps == sent + shed. Without failures or
  /// shedding this is the strict equality it always was.
  bool order_ok = false;
  /// Sequence numbers lost to worker crashes or shed at the source, all
  /// skipped by the merger.
  std::uint64_t gaps = 0;
  /// Tuples shed at the source under overload (each consumed a sequence
  /// number and was announced to the merger as a gap).
  std::uint64_t shed = 0;
  /// Connections the splitter quarantined after a broken send.
  std::uint64_t channel_failures = 0;
  /// Quarantined connections successfully rebuilt (worker restarted).
  std::uint64_t reconnects = 0;
  /// Tuples diverted because their picked connection was quarantined.
  std::uint64_t failovers = 0;
  /// At-least-once only: frames re-sent from replay buffers after a
  /// quarantine. Not counted in `sent` — `sent` stays a count of unique
  /// sequence numbers delivered.
  std::uint64_t retransmits = 0;
  /// Replay echoes the merger discarded below its release cursor (ALO).
  std::uint64_t dup_discards = 0;
  /// Tuples that arrived after their sequence was declared a gap
  /// (GapSkip fault mode; previously an invisible wedge).
  std::uint64_t late_discards = 0;
  /// Cumulative blocked ns per connection at the end of the run.
  std::vector<DurationNs> blocked;
  /// Final allocation weights.
  WeightVector final_weights;
};

/// Sample-time snapshot passed to the optional hook.
struct LocalSample {
  DurationNs elapsed = 0;
  WeightVector weights;
  std::vector<double> block_rates;
  std::uint64_t emitted = 0;
  /// Tuples shed at the source during this period.
  std::uint64_t shed_in_period = 0;
  /// Policy's declared overload state at sample time.
  bool overloaded = false;
  /// Watchdog escalation stage (0 = normal .. 3 = safe-mode WRR).
  int watchdog_stage = 0;
};

class LocalRegion : private control::RegionPort {
 public:
  LocalRegion(LocalRegionConfig config, std::unique_ptr<SplitPolicy> policy);
  ~LocalRegion();

  LocalRegion(const LocalRegion&) = delete;
  LocalRegion& operator=(const LocalRegion&) = delete;

  /// Called once per sample period from the splitter thread.
  void set_sample_hook(std::function<void(const LocalSample&)> hook) {
    sample_hook_ = std::move(hook);
  }

  /// Runs the splitter loop for `duration` wall time on the calling
  /// thread, then shuts the pipeline down and joins all PEs. One-shot.
  LocalRunStats run(DurationNs duration);

  SplitPolicy& policy() { return *policy_; }
  BlockingCounterSet& counters() { return counters_; }
  MergerPe& merger() { return *merger_; }
  WorkerPe& worker(int j) { return *workers_[static_cast<std::size_t>(j)]; }

  /// The region's control loop (DESIGN.md §9): the shared per-period
  /// decision pipeline the splitter thread ticks between sends.
  control::RegionControlLoop& control() { return *loop_; }
  const control::RegionControlLoop& control() const { return *loop_; }

  /// Current watchdog escalation stage (0 = normal .. 3 = safe-mode WRR).
  int watchdog_stage() const { return loop_->watchdog_stage(); }

  /// The region's metrics registry (DESIGN.md §8): "splitter.*" counters
  /// from the splitter loop, "worker.<j>.service_ns" histograms recorded
  /// on the PE threads, "merger.*" synced from the merger PE's atomics
  /// once per sample period, "policy.*" via the policy's attach_metrics.
  /// Empty when config.metrics is off.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  // control::RegionPort (the control loop's view of this region). All
  // actuation lands in members the splitter loop reads between sends —
  // the loop is ticked from that same thread, so no synchronization.
  int channels() const override { return config_.workers; }
  std::vector<DurationNs> sample_blocked() override {
    return counters_.sample();
  }
  /// MergerPe keeps no per-connection emitted counts, so the loop skips
  /// the policy's (no-op) throughput ingest — exactly as before.
  std::vector<std::uint64_t> sample_delivered() override { return {}; }
  void apply_throttle(double factor) override { throttle_ = factor; }
  void apply_shed_watermarks(std::uint64_t high,
                             std::uint64_t low) override {
    shed_high_ = high;
    shed_low_ = low;
  }
  /// At-least-once: the control loop's ack-stall watchdog rung samples
  /// the splitter-side view of the ack stream. Splitter-thread state,
  /// read from the tick on that same thread.
  control::DeliverySample sample_delivery_state() override {
    control::DeliverySample s;
    s.enabled = alo();
    if (s.enabled) {
      s.cum_ack = acked_;
      std::uint64_t unacked = replay_pending_.size();
      for (const auto& b : replay_) unacked += b.size();
      s.unacked = unacked;
    }
    return s;
  }

  bool alo() const {
    return config_.delivery.mode == delivery::DeliveryMode::kAtLeastOnce;
  }

  /// Drains connection k's userspace remainder buffer (re-routing mode).
  /// Non-blocking mode sends what the kernel accepts; blocking mode
  /// finishes the whole remainder (blocked time is recorded as usual).
  void flush_pending(int k, bool blocking);

  /// Quarantines connection j after a broken send: clears its remainder
  /// (the half-written frame died with the worker), zeroes its weight via
  /// the policy hook, and arms the reconnect backoff.
  void quarantine(int j, TimeNs now, LocalRunStats& stats);

  /// One reconnect attempt for quarantined connection j. Succeeds only
  /// when a restarted worker process is available (worker_up_[j]);
  /// otherwise doubles the backoff. On success rebuilds the splitter
  /// connection, spawns the replacement PE, re-admits the merger stream
  /// via a hello frame, and tells the policy to start probing j again.
  bool try_reconnect(int j, TimeNs now, LocalRunStats& stats);

  /// Deterministic jitter in [0, limit) for reconnect backoff.
  DurationNs jitter(DurationNs limit);

  /// Syncs the merger PE's atomics into the registry (delta-increments
  /// the counters); called per sample period and at end of run.
  void sync_merger_metrics();

  LocalRegionConfig config_;
  std::unique_ptr<SplitPolicy> policy_;
  /// config_'s protection knobs with legacy aliases resolved (fixed at
  /// construction).
  control::ProtectionConfig prot_;
  BlockingCounterSet counters_;
  /// Declared before the worker PEs holding histogram handles into it.
  obs::MetricsRegistry metrics_;
  /// Splitter-loop counters (null when config.metrics is off).
  struct SplitterCounters {
    obs::Counter* sent = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* rerouted = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* channel_failures = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* retransmits = nullptr;
  } mc_;
  /// Delivery gauges (DESIGN.md §10, null when metrics off).
  obs::Gauge* replay_bytes_g_ = nullptr;
  obs::Gauge* ack_lag_g_ = nullptr;
  /// Merger-sync handles and the last values already folded in.
  obs::Counter* merger_emitted_c_ = nullptr;
  obs::Counter* merger_gaps_c_ = nullptr;
  obs::Counter* merger_reconnects_c_ = nullptr;
  obs::Counter* merger_dups_c_ = nullptr;
  obs::Counter* merger_lates_c_ = nullptr;
  obs::Gauge* merger_depth_g_ = nullptr;
  std::uint64_t merger_emitted_seen_ = 0;
  std::uint64_t merger_gaps_seen_ = 0;
  std::uint64_t merger_reconnects_seen_ = 0;
  std::uint64_t merger_dups_seen_ = 0;
  std::uint64_t merger_lates_seen_ = 0;
  /// Per-worker service histograms, passed to every (re)spawned PE.
  std::vector<obs::Histogram*> service_hists_;
  std::vector<std::vector<std::uint8_t>> pending_;

  std::vector<net::Fd> to_workers_;
  std::vector<std::unique_ptr<net::InstrumentedSender>> senders_;
  std::vector<std::unique_ptr<WorkerPe>> workers_;
  std::unique_ptr<MergerPe> merger_;
  std::function<void(const LocalSample&)> sample_hook_;

  // Failure handling (all touched only from the splitter thread).
  std::vector<char> chan_down_;
  std::vector<char> worker_up_;
  std::vector<TimeNs> next_reconnect_;
  std::vector<DurationNs> backoff_;
  std::vector<double> load_mult_;
  std::uint64_t jitter_state_ = 0x9E3779B97F4A7C15ull;

  /// The shared decision pipeline (DESIGN.md §9); this region is its
  /// RegionPort. Constructed last so it can capture the wired policy.
  std::unique_ptr<control::RegionControlLoop> loop_;

  // Actuator state written by the RegionPort overrides (from the loop)
  // and read by the splitter loop in run().
  double throttle_ = 1.0;
  std::uint64_t shed_high_ = 0;
  std::uint64_t shed_low_ = 0;

  // Delivery semantics (DESIGN.md §10); splitter-thread only. Buffers
  // hold encoded wire frames so a replay is a plain re-send.
  using WireReplayBuffer = delivery::ReplayBuffer<std::vector<std::uint8_t>>;
  std::vector<WireReplayBuffer> replay_;
  /// Frames awaiting retransmission (sorted by sequence); drained ahead
  /// of fresh sends so per-connection order stays as monotone as a
  /// replay allows.
  std::deque<WireReplayBuffer::Entry> replay_pending_;
  /// Splitter-side end of the merger's ack connection.
  net::Fd ack_in_;
  net::FrameDecoder ack_decoder_;
  /// Highest cumulative ack received from the merger.
  std::uint64_t acked_ = 0;
  /// run() start time, for journal timestamps from member functions.
  TimeNs run_start_ = 0;

  bool ran_ = false;
};

}  // namespace slb::rt
