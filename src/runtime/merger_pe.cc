#include "runtime/merger_pe.h"

#include <poll.h>
#include <unistd.h>

#include <deque>

#include "transport/framing.h"
#include "util/log.h"

namespace slb::rt {

MergerPe::MergerPe(std::vector<net::Fd> from_workers)
    : from_workers_(std::move(from_workers)) {
  thread_ = std::thread([this] { run(); });
}

MergerPe::~MergerPe() {
  if (thread_.joinable()) thread_.join();
}

void MergerPe::join() {
  if (thread_.joinable()) thread_.join();
}

void MergerPe::run() {
  try {
    const std::size_t n = from_workers_.size();
    std::vector<net::FrameDecoder> decoders(n);
    std::vector<std::deque<std::uint64_t>> queues(n);
    std::vector<bool> finished(n, false);
    std::vector<std::uint8_t> buf(64 * 1024);
    std::uint64_t expected = 0;
    std::size_t open = n;

    std::vector<pollfd> pfds(n);
    for (std::size_t j = 0; j < n; ++j) {
      pfds[j].fd = from_workers_[j].get();
      pfds[j].events = POLLIN;
    }

    net::Frame frame;
    while (open > 0) {
      const int rc = ::poll(pfds.data(), pfds.size(), 1000);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (finished[j] || !(pfds[j].revents & (POLLIN | POLLHUP))) continue;
        const ssize_t got =
            ::read(from_workers_[j].get(), buf.data(), buf.size());
        if (got <= 0) {
          finished[j] = true;
          pfds[j].fd = -1;
          --open;
          continue;
        }
        decoders[j].feed(buf.data(), static_cast<std::size_t>(got));
        while (decoders[j].next(frame)) {
          if (frame.is_fin()) {
            finished[j] = true;
            pfds[j].fd = -1;
            --open;
            break;
          }
          queues[j].push_back(frame.seq);
          max_depth_.store(
              std::max(max_depth_.load(std::memory_order_relaxed),
                       queues[j].size()),
              std::memory_order_relaxed);
        }
      }

      // Release in global sequence order: the expected tuple can only be
      // at the head of one of the per-connection FIFOs.
      bool progressed = true;
      while (progressed) {
        progressed = false;
        for (std::size_t j = 0; j < n; ++j) {
          while (!queues[j].empty() && queues[j].front() == expected) {
            if (queues[j].front() < expected) {
              order_ok_.store(false, std::memory_order_relaxed);
            }
            queues[j].pop_front();
            ++expected;
            emitted_.fetch_add(1, std::memory_order_relaxed);
            progressed = true;
          }
        }
      }
    }

    // Flush anything still queued (all inputs closed; remaining tuples
    // must already be in order across queues).
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (!queues[j].empty() && queues[j].front() == expected) {
          queues[j].pop_front();
          ++expected;
          emitted_.fetch_add(1, std::memory_order_relaxed);
          progressed = true;
        }
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (!queues[j].empty()) order_ok_.store(false, std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    SLB_ERROR() << "merger died: " << e.what();
  }
  done_.store(true, std::memory_order_release);
}

}  // namespace slb::rt
