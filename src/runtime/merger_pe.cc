#include "runtime/merger_pe.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>

#include "transport/framing.h"
#include "util/log.h"
#include "util/time.h"

namespace slb::rt {

MergerPe::MergerPe(std::vector<net::Fd> from_workers, MergerFaultConfig fault,
                   MergerDeliveryConfig delivery, net::Fd ack_out)
    : from_workers_(std::move(from_workers)),
      fault_(fault),
      delivery_(delivery),
      ack_out_(std::move(ack_out)) {
  if (fault_.enabled) listener_ = std::make_unique<net::Listener>();
  thread_ = std::thread([this] { run(); });
}

MergerPe::~MergerPe() {
  if (thread_.joinable()) thread_.join();
}

void MergerPe::join() {
  if (thread_.joinable()) thread_.join();
}

void MergerPe::run() {
  try {
    const std::size_t n = from_workers_.size();
    const bool ft = listener_ != nullptr;
    const bool alo = delivery_.mode == delivery::DeliveryMode::kAtLeastOnce;
    std::vector<net::FrameDecoder> decoders(n);
    std::vector<std::deque<std::uint64_t>> queues(n);
    std::vector<bool> finished(n, false);  // clean FIN received
    std::vector<std::uint8_t> buf(64 * 1024);
    std::uint64_t expected = 0;
    std::size_t open = n;  // plain mode: slots not yet at EOF/FIN
    std::size_t fins = 0;  // fault mode: slots that FINed

    // Reconnect connections accepted but not yet claimed by a hello.
    struct Pending {
      net::Fd fd;
      net::FrameDecoder decoder;
    };
    std::vector<Pending> pending;

    TimeNs last_progress = monotonic_now();
    net::Frame frame;

    // Replays break the "within one connection, arrival order == sequence
    // order" invariant the head-only release scan depends on: a re-sent
    // old sequence can land behind newer sequences already queued on the
    // same stream, where the scan would never see it. Such stragglers are
    // parked here and drained alongside the queue heads (at-least-once
    // only — nothing is ever re-sent otherwise).
    std::set<std::uint64_t> pool;

    // Shed ranges announced by gap frames: first seq -> count. These
    // sequences were dropped at the source and will never arrive; ordered
    // release must skip them (each one counted as a gap) instead of
    // gating on them.
    std::map<std::uint64_t, std::uint64_t> shed;
    const auto note_shed = [&](std::uint64_t first, std::uint64_t count) {
      if (count == 0) return;
      std::uint64_t& existing = shed[first];
      existing = std::max(existing, count);
    };
    // Advances `expected` through any shed ranges it has reached,
    // counting them as gaps; consumed ranges are erased.
    const auto skip_shed = [&]() {
      bool skipped = false;
      for (;;) {
        auto it = shed.upper_bound(expected);
        if (it == shed.begin()) break;
        --it;
        const std::uint64_t end = it->first + it->second;
        if (expected >= end) {
          // Entirely below expected (already skipped via timeout or the
          // final flush): stale, drop it and look at the next range down.
          shed.erase(it);
          continue;
        }
        gaps_.fetch_add(end - expected, std::memory_order_relaxed);
        expected = end;
        shed.erase(it);
        skipped = true;
      }
      return skipped;
    };

    // A head *below* the release cursor cannot be emitted again without
    // breaking strict order; drop it, but account for why it happened.
    // At-least-once: a replay echo — the original raced a crash and won
    // (dup_discard, expected and harmless). Fault mode: a tuple that
    // arrived after its sequence was declared a gap (late_discard — the
    // previously-invisible wedge this counter makes visible). Plain mode
    // declares neither gaps nor replays, so a stale head there is a real
    // order violation.
    const auto discard_stale = [&](std::size_t j) {
      queues[j].pop_front();
      if (alo) {
        dup_discards_.fetch_add(1, std::memory_order_relaxed);
      } else if (ft) {
        late_discards_.fetch_add(1, std::memory_order_relaxed);
      } else {
        order_ok_.store(false, std::memory_order_relaxed);
      }
    };

    // Cumulative-ack pump (at-least-once): tell the splitter the highest
    // contiguously released sequence so it can trim its replay buffers.
    // Non-blocking, drop-tolerant writes — a lost ack only delays the
    // trim until the next one, because each ack carries the full cursor.
    std::uint64_t last_acked = 0;
    std::vector<std::uint8_t> ack_buf;  // unwritten remainder of last ack
    const auto pump_acks = [&](bool force) {
      if (!alo || !ack_out_.valid()) return;
      if (ack_buf.empty()) {
        if (expected == last_acked) return;
        if (!force && expected - last_acked <
                          static_cast<std::uint64_t>(delivery_.ack_every)) {
          return;
        }
        ack_buf = net::ack_bytes(expected);
        last_acked = expected;
      }
      const ssize_t put = ::send(ack_out_.get(), ack_buf.data(),
                                 ack_buf.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
      if (put < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        SLB_ERROR() << "merger: ack channel lost, acks disabled";
        ack_out_.reset();
        ack_buf.clear();
        return;
      }
      ack_buf.erase(ack_buf.begin(), ack_buf.begin() + put);
    };

    // Release in global sequence order: the expected tuple can only be
    // at the head of one of the per-connection FIFOs.
    const auto release = [&] {
      bool progressed = true;
      while (progressed) {
        progressed = skip_shed();
        while (!pool.empty() && *pool.begin() < expected) {
          pool.erase(pool.begin());
          dup_discards_.fetch_add(1, std::memory_order_relaxed);
        }
        while (!pool.empty() && *pool.begin() == expected) {
          pool.erase(pool.begin());
          ++expected;
          emitted_.fetch_add(1, std::memory_order_relaxed);
          progressed = true;
        }
        for (std::size_t j = 0; j < n; ++j) {
          while (!queues[j].empty() && queues[j].front() < expected) {
            discard_stale(j);
          }
          while (!queues[j].empty() && queues[j].front() == expected) {
            queues[j].pop_front();
            ++expected;
            emitted_.fetch_add(1, std::memory_order_relaxed);
            progressed = true;
          }
        }
        if (progressed) last_progress = monotonic_now();
      }
    };

    // Decodes whatever already sits in slot j's decoder; a FIN closes
    // the slot for good (frames after a FIN are dropped).
    const auto drain_decoder = [&](std::size_t j) {
      while (decoders[j].next(frame)) {
        if (frame.is_fin()) {
          finished[j] = true;
          ++fins;
          --open;
          from_workers_[j].reset();
          return;
        }
        if (frame.is_gap()) {
          note_shed(frame.gap_first(), frame.gap_count());
          continue;
        }
        if (alo && !queues[j].empty() && frame.seq < queues[j].back()) {
          // Replay echo behind newer queued sequences: park it in the
          // side pool (an insert collision is a duplicate of a pooled
          // duplicate).
          if (!pool.insert(frame.seq).second) {
            dup_discards_.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        queues[j].push_back(frame.seq);
        max_depth_.store(
            std::max(max_depth_.load(std::memory_order_relaxed),
                     queues[j].size()),
            std::memory_order_relaxed);
      }
      if (decoders[j].corrupt()) {
        // Garbage on the wire: no way to resynchronize a length-prefixed
        // stream. Treat as a lost connection (fault mode may re-admit it
        // through the reconnect port with a fresh decoder).
        SLB_ERROR() << "merger: corrupt stream from slot " << j;
        from_workers_[j].reset();
        if (!ft && !finished[j]) {
          finished[j] = true;
          --open;
        }
      }
    };

    std::vector<pollfd> pfds;
    std::vector<long> tags;  // >= 0: worker slot; -1: listener; else pending
    while (ft ? fins < n : open > 0) {
      if (ft && closing_.load(std::memory_order_acquire)) {
        // Region shutdown: disconnected slots will not reconnect anymore;
        // their streams are complete as far as they will ever be.
        for (std::size_t j = 0; j < n; ++j) {
          if (!finished[j] && !from_workers_[j].valid()) {
            finished[j] = true;
            ++fins;
          }
        }
        if (fins >= n) break;
      }
      pfds.clear();
      tags.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (finished[j] || !from_workers_[j].valid()) continue;
        pfds.push_back(pollfd{from_workers_[j].get(), POLLIN, 0});
        tags.push_back(static_cast<long>(j));
      }
      if (ft) {
        pfds.push_back(pollfd{listener_->fd(), POLLIN, 0});
        tags.push_back(-1);
        for (std::size_t i = 0; i < pending.size(); ++i) {
          pfds.push_back(pollfd{pending[i].fd.get(), POLLIN, 0});
          tags.push_back(-2 - static_cast<long>(i));
        }
      }
      const int rc =
          ::poll(pfds.data(), pfds.size(), (ft || alo) ? 100 : 1000);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      // Idle poll: flush ack progress below the ack_every threshold so a
      // quiescent splitter (blocked on a full replay buffer) still hears
      // about every release eventually.
      if (rc == 0) pump_acks(/*force=*/true);
      std::vector<Pending> arrived;
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (!(pfds[i].revents & (POLLIN | POLLHUP))) continue;
        const long tag = tags[i];
        if (tag == -1) {
          // A restarted worker (or the region, closing a dead worker's
          // stream) dialed in; its first frame must be a hello.
          Pending p;
          p.fd = listener_->accept_one(0);
          arrived.push_back(std::move(p));
          continue;
        }
        if (tag < -1) {
          Pending& p = pending[static_cast<std::size_t>(-2 - tag)];
          const ssize_t got = ::read(p.fd.get(), buf.data(), buf.size());
          if (got <= 0) {
            p.fd.reset();  // swept below
            continue;
          }
          p.decoder.feed(buf.data(), static_cast<std::size_t>(got));
          continue;
        }
        const auto j = static_cast<std::size_t>(tag);
        const ssize_t got =
            ::read(from_workers_[j].get(), buf.data(), buf.size());
        if (got <= 0) {
          // EOF without FIN. Plain mode: the run is over for this slot.
          // Fault mode: a crash — the slot stays logically open and may
          // be re-admitted through the reconnect port.
          from_workers_[j].reset();
          if (!ft) {
            finished[j] = true;
            --open;
          }
          continue;
        }
        decoders[j].feed(buf.data(), static_cast<std::size_t>(got));
        drain_decoder(j);
      }

      // Claim pending connections whose hello has arrived.
      for (Pending& p : pending) {
        if (!p.fd.valid()) continue;
        if (!p.decoder.next(frame)) continue;
        if (!frame.is_hello()) {
          SLB_ERROR() << "merger: reconnect without hello, dropping";
          p.fd.reset();
          continue;
        }
        const auto w = static_cast<std::size_t>(frame.hello_worker());
        if (w >= n || finished[w]) {
          SLB_ERROR() << "merger: hello for invalid slot " << w;
          p.fd.reset();
          continue;
        }
        from_workers_[w] = std::move(p.fd);
        decoders[w] = std::move(p.decoder);
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        drain_decoder(w);  // the hello may have trailed data (or a FIN)
      }
      pending.erase(std::remove_if(pending.begin(), pending.end(),
                                   [](const Pending& p) {
                                     return !p.fd.valid();
                                   }),
                    pending.end());
      for (Pending& p : arrived) pending.push_back(std::move(p));

      release();
      pump_acks(/*force=*/false);

      if (ft && !alo) {
        // Gap detection: tuples are queued past the expected sequence and
        // nothing has been released for a whole timeout — the sequences
        // we are gating on died with a worker. Skip to the next queued
        // sequence; every skipped number is a gap.
        bool any_queued = false;
        std::uint64_t min_head = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t j = 0; j < n; ++j) {
          if (queues[j].empty()) continue;
          any_queued = true;
          min_head = std::min(min_head, queues[j].front());
        }
        if (any_queued &&
            monotonic_now() - last_progress >= fault_.gap_timeout) {
          gaps_.fetch_add(min_head - expected, std::memory_order_relaxed);
          expected = min_head;
          last_progress = monotonic_now();
          release();
        }
      }
    }

    // Flush anything still queued (all inputs done). Plain mode: the
    // remainder must already be in order across queues — modulo declared
    // shed ranges — anything else is an order violation. Fault mode:
    // trailing gaps are skipped like any other. Pooled replays join the
    // scan as one extra (sorted) queue.
    if (!pool.empty()) {
      queues.emplace_back(pool.begin(), pool.end());
      pool.clear();
    }
    for (;;) {
      skip_shed();
      std::size_t best = queues.size();
      for (std::size_t j = 0; j < queues.size(); ++j) {
        if (queues[j].empty()) continue;
        if (best == queues.size() || queues[j].front() < queues[best].front()) {
          best = j;
        }
      }
      if (best == queues.size()) break;
      const std::uint64_t head = queues[best].front();
      if (head < expected) {
        discard_stale(best);
        continue;
      }
      queues[best].pop_front();
      if (head > expected) {
        if (ft) {
          gaps_.fetch_add(head - expected, std::memory_order_relaxed);
        } else {
          order_ok_.store(false, std::memory_order_relaxed);
        }
        expected = head;
      }
      ++expected;
      emitted_.fetch_add(1, std::memory_order_relaxed);
    }
    // Trailing sheds (the very last sequences of the run were dropped).
    skip_shed();
    // Final cumulative ack — best-effort; the splitter may already be
    // tearing down, and nothing downstream depends on it landing.
    pump_acks(/*force=*/true);
  } catch (const std::exception& e) {
    SLB_ERROR() << "merger died: " << e.what();
  }
  done_.store(true, std::memory_order_release);
}

}  // namespace slb::rt
