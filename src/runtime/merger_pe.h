// The in-order merger PE of the threaded runtime.
//
// One thread polls all worker connections, reads *eagerly* into unbounded
// per-connection reorder queues (the paper's implementation blocks at the
// splitter, not at the merger — Section 4.3), and releases tuples in
// global sequence order. Only counts and timestamps leave the merger; the
// benchmark sink is a counter.
//
// Fault tolerance (optional, see DESIGN.md "Failure model"): when
// constructed with MergerFaultConfig.enabled the merger also
//   * listens on an ephemeral reconnect port — a restarted worker (or the
//     region closing a dead worker's stream) connects there and announces
//     itself with a hello frame carrying its worker id;
//   * treats EOF-without-FIN as a crash, not completion: the slot may be
//     re-admitted later, and the run only ends once every slot has FINed;
//   * skips sequence numbers that stop arriving: if tuples are queued but
//     the expected sequence has not shown up for `gap_timeout`, the tuples
//     it was waiting on died with a worker — release resumes at the next
//     queued sequence and every skipped number is counted as a gap.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "delivery/delivery.h"
#include "transport/socket.h"
#include "util/time.h"

namespace slb::rt {

struct MergerFaultConfig {
  bool enabled = false;
  /// How long the expected sequence may fail to arrive — while later
  /// tuples sit queued — before it is declared dead and skipped. Must
  /// comfortably exceed the worst-case reorder wait of a healthy run.
  /// Ignored under at-least-once delivery: a missing sequence is
  /// replayed by the splitter, so skipping it would manufacture a gap
  /// the replay is about to fill.
  DurationNs gap_timeout = millis(500);
};

struct MergerDeliveryConfig {
  delivery::DeliveryMode mode = delivery::DeliveryMode::kGapSkip;
  /// Piggyback a cumulative ack after this many releases; smaller
  /// progress is flushed whenever the poll loop goes idle.
  int ack_every = 64;
};

class MergerPe {
 public:
  /// Takes ownership of all worker connections; starts immediately.
  /// `ack_out` (at-least-once only) is the merger->splitter reverse
  /// connection cumulative acks ride on; writes are non-blocking and
  /// drop-on-full — the cumulative encoding makes lost acks harmless.
  explicit MergerPe(std::vector<net::Fd> from_workers,
                    MergerFaultConfig fault = {},
                    MergerDeliveryConfig delivery = {},
                    net::Fd ack_out = {});

  ~MergerPe();

  MergerPe(const MergerPe&) = delete;
  MergerPe& operator=(const MergerPe&) = delete;

  /// Tuples released downstream so far (monotone, thread-safe).
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

  /// Largest reorder-queue depth observed (diagnostic).
  std::size_t max_queue_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

  /// True once every worker sent FIN and all queues drained.
  bool done() const { return done_.load(std::memory_order_acquire); }

  /// Fault tolerance only: tells the merger the region is shutting down,
  /// so crashed slots that never reconnected are final — treat their
  /// EOF-without-FIN as completion instead of waiting for a re-admission
  /// that will never come. Call after FINing every live worker.
  void begin_shutdown() {
    closing_.store(true, std::memory_order_release);
  }

  /// Blocks until the merger thread exits.
  void join();

  /// Verifies every released tuple was in strict sequence order (gaps
  /// skipped over dead tuples keep the sequence monotone and do not
  /// violate this).
  bool order_ok() const { return order_ok_.load(std::memory_order_relaxed); }

  /// Sequence numbers skipped because their tuples died with a worker.
  std::uint64_t gaps() const { return gaps_.load(std::memory_order_relaxed); }

  /// Replayed duplicates discarded below the release cursor
  /// (at-least-once only; see DESIGN.md §10).
  std::uint64_t dup_discards() const {
    return dup_discards_.load(std::memory_order_relaxed);
  }

  /// Tuples that arrived after their sequence was declared a gap
  /// (GapSkip fault mode: the gap skip fired, then the tuple showed up).
  std::uint64_t late_discards() const {
    return late_discards_.load(std::memory_order_relaxed);
  }

  /// Hello-frame re-admissions accepted on the reconnect port.
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

  /// Port restarted workers connect to (fault tolerance only, else 0).
  std::uint16_t reconnect_port() const {
    return listener_ ? listener_->port() : 0;
  }

 private:
  void run();

  std::vector<net::Fd> from_workers_;
  MergerFaultConfig fault_;
  MergerDeliveryConfig delivery_;
  net::Fd ack_out_;
  std::unique_ptr<net::Listener> listener_;
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::size_t> max_depth_{0};
  std::atomic<std::uint64_t> gaps_{0};
  std::atomic<std::uint64_t> dup_discards_{0};
  std::atomic<std::uint64_t> late_discards_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> closing_{false};
  std::atomic<bool> order_ok_{true};
  std::thread thread_;
};

}  // namespace slb::rt
