// The in-order merger PE of the threaded runtime.
//
// One thread polls all worker connections, reads *eagerly* into unbounded
// per-connection reorder queues (the paper's implementation blocks at the
// splitter, not at the merger — Section 4.3), and releases tuples in
// global sequence order. Only counts and timestamps leave the merger; the
// benchmark sink is a counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "transport/socket.h"

namespace slb::rt {

class MergerPe {
 public:
  /// Takes ownership of all worker connections; starts immediately.
  explicit MergerPe(std::vector<net::Fd> from_workers);

  ~MergerPe();

  MergerPe(const MergerPe&) = delete;
  MergerPe& operator=(const MergerPe&) = delete;

  /// Tuples released downstream so far (monotone, thread-safe).
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

  /// Largest reorder-queue depth observed (diagnostic).
  std::size_t max_queue_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

  /// True once every worker sent FIN and all queues drained.
  bool done() const { return done_.load(std::memory_order_acquire); }

  /// Blocks until the merger thread exits.
  void join();

  /// Verifies every released tuple was in strict sequence order.
  bool order_ok() const { return order_ok_.load(std::memory_order_relaxed); }

 private:
  void run();

  std::vector<net::Fd> from_workers_;
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::size_t> max_depth_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> order_ok_{true};
  std::thread thread_;
};

}  // namespace slb::rt
