// The synthetic tuple workload of the paper's evaluation: a chain of
// dependent integer multiplies ("base cost of 1,000 integer multiplies").
// The serial dependency prevents instruction-level parallelism from
// collapsing the cost, so n multiplies take ~n multiply latencies.
#pragma once

#include <cstdint>

namespace slb::rt {

/// Performs `n` dependent integer multiply-adds starting from `seed` and
/// returns the result (callers must consume it so the work is not
/// dead-code-eliminated).
inline std::uint64_t spin_multiplies(std::uint64_t seed, long n) {
  std::uint64_t x = seed | 1;
  for (long i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return x;
}

}  // namespace slb::rt
