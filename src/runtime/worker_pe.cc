#include "runtime/worker_pe.h"

#include <errno.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include "util/time.h"

#include "runtime/work.h"
#include "transport/framing.h"
#include "util/log.h"

namespace slb::rt {

WorkerPe::WorkerPe(int id, net::Fd from_splitter, net::Fd to_merger,
                   long multiplies, WorkMode mode,
                   obs::Histogram* service_ns)
    : id_(id),
      from_splitter_(std::move(from_splitter)),
      to_merger_(std::move(to_merger)),
      multiplies_(multiplies),
      mode_(mode),
      service_ns_(service_ns) {
  thread_ = std::thread([this] { run(); });
}

WorkerPe::~WorkerPe() {
  if (thread_.joinable()) thread_.join();
}

void WorkerPe::join() {
  if (thread_.joinable()) thread_.join();
}

void WorkerPe::kill() {
  killed_.store(true, std::memory_order_relaxed);
  // shutdown (not close) wakes the thread out of a blocking read/write
  // while keeping the fds owned until the destructor — no fd reuse races.
  ::shutdown(from_splitter_.get(), SHUT_RDWR);
  ::shutdown(to_merger_.get(), SHUT_RDWR);
}

void WorkerPe::run() {
  try {
    net::FrameDecoder decoder;
    std::vector<std::uint8_t> buf(64 * 1024);
    std::vector<std::uint8_t> out;
    net::Frame frame;
    volatile std::uint64_t sink = 0;

    for (;;) {
      while (!decoder.next(frame)) {
        if (decoder.corrupt()) return;  // garbage stream; drop the link
        const ssize_t n =
            ::read(from_splitter_.get(), buf.data(), buf.size());
        if (n <= 0) return;  // splitter hung up
        decoder.feed(buf.data(), static_cast<std::size_t>(n));
      }
      if (frame.is_fin()) {
        const std::vector<std::uint8_t> fin = net::fin_bytes();
        net::write_all(to_merger_.get(), fin.data(), fin.size());
        return;
      }
      if (frame.seq == net::kGapSeq) {
        // Shed announcement from the splitter: forward to the merger with
        // zero work — it carries accounting, not data.
        out.clear();
        net::encode_frame(frame, out);
        net::write_all(to_merger_.get(), out.data(), out.size());
        continue;
      }

      const long factor =
          load_times_1000_.load(std::memory_order_relaxed);
      const long work = fast_drain_.load(std::memory_order_relaxed)
                            ? 0
                            : multiplies_ * factor / 1000;
      const TimeNs service_start =
          service_ns_ != nullptr && work > 0 ? monotonic_now() : 0;
      if (work == 0) {
        // Shutdown drain: forward without processing.
      } else if (mode_ == WorkMode::kSpin) {
        sink = spin_multiplies(frame.seq + sink, work);
      } else {
        // 1 ns of service per multiply, waited out against an absolute
        // monotonic deadline: clock_nanosleep for the bulk (so no CPU is
        // burned and CPU-quota throttling cannot distort the service
        // time), then a short yield tail for sub-timer-granularity
        // precision.
        const TimeNs deadline = monotonic_now() + work;
        timespec ts{};
        ts.tv_sec = deadline / kNanosPerSec;
        ts.tv_nsec = deadline % kNanosPerSec;
        while (::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts,
                                 nullptr) == EINTR) {
        }
        while (monotonic_now() < deadline) {
          std::this_thread::yield();
        }
      }
      if (service_ns_ != nullptr && work > 0) {
        service_ns_->record(
            static_cast<std::uint64_t>(monotonic_now() - service_start));
      }

      out.clear();
      net::encode_frame(frame, out);
      net::write_all(to_merger_.get(), out.data(), out.size());
      processed_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const net::ConnectionLost&) {
    // Expected after kill(); a spontaneous peer loss is the same story.
    if (!killed_.load(std::memory_order_relaxed)) {
      SLB_ERROR() << "worker " << id_ << " lost its merger connection";
    }
  } catch (const std::exception& e) {
    SLB_ERROR() << "worker " << id_ << " died: " << e.what();
  }
}

}  // namespace slb::rt
