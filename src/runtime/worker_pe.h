// A worker PE of the threaded runtime: one thread, one TCP connection from
// the splitter, one TCP connection to the merger. Stateless: every tuple
// costs `multiplies x load multiplier` dependent integer multiplies, then
// is forwarded (same seq) to the merger. The load multiplier is atomic so
// experiments can impose and remove "exogenous load" while running.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "obs/metrics.h"
#include "transport/socket.h"

namespace slb::rt {

/// How a worker "processes" a tuple.
///  * kSpin  — dependent integer multiplies, exactly the paper's workload.
///    CPU-bound: on a machine with fewer cores than PEs, scheduling noise
///    makes effective capacities non-stationary.
///  * kTimed — wait out the equivalent service time (1 ns per multiply)
///    against an absolute deadline, yielding the CPU while waiting.
///    Capacities stay stable on oversubscribed dev machines; used by the
///    examples.
enum class WorkMode { kSpin, kTimed };

class WorkerPe {
 public:
  /// Takes ownership of both sockets; starts the thread immediately.
  /// `service_ns` (optional) is a registry histogram recording each
  /// processed tuple's measured service time; it must outlive the PE and
  /// is a ctor parameter because the thread starts here (DESIGN.md §8).
  WorkerPe(int id, net::Fd from_splitter, net::Fd to_merger,
           long multiplies, WorkMode mode = WorkMode::kSpin,
           obs::Histogram* service_ns = nullptr);

  ~WorkerPe();

  WorkerPe(const WorkerPe&) = delete;
  WorkerPe& operator=(const WorkerPe&) = delete;

  /// Sets the external-load multiplier (>= 1). Takes effect on the next
  /// tuple.
  void set_load_multiplier(double m) {
    load_times_1000_.store(static_cast<long>(m * 1000.0),
                           std::memory_order_relaxed);
  }

  /// Tells the worker to forward remaining tuples without doing their
  /// work — used at shutdown so a run does not wait for every buffered
  /// tuple to be processed at full cost. Sequence order is unaffected.
  void fast_drain() { fast_drain_.store(true, std::memory_order_relaxed); }

  /// Fault injection: abrupt crash. Both sockets are shut down, so the
  /// splitter sees a broken pipe on its next send, the merger sees EOF
  /// without FIN, and everything buffered in the kernel or in service is
  /// lost — exactly the failure mode of a killed PE process. The thread
  /// exits; the object stays joinable.
  void kill();

  std::uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }

  int id() const { return id_; }

  /// Blocks until the worker thread exits (after receiving FIN).
  void join();

 private:
  void run();

  int id_;
  net::Fd from_splitter_;
  net::Fd to_merger_;
  long multiplies_;
  WorkMode mode_;
  std::atomic<long> load_times_1000_{1000};
  std::atomic<bool> fast_drain_{false};
  std::atomic<bool> killed_{false};
  std::atomic<std::uint64_t> processed_{0};
  obs::Histogram* service_ns_ = nullptr;
  std::thread thread_;
};

}  // namespace slb::rt
