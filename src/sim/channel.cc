#include "sim/channel.h"

#include <algorithm>
#include <cassert>

namespace slb::sim {

Channel::Channel(Simulator* sim, int id, Config config)
    : sim_(sim),
      id_(id),
      config_(config),
      send_q_(config.send_capacity),
      recv_q_(config.recv_capacity) {
  assert(sim != nullptr);
}

void Channel::push_send(Tuple t) {
  assert(up_);  // the splitter quarantines a failed channel before routing
  send_q_.push(t);
  pump();
}

Tuple Channel::pop_recv() {
  Tuple t = recv_q_.pop();
  pump();  // a receive slot just freed; more data may flow
  return t;
}

void Channel::fail() {
  if (!up_) return;
  up_ = false;
  ++epoch_;  // in-flight deliveries from this life report as lost
  in_flight_ = 0;
  while (!send_q_.empty()) {
    const Tuple t = send_q_.pop();
    if (on_lost_) on_lost_(t);
  }
  while (!recv_q_.empty()) {
    const Tuple t = recv_q_.pop();
    if (on_lost_) on_lost_(t);
  }
}

void Channel::restore() {
  if (up_) return;
  up_ = true;
  assert(send_q_.empty() && recv_q_.empty());
  // Nothing buffered, so nothing to pump; the splitter resumes routing
  // here once the policy re-admits the connection.
}

void Channel::stall(DurationNs duration) {
  assert(duration >= 0);
  stall_until_ = std::max(stall_until_, sim_->now() + duration);
  if (stalled_) return;  // the pending resume event re-checks the deadline
  stalled_ = true;
  sim_->schedule_at(stall_until_, [this] { resume_from_stall(); });
}

void Channel::resume_from_stall() {
  if (sim_->now() < stall_until_) {
    // A later stall extended the pause while we slept.
    sim_->schedule_at(stall_until_, [this] { resume_from_stall(); });
    return;
  }
  stalled_ = false;
  pump();
}

void Channel::pump() {
  if (!up_ || stalled_) return;
  bool freed_send_space = false;
  while (!send_q_.empty() &&
         recv_q_.size() + in_flight_ < recv_q_.capacity()) {
    const Tuple t = send_q_.pop();
    freed_send_space = true;
    ++in_flight_;
    sim_->schedule_after(config_.latency, [this, t, epoch = epoch_] {
      if (epoch != epoch_) {
        // The connection died while this tuple was on the wire.
        if (on_lost_) on_lost_(t);
        return;
      }
      assert(in_flight_ > 0);
      --in_flight_;
      recv_q_.push(t);
      if (on_recv_ready_) on_recv_ready_();
    });
  }
  if (freed_send_space && on_send_space_) on_send_space_();
}

}  // namespace slb::sim
