#include "sim/channel.h"

#include <cassert>

namespace slb::sim {

Channel::Channel(Simulator* sim, int id, Config config)
    : sim_(sim),
      id_(id),
      config_(config),
      send_q_(config.send_capacity),
      recv_q_(config.recv_capacity) {
  assert(sim != nullptr);
}

void Channel::push_send(Tuple t) {
  send_q_.push(t);
  pump();
}

Tuple Channel::pop_recv() {
  Tuple t = recv_q_.pop();
  pump();  // a receive slot just freed; more data may flow
  return t;
}

void Channel::pump() {
  bool freed_send_space = false;
  while (!send_q_.empty() &&
         recv_q_.size() + in_flight_ < recv_q_.capacity()) {
    const Tuple t = send_q_.pop();
    freed_send_space = true;
    ++in_flight_;
    sim_->schedule_after(config_.latency, [this, t] {
      assert(in_flight_ > 0);
      --in_flight_;
      recv_q_.push(t);
      if (on_recv_ready_) on_recv_ready_();
    });
  }
  if (freed_send_space && on_send_space_) on_send_space_();
}

}  // namespace slb::sim
