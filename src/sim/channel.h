// A simulated TCP connection from the splitter to one worker PE.
//
// Two bounded buffers model the kernel socket buffers on either end of a
// real TCP connection (the paper, Section 4.4, attributes the lateness of
// the blocking signal to exactly these "numerous system buffers"):
//
//   splitter --push_send--> [send buffer] --latency--> [recv buffer] --> worker
//
// A tuple leaves the send buffer only when the receive side has room
// (TCP flow control); while in transit it occupies a reserved receive
// slot. The splitter blocks when the send buffer is full — and the time it
// spends blocked is the paper's load-balancing signal.
#pragma once

#include <functional>

#include "sim/event.h"
#include "sim/queues.h"
#include "sim/tuple.h"
#include "util/time.h"

namespace slb::sim {

class Channel {
 public:
  struct Config {
    std::size_t send_capacity = 32;
    std::size_t recv_capacity = 32;
    DurationNs latency = 2'000;  // 2 us: a fast datacenter interconnect
  };

  Channel(Simulator* sim, int id, Config config);

  /// Wiring: invoked when the send buffer may have gained space (the
  /// splitter's wake-up) and when the receive buffer gained a tuple (the
  /// worker's wake-up). Both are called from within simulator events.
  void set_on_send_space(std::function<void()> fn) {
    on_send_space_ = std::move(fn);
  }
  void set_on_recv_ready(std::function<void()> fn) {
    on_recv_ready_ = std::move(fn);
  }

  int id() const { return id_; }
  bool send_full() const { return send_q_.full(); }
  bool recv_empty() const { return recv_q_.empty(); }
  std::size_t send_size() const { return send_q_.size(); }
  std::size_t recv_size() const { return recv_q_.size(); }
  std::size_t in_flight() const { return in_flight_; }

  /// Total tuples queued anywhere inside the connection.
  std::size_t occupancy() const {
    return send_q_.size() + in_flight_ + recv_q_.size();
  }

  /// Splitter pushes one tuple; caller must have checked !send_full().
  void push_send(Tuple t);

  /// Worker takes the next delivered tuple; caller must have checked
  /// !recv_empty(). Freeing the receive slot may resume transfers.
  Tuple pop_recv();

 private:
  /// Starts every transfer currently permitted by flow control.
  void pump();

  Simulator* sim_;
  int id_;
  Config config_;
  BoundedFifo<Tuple> send_q_;
  BoundedFifo<Tuple> recv_q_;
  std::size_t in_flight_ = 0;
  std::function<void()> on_send_space_;
  std::function<void()> on_recv_ready_;
};

}  // namespace slb::sim
