// A simulated TCP connection from the splitter to one worker PE.
//
// Two bounded buffers model the kernel socket buffers on either end of a
// real TCP connection (the paper, Section 4.4, attributes the lateness of
// the blocking signal to exactly these "numerous system buffers"):
//
//   splitter --push_send--> [send buffer] --latency--> [recv buffer] --> worker
//
// A tuple leaves the send buffer only when the receive side has room
// (TCP flow control); while in transit it occupies a reserved receive
// slot. The splitter blocks when the send buffer is full — and the time it
// spends blocked is the paper's load-balancing signal.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event.h"
#include "sim/queues.h"
#include "sim/tuple.h"
#include "util/time.h"

namespace slb::sim {

class Channel {
 public:
  struct Config {
    std::size_t send_capacity = 32;
    std::size_t recv_capacity = 32;
    DurationNs latency = 2'000;  // 2 us: a fast datacenter interconnect
  };

  Channel(Simulator* sim, int id, Config config);

  /// Wiring: invoked when the send buffer may have gained space (the
  /// splitter's wake-up) and when the receive buffer gained a tuple (the
  /// worker's wake-up). Both are called from within simulator events.
  void set_on_send_space(std::function<void()> fn) {
    on_send_space_ = std::move(fn);
  }
  void set_on_recv_ready(std::function<void()> fn) {
    on_recv_ready_ = std::move(fn);
  }

  /// Invoked once per tuple the connection loses to a failure (fail()
  /// discards buffered tuples; in-flight tuples are reported when their
  /// delivery event fires into a dead connection).
  void set_on_lost(std::function<void(const Tuple&)> fn) {
    on_lost_ = std::move(fn);
  }

  int id() const { return id_; }
  bool up() const { return up_; }
  bool stalled() const { return stalled_; }
  bool send_full() const { return send_q_.full(); }
  bool recv_empty() const { return recv_q_.empty(); }
  std::size_t send_size() const { return send_q_.size(); }
  std::size_t recv_size() const { return recv_q_.size(); }
  std::size_t in_flight() const { return in_flight_; }

  /// Total tuples queued anywhere inside the connection.
  std::size_t occupancy() const {
    return send_q_.size() + in_flight_ + recv_q_.size();
  }

  /// Splitter pushes one tuple; caller must have checked !send_full().
  void push_send(Tuple t);

  /// Worker takes the next delivered tuple; caller must have checked
  /// !recv_empty(). Freeing the receive slot may resume transfers.
  Tuple pop_recv();

  /// Connection death (worker crash): every buffered tuple — send queue,
  /// in flight, receive queue — is lost and reported via on_lost. The
  /// channel accepts no traffic until restore().
  void fail();

  /// Fresh connection to a restarted worker: empty buffers, up again.
  void restore();

  /// Transient delivery pause for `duration`; nothing is lost. Stalls
  /// overlap by extending the pause to the latest end time.
  void stall(DurationNs duration);

 private:
  /// Starts every transfer currently permitted by flow control.
  void pump();
  void resume_from_stall();

  Simulator* sim_;
  int id_;
  Config config_;
  BoundedFifo<Tuple> send_q_;
  BoundedFifo<Tuple> recv_q_;
  std::size_t in_flight_ = 0;
  std::function<void()> on_send_space_;
  std::function<void()> on_recv_ready_;
  std::function<void(const Tuple&)> on_lost_;
  bool up_ = true;
  bool stalled_ = false;
  TimeNs stall_until_ = 0;
  /// Bumped by fail(): delivery events from a previous life discard
  /// their tuple (reported lost) instead of touching the new buffers.
  std::uint64_t epoch_ = 0;
};

}  // namespace slb::sim
