#include "sim/chaos.h"

#include "util/rng.h"

namespace slb::sim {

ChaosPlan make_chaos_plan(std::uint64_t seed, DurationNs duration) {
  Rng rng(seed);
  ChaosPlan plan;
  const int workers = static_cast<int>(2 + rng.below(4));  // 2..5
  plan.region.workers = workers;
  plan.region.base_cost = micros(static_cast<long>(4 + rng.below(8)));
  plan.region.send_overhead = 500;
  plan.region.sample_period = millis(5);
  plan.region.admission_control = true;
  plan.region.watchdog = true;
  plan.region.watchdog_periods = 6;

  if (rng.chance(0.5)) {
    // Open-loop source offered at 1.5–3x of nominal capacity, with
    // shedding armed. (Nominal capacity ignores load bursts, so bursts
    // push the region even deeper into infeasibility.)
    const double over = rng.uniform(1.5, 3.0);
    plan.region.source_interval = static_cast<DurationNs>(
        static_cast<double>(plan.region.base_cost) / (workers * over));
    const std::uint64_t high = 64 + rng.below(192);
    plan.region.shed_high_watermark = high;
    plan.region.shed_low_watermark = high / 2;
  }

  // Overload bursts: all workers slowed together so no reallocation can
  // restore feasibility — the saturation detector's target regime.
  plan.load = LoadProfile(workers);
  const int bursts = static_cast<int>(1 + rng.below(3));
  for (int b = 0; b < bursts; ++b) {
    const TimeNs at = static_cast<TimeNs>(rng.below(
        static_cast<std::uint64_t>(duration * 3 / 4)));
    const DurationNs len =
        millis(static_cast<long>(20 + rng.below(60)));
    const double mult = rng.uniform(2.0, 8.0);
    for (int j = 0; j < workers; ++j) {
      plan.load.add_step(j, at, mult);
      plan.load.add_step(j, at + len, 1.0);
    }
  }

  // Fault schedule: crashes with optional recovery (at most workers-1
  // permanent deaths so the run can always make progress), plus stalls.
  for (int j = 0; j < workers; ++j) {
    if (rng.chance(0.4)) {
      const TimeNs at = static_cast<TimeNs>(
          millis(10) + rng.below(static_cast<std::uint64_t>(duration / 2)));
      plan.faults.push_back({FaultKind::kWorkerCrash, j, at, 0});
      if (rng.chance(0.7) || plan.permanently_dead + 1 >= workers) {
        const TimeNs back = at + millis(static_cast<long>(
                                     20 + rng.below(80)));
        plan.faults.push_back({FaultKind::kWorkerRecover, j, back, 0});
      } else {
        ++plan.permanently_dead;
      }
    } else if (rng.chance(0.3)) {
      const TimeNs at = static_cast<TimeNs>(
          millis(5) + rng.below(static_cast<std::uint64_t>(duration / 2)));
      plan.faults.push_back({FaultKind::kChannelStall, j, at,
                             millis(static_cast<long>(5 + rng.below(20)))});
    }
  }
  return plan;
}

}  // namespace slb::sim
