// Seeded chaos-plan generation shared by tools/chaos_soak and the
// randomized invariant tests: one seed expands deterministically (via the
// repo's xoshiro256++) into a region shape, an external-load schedule with
// overload bursts, a crash/recover/stall schedule, and sometimes an
// open-loop source with shedding watermarks. Extracted from chaos_soak so
// ctest can replay the exact same plan space without forking the binary.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fault.h"
#include "sim/load_profile.h"
#include "sim/region.h"
#include "util/time.h"

namespace slb::sim {

struct ChaosPlan {
  RegionConfig region;
  LoadProfile load;
  std::vector<FaultEvent> faults;
  /// Workers crashed without a scheduled recovery (always < workers, so
  /// the run can make progress).
  int permanently_dead = 0;
};

/// Expands `seed` into a full chaos plan for a run of `duration`. Pure:
/// the same (seed, duration) always yields the same plan, which is what
/// makes soak failures replayable and the golden/conservation tests
/// deterministic.
ChaosPlan make_chaos_plan(std::uint64_t seed, DurationNs duration);

}  // namespace slb::sim
