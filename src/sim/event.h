// Discrete-event simulation engine.
//
// The simulator substitutes for the paper's physical testbed: virtual time
// advances event-to-event, so a "600 second" experiment completes in
// milliseconds-to-seconds of wall clock while preserving every queueing
// phenomenon the paper relies on (back pressure, drafting, rare blocking).
//
// Determinism: events fire in (time, insertion-sequence) order, and no
// entity reads a wall clock, so identical configurations replay
// identically.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/time.h"

namespace slb::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  /// Current virtual time.
  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t >= now()`.
  void schedule_at(TimeNs t, EventFn fn) {
    assert(t >= now_);
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a non-negative delay.
  void schedule_after(DurationNs delay, EventFn fn) {
    assert(delay >= 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs the next event. Returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // priority_queue::top is const; the const_cast move is safe because we
    // pop immediately and never touch the moved-from function.
    Event& top = const_cast<Event&>(queue_.top());
    const TimeNs t = top.time;
    EventFn fn = std::move(top.fn);
    queue_.pop();
    now_ = t;
    ++events_processed_;
    fn();
    return true;
  }

  /// Runs events until virtual time would pass `deadline` (events at
  /// exactly `deadline` are executed).
  void run_until(TimeNs deadline) {
    while (!queue_.empty() && queue_.top().time <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  /// Runs until the event queue drains completely.
  void run_until_idle() {
    while (step()) {
    }
  }

  /// Runs until `stop()` is called from within an event, the deadline
  /// passes, or the queue drains.
  void run_while(TimeNs deadline) {
    stop_requested_ = false;
    while (!stop_requested_ && !queue_.empty() &&
           queue_.top().time <= deadline) {
      step();
    }
    if (!stop_requested_ && now_ < deadline) now_ = deadline;
  }

  /// Requests run_while to return after the current event.
  void stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  std::uint64_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    EventFn fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace slb::sim
