// Fault injection for simulated regions.
//
// The paper's mechanism assumes every splitter->worker connection stays
// alive for the whole run; real deployments lose workers. These events
// let deterministic experiments kill and revive workers (and stall
// channels) mid-run, exercising the controller's mark_down/mark_up path
// and the merger's sequence-gap tolerance without any wall-clock
// dependence: identical seeds + identical fault schedules replay
// identically.
#pragma once

#include "util/time.h"

namespace slb::sim {

enum class FaultKind {
  /// Worker process dies: its in-service tuple, held result, and every
  /// tuple buffered anywhere inside its channel are lost (they were in
  /// the dead PE's kernel buffers). The channel goes down with it.
  kWorkerCrash,
  /// A restarted worker comes back on a fresh connection with empty
  /// buffers and no memory of its past.
  kWorkerRecover,
  /// Transient network stall: the channel stops delivering for
  /// `duration` but loses nothing — models a pause, not a death.
  kChannelStall,
};

struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerCrash;
  int worker = 0;
  /// Absolute virtual time at which the fault fires.
  TimeNs at = 0;
  /// kChannelStall only: how long delivery is suspended.
  DurationNs duration = 0;
};

}  // namespace slb::sim
