#include "sim/harness.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace slb::sim {

DurationNs Scale::tuple_cost(long multiplies) const {
  assert(multiplies > 0);
  return static_cast<DurationNs>(
      std::llround(static_cast<double>(multiplies) * multiply_ns));
}

double Scale::to_paper_seconds(TimeNs t) const {
  return static_cast<double>(t) / static_cast<double>(paper_second);
}

TimeNs Scale::from_paper_seconds(double s) const {
  return static_cast<TimeNs>(
      std::llround(s * static_cast<double>(paper_second)));
}

std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin: return "RR";
    case PolicyKind::kReroute: return "RR-reroute";
    case PolicyKind::kLbStatic: return "LB-static";
    case PolicyKind::kLbAdaptive: return "LB-adaptive";
    case PolicyKind::kOracle: return "Oracle*";
  }
  return "?";
}

LoadProfile build_load_profile(const ExperimentSpec& spec) {
  LoadProfile profile(spec.workers);
  for (const LoadClass& cls : spec.loads) {
    for (int w : cls.workers) {
      assert(w >= 0 && w < spec.workers);
      if (cls.until_work_fraction >= 0.0 || cls.until_paper_s < 0.0) {
        // Work-triggered lifting happens at runtime (run_fixed_work);
        // here the load simply starts at t=0.
        profile.add_step(w, 0, cls.multiplier);
      } else {
        profile.add_load_until(
            w, cls.multiplier,
            spec.scale.from_paper_seconds(cls.until_paper_s));
      }
    }
  }
  return profile;
}

namespace {

/// True when any load class lifts on a work threshold.
bool has_work_based_loads(const ExperimentSpec& spec) {
  for (const LoadClass& cls : spec.loads) {
    if (cls.until_work_fraction >= 0.0) return true;
  }
  return false;
}

/// The shared work fraction of all work-based classes (they must agree).
double work_fraction(const ExperimentSpec& spec) {
  double fraction = -1.0;
  for (const LoadClass& cls : spec.loads) {
    if (cls.until_work_fraction < 0.0) continue;
    assert(fraction < 0.0 || fraction == cls.until_work_fraction);
    fraction = cls.until_work_fraction;
  }
  return fraction;
}

/// Per-worker capacity (tuples per virtual second) with every liftable
/// (work-based) load removed: the post-change phase of the experiment.
double lifted_capacity(const ExperimentSpec& spec, int worker) {
  double multiplier = 1.0;
  for (const LoadClass& cls : spec.loads) {
    if (cls.until_work_fraction >= 0.0) continue;  // lifted
    for (int w : cls.workers) {
      if (w != worker) continue;
      if (cls.until_paper_s < 0.0) multiplier = cls.multiplier;
    }
  }
  const double host = spec.hosts.trivial() ? 1.0 : spec.hosts.factor(worker);
  const double cost_ns =
      static_cast<double>(spec.scale.tuple_cost(spec.base_multiplies)) *
      multiplier * host;
  return 1e9 / cost_ns;
}

}  // namespace

RegionConfig build_region_config(const ExperimentSpec& spec) {
  RegionConfig config;
  config.workers = spec.workers;
  config.base_cost = spec.scale.tuple_cost(spec.base_multiplies);
  config.sample_period = spec.scale.paper_second;

  // Size buffers so a full send buffer drains in about
  // buffer_fill_fraction of a paper second at nominal service rate.
  const double target_tuples =
      spec.scale.buffer_fill_fraction *
      static_cast<double>(spec.scale.paper_second) /
      static_cast<double>(config.base_cost);
  const std::size_t buf = std::clamp(
      static_cast<std::size_t>(std::llround(target_tuples)),
      spec.scale.min_buffer, spec.scale.max_buffer);
  config.send_buffer = buf;
  config.recv_buffer = buf;
  config.merge_buffer = spec.merge_buffer;
  return config;
}

double true_capacity(const ExperimentSpec& spec, int worker, double paper_s) {
  double multiplier = 1.0;
  // Load classes are applied in order; a later class on the same worker
  // overrides (mirrors LoadProfile semantics where later steps win).
  for (const LoadClass& cls : spec.loads) {
    for (int w : cls.workers) {
      if (w != worker) continue;
      const bool active =
          cls.until_paper_s < 0.0 || paper_s < cls.until_paper_s;
      if (active) multiplier = cls.multiplier;
    }
  }
  const double host = spec.hosts.trivial()
                          ? 1.0
                          : spec.hosts.factor(worker);
  const double cost_ns =
      static_cast<double>(spec.scale.tuple_cost(spec.base_multiplies)) *
      multiplier * host;
  return 1e9 / cost_ns;  // tuples per virtual second
}

namespace {

/// Change times (paper seconds) at which any worker's capacity changes.
std::vector<double> capacity_change_times(const ExperimentSpec& spec) {
  std::vector<double> times{0.0};
  for (const LoadClass& cls : spec.loads) {
    if (cls.until_paper_s >= 0.0) times.push_back(cls.until_paper_s);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

ControllerConfig controller_config_for(PolicyKind kind,
                                       const ExperimentSpec& spec) {
  ControllerConfig config = spec.controller;
  config.decay_factor = kind == PolicyKind::kLbAdaptive
                            ? (config.decay_factor < 1.0 ? config.decay_factor
                                                         : 0.9)
                            : 1.0;
  return config;
}

}  // namespace

std::unique_ptr<SplitPolicy> make_policy(PolicyKind kind,
                                         const ExperimentSpec& spec) {
  switch (kind) {
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>(spec.workers);
    case PolicyKind::kReroute:
      return std::make_unique<RerouteOnBlockPolicy>(spec.workers);
    case PolicyKind::kLbStatic:
    case PolicyKind::kLbAdaptive:
      return std::make_unique<LoadBalancingPolicy>(
          spec.workers, controller_config_for(kind, spec));
    case PolicyKind::kOracle: {
      std::vector<OraclePolicy::Phase> phases;
      if (has_work_based_loads(spec)) {
        // Two phases: loaded capacities now, lifted capacities applied by
        // the work trigger via advance_phase().
        OraclePolicy::Phase loaded;
        loaded.when = 0;
        OraclePolicy::Phase lifted;
        lifted.when = std::numeric_limits<TimeNs>::max();
        for (int w = 0; w < spec.workers; ++w) {
          loaded.capacities.push_back(true_capacity(spec, w, 0.0));
          lifted.capacities.push_back(lifted_capacity(spec, w));
        }
        phases.push_back(std::move(loaded));
        phases.push_back(std::move(lifted));
        return std::make_unique<OraclePolicy>(spec.workers,
                                              std::move(phases));
      }
      for (double t : capacity_change_times(spec)) {
        OraclePolicy::Phase phase;
        // Sample capacities just after the change takes effect.
        phase.when = spec.scale.from_paper_seconds(t);
        phase.capacities.reserve(static_cast<std::size_t>(spec.workers));
        for (int w = 0; w < spec.workers; ++w) {
          phase.capacities.push_back(true_capacity(spec, w, t + 1e-9));
        }
        phases.push_back(std::move(phase));
      }
      return std::make_unique<OraclePolicy>(spec.workers, std::move(phases));
    }
  }
  return nullptr;
}

std::unique_ptr<Region> make_region(PolicyKind kind,
                                    const ExperimentSpec& spec) {
  auto region = std::make_unique<Region>(build_region_config(spec),
                                         make_policy(kind, spec),
                                         build_load_profile(spec), spec.hosts);
  for (const FaultSpec& f : spec.faults) {
    FaultEvent event;
    event.kind = f.kind;
    event.worker = f.worker;
    event.at = spec.scale.from_paper_seconds(f.at_paper_s);
    event.duration = spec.scale.from_paper_seconds(f.duration_paper_s);
    region->inject_fault(event);
  }
  return region;
}

std::uint64_t ideal_work(const ExperimentSpec& spec) {
  // Integrate the region's ideal throughput over the nominal duration.
  // Ideal throughput at time t is the sum of true capacities, capped by
  // the splitter's maximum send rate.
  const RegionConfig region = build_region_config(spec);
  const double splitter_rate =
      1e9 / static_cast<double>(region.send_overhead);
  if (has_work_based_loads(spec)) {
    // The load lifts after fraction f of the work: choose W so an ideal
    // run finishes in the nominal duration:
    //   f*W / R_loaded + (1-f)*W / R_lifted = D.
    const double f = work_fraction(spec);
    double r_loaded = 0.0;
    double r_lifted = 0.0;
    for (int w = 0; w < spec.workers; ++w) {
      r_loaded += true_capacity(spec, w, 0.0);
      r_lifted += lifted_capacity(spec, w);
    }
    r_loaded = std::min(r_loaded, splitter_rate);
    r_lifted = std::min(r_lifted, splitter_rate);
    const double duration_virtual_s =
        spec.duration_paper_s * static_cast<double>(spec.scale.paper_second) /
        1e9;
    return static_cast<std::uint64_t>(
        duration_virtual_s / (f / r_loaded + (1.0 - f) / r_lifted));
  }
  std::vector<double> times = capacity_change_times(spec);
  times.push_back(spec.duration_paper_s);
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    if (times[i] >= spec.duration_paper_s) break;
    const double span_s =
        std::min(times[i + 1], spec.duration_paper_s) - times[i];
    double rate = 0.0;
    for (int w = 0; w < spec.workers; ++w) {
      rate += true_capacity(spec, w, times[i] + 1e-9);
    }
    rate = std::min(rate, splitter_rate);
    const double span_virtual_s =
        span_s * static_cast<double>(spec.scale.paper_second) / 1e9;
    total += rate * span_virtual_s;
  }
  return static_cast<std::uint64_t>(total);
}

ExperimentResult run_fixed_work(PolicyKind kind, const ExperimentSpec& spec,
                                std::uint64_t target_tuples,
                                double deadline_factor,
                                int throughput_window) {
  auto region = make_region(kind, spec);

  // Arm the work-based load lifts: when the threshold crosses, the
  // affected workers drop back to 1x and the oracle (if any) switches to
  // its post-change distribution.
  if (has_work_based_loads(spec)) {
    const double f = work_fraction(spec);
    Region* r = region.get();
    const ExperimentSpec* s = &spec;
    region->at_emitted(
        static_cast<std::uint64_t>(f * static_cast<double>(target_tuples)),
        [r, s] {
          for (const LoadClass& cls : s->loads) {
            if (cls.until_work_fraction < 0.0) continue;
            for (int w : cls.workers) {
              r->load().add_step(w, r->now(), 1.0);
            }
          }
          if (auto* oracle = dynamic_cast<OraclePolicy*>(&r->policy())) {
            oracle->advance_phase();
          }
        });
  }

  // Ring buffer of per-period emit counts for the final-throughput window.
  std::vector<std::uint64_t> window(
      static_cast<std::size_t>(throughput_window), 0);
  std::size_t cursor = 0;
  region->set_sample_hook([&](Region& r) {
    window[cursor] = r.emitted_last_period();
    cursor = (cursor + 1) % window.size();
  });

  const TimeNs deadline = spec.scale.from_paper_seconds(
      spec.duration_paper_s * deadline_factor);
  const RunResult run = region->run_until_emitted(target_tuples, deadline);

  ExperimentResult result;
  result.kind = kind;
  result.completed = run.reached_target;
  result.emitted = run.emitted;
  result.exec_time_paper_s = spec.scale.to_paper_seconds(run.finish_time);
  result.rerouted = region->splitter().rerouted();
  result.total_sent = region->splitter().total_sent();

  // Median over the window: robust against the flush burst that can occur
  // when a previously-gating connection catches up and the merger drains
  // its backlog in one period.
  std::vector<std::uint64_t> sorted = window;
  std::sort(sorted.begin(), sorted.end());
  const double median_per_period =
      static_cast<double>(sorted[sorted.size() / 2]);
  const double period_s =
      static_cast<double>(spec.scale.paper_second) / 1e9;
  result.final_throughput_mtps = median_per_period / period_s / 1e6;
  return result;
}

std::vector<ExperimentResult> run_alternatives(const ExperimentSpec& spec,
                                               std::uint64_t target_tuples) {
  std::vector<ExperimentResult> results;
  for (PolicyKind kind :
       {PolicyKind::kOracle, PolicyKind::kLbStatic, PolicyKind::kLbAdaptive,
        PolicyKind::kRoundRobin}) {
    results.push_back(run_fixed_work(kind, spec, target_tuples));
  }
  return results;
}

}  // namespace slb::sim
