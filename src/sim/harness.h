// Experiment harness: maps the paper's experiment vocabulary — "N PEs,
// base tuple cost of k integer multiplies, half the PEs 100x loaded until
// an eighth through the run" — onto simulator configurations, builds the
// four policy alternatives of Section 6 (Oracle*, LB-static, LB-adaptive,
// RR) plus the Section 4.4 re-routing baseline, and measures what the
// paper measures: execution time for a fixed amount of work and final
// throughput.
//
// Time scaling (see DESIGN.md): the simulator compresses the paper's
// physical time. One *paper second* defaults to 10 ms of virtual time and
// one *integer multiply* to 10 ns of virtual service time, preserving
// every ratio the dynamics depend on while keeping event counts tractable.
// Traces are reported in paper seconds; throughputs in tuples per
// *virtual* second.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policies.h"
#include "sim/host.h"
#include "sim/load_profile.h"
#include "sim/region.h"

namespace slb::sim {

/// The paper-to-simulator scale.
struct Scale {
  /// Virtual ns of service per paper "integer multiply".
  double multiply_ns = 10.0;
  /// Virtual ns per paper second (also the sampling period).
  DurationNs paper_second = millis(10);
  /// Buffers are sized so that draining a full send buffer takes about
  /// this fraction of a paper second (clamped to [min_buffer, max_buffer]).
  double buffer_fill_fraction = 0.05;
  std::size_t min_buffer = 8;
  std::size_t max_buffer = 64;

  DurationNs tuple_cost(long multiplies) const;
  double to_paper_seconds(TimeNs t) const;
  TimeNs from_paper_seconds(double s) const;
};

/// One class of simulated external load: `multiplier` applied to a set of
/// workers from time 0 until `until_paper_s` (negative = the whole run).
///
/// For the fixed-work experiments, `until_work_fraction` (when >= 0)
/// lifts the load once that fraction of the run's target tuples has been
/// emitted — the paper's "an eighth through the experiment" is an eighth
/// of the *work*, which is why a policy that copes badly with the load
/// also suffers it for longer (Section 6.4: "RR took at least 10x as
/// long"). Work-based lifting takes precedence over `until_paper_s`.
struct LoadClass {
  std::vector<int> workers;
  double multiplier = 1.0;
  double until_paper_s = -1.0;
  double until_work_fraction = -1.0;
};

/// One scheduled fault, in paper time: worker `worker` crashes, recovers,
/// or has its connection stalled for `duration_paper_s` starting at
/// `at_paper_s`. Faults are simulator events, so a spec with faults is
/// exactly as deterministic as one without.
struct FaultSpec {
  FaultKind kind = FaultKind::kWorkerCrash;
  int worker = 0;
  double at_paper_s = 0.0;
  double duration_paper_s = 0.0;  // kChannelStall only
};

enum class PolicyKind {
  kRoundRobin,
  kReroute,     // Section 4.4 transport-level re-routing baseline
  kLbStatic,    // paper's model, no exploration decay
  kLbAdaptive,  // paper's model with 10% decay (the full scheme)
  kOracle,      // Oracle*: true capacities, switched at load-change times
};

std::string policy_name(PolicyKind kind);

/// Full description of one experiment run.
struct ExperimentSpec {
  int workers = 2;
  long base_multiplies = 1000;
  std::vector<LoadClass> loads;
  HostModel hosts;  // default: one dedicated speed-1 host per worker
  double duration_paper_s = 200.0;
  Scale scale;
  /// Overrides for the LB controller (clustering etc.). decay_factor is
  /// forced by the policy kind.
  ControllerConfig controller;
  /// Merger reorder-queue bound; 0 = unbounded (the paper's eager merger,
  /// used for every Section 6 experiment). The Section 4.4 re-routing
  /// study uses a bounded merger — see DESIGN.md.
  std::size_t merge_buffer = 0;
  /// Scheduled failures (see DESIGN.md "Failure model"); applied by
  /// make_region.
  std::vector<FaultSpec> faults;
};

/// Builds the LoadProfile (in virtual time) from the spec's load classes.
LoadProfile build_load_profile(const ExperimentSpec& spec);

/// Builds the region config implied by the spec (buffer sizing, sampling
/// period = one paper second).
RegionConfig build_region_config(const ExperimentSpec& spec);

/// True per-worker capacity (tuples per virtual second) at paper time `t`,
/// accounting for load classes and host factors. This is ground truth the
/// Oracle* policy gets to see and LB has to discover.
double true_capacity(const ExperimentSpec& spec, int worker, double paper_s);

/// Builds one of the Section 6 policy alternatives for this spec.
std::unique_ptr<SplitPolicy> make_policy(PolicyKind kind,
                                         const ExperimentSpec& spec);

/// Builds a fully wired region for (spec, policy kind).
std::unique_ptr<Region> make_region(PolicyKind kind,
                                    const ExperimentSpec& spec);

/// What the paper's bar charts report for one run.
struct ExperimentResult {
  PolicyKind kind{};
  bool completed = false;
  std::uint64_t emitted = 0;
  /// Time to finish the fixed work, in paper seconds.
  double exec_time_paper_s = 0.0;
  /// Mean throughput over the final windows, in millions of tuples per
  /// virtual second ("final throughput").
  double final_throughput_mtps = 0.0;
  std::uint64_t rerouted = 0;
  std::uint64_t total_sent = 0;
};

/// Runs the spec under `kind` until `target_tuples` are emitted (deadline
/// = `deadline_factor * duration_paper_s`). Final throughput is averaged
/// over the last `throughput_window` sample periods before completion.
ExperimentResult run_fixed_work(PolicyKind kind, const ExperimentSpec& spec,
                                std::uint64_t target_tuples,
                                double deadline_factor = 25.0,
                                int throughput_window = 21);

/// Chooses the fixed work for a spec: the tuples an ideal (oracle-weighted)
/// run would emit in `spec.duration_paper_s`, so Oracle* execution times
/// land near the nominal duration and everything else is comparable.
std::uint64_t ideal_work(const ExperimentSpec& spec);

/// Convenience for the paper's standard comparison: runs Oracle*,
/// LB-static, LB-adaptive and RR on the same spec/work and returns results
/// in that order.
std::vector<ExperimentResult> run_alternatives(const ExperimentSpec& spec,
                                               std::uint64_t target_tuples);

}  // namespace slb::sim
