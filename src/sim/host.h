// Host capacity model — substitutes for the paper's physical machines
// (Section 6: "slow" 2x Xeon X5365 / 8 cores @ 3.0 GHz and "fast"
// 2x Xeon X5687 / 8 cores x 2 SMT @ 3.6 GHz).
//
// A host has a relative `speed` (service times divide by it) and a
// `threads` capacity. Placing more PEs on a host than it has hardware
// threads oversubscribes it: every PE on that host slows down by the
// oversubscription ratio, which reproduces the All-Slow degradation at
// 16+ PEs in Figure 11.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

namespace slb::sim {

struct HostSpec {
  double speed = 1.0;  // relative per-thread speed; slow host = 1.0
  int threads = 8;     // hardware threads the host can run concurrently
};

/// Immutable placement of workers onto hosts; computes the effective
/// service-time factor per worker.
class HostModel {
 public:
  /// Default model: every worker on its own dedicated speed-1 host.
  HostModel() = default;

  HostModel(std::vector<HostSpec> hosts, std::vector<int> worker_host)
      : hosts_(std::move(hosts)), worker_host_(std::move(worker_host)) {
    for (int h : worker_host_) {
      assert(h >= 0 && h < static_cast<int>(hosts_.size()));
      (void)h;
    }
    pe_count_.assign(hosts_.size(), 0);
    for (int h : worker_host_) ++pe_count_[static_cast<std::size_t>(h)];
  }

  bool trivial() const { return hosts_.empty(); }

  /// Multiplier applied to worker `w`'s service time:
  /// oversubscription / speed.
  double factor(int w) const {
    if (trivial()) return 1.0;
    assert(w >= 0 && w < static_cast<int>(worker_host_.size()));
    const auto h = static_cast<std::size_t>(
        worker_host_[static_cast<std::size_t>(w)]);
    const HostSpec& spec = hosts_[h];
    const double oversub =
        std::max(1.0, static_cast<double>(pe_count_[h]) /
                          static_cast<double>(spec.threads));
    return oversub / spec.speed;
  }

  /// The host index of worker `w` (-1 in the trivial model).
  int host_of(int w) const {
    if (trivial()) return -1;
    return worker_host_[static_cast<std::size_t>(w)];
  }

  int hosts() const { return static_cast<int>(hosts_.size()); }

 private:
  std::vector<HostSpec> hosts_;
  std::vector<int> worker_host_;
  std::vector<int> pe_count_;
};

}  // namespace slb::sim
