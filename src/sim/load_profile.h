// Time-varying external load on workers — the paper's "simulated load".
//
// Each worker has a piecewise-constant multiplier on its per-tuple service
// time: e.g. 100x until t/8, then 1x, reproduces the experiments in
// Sections 6.1–6.4 where exogenous load disappears an eighth of the way
// through the run.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/time.h"

namespace slb::sim {

/// One multiplier change: from `when` onward the worker's service time is
/// multiplied by `multiplier` (until a later step overrides it).
struct LoadStep {
  TimeNs when = 0;
  double multiplier = 1.0;
};

class LoadProfile {
 public:
  LoadProfile() = default;

  /// Creates a profile for `workers` workers, all permanently at 1x.
  explicit LoadProfile(int workers)
      : steps_(static_cast<std::size_t>(workers)) {}

  int workers() const { return static_cast<int>(steps_.size()); }

  /// Appends a step for one worker. Steps may be added in any order; they
  /// are kept sorted by time.
  void add_step(int worker, TimeNs when, double multiplier) {
    assert(worker >= 0 && worker < workers());
    assert(multiplier > 0.0);
    auto& s = steps_[static_cast<std::size_t>(worker)];
    s.push_back(LoadStep{when, multiplier});
    std::sort(s.begin(), s.end(), [](const LoadStep& a, const LoadStep& b) {
      return a.when < b.when;
    });
  }

  /// Convenience: worker is at `multiplier` from time 0 and drops back to
  /// 1x at `until`.
  void add_load_until(int worker, double multiplier, TimeNs until) {
    add_step(worker, 0, multiplier);
    add_step(worker, until, 1.0);
  }

  /// Multiplier in force for `worker` at time `t` (1.0 before any step).
  double at(int worker, TimeNs t) const {
    assert(worker >= 0 && worker < workers());
    double m = 1.0;
    for (const LoadStep& s : steps_[static_cast<std::size_t>(worker)]) {
      if (s.when <= t) {
        m = s.multiplier;
      } else {
        break;
      }
    }
    return m;
  }

  /// Times at which any worker's multiplier changes (for Oracle*
  /// schedules).
  std::vector<TimeNs> change_times() const {
    std::vector<TimeNs> times;
    for (const auto& s : steps_) {
      for (const LoadStep& step : s) times.push_back(step.when);
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    return times;
  }

 private:
  std::vector<std::vector<LoadStep>> steps_;
};

}  // namespace slb::sim
