#include "sim/merger.h"

#include <cassert>

namespace slb::sim {

Merger::Merger(Simulator* sim, int connections, std::size_t capacity,
               bool ordered)
    : sim_(sim),
      on_space_(static_cast<std::size_t>(connections)),
      emitted_from_(static_cast<std::size_t>(connections), 0),
      ordered_(ordered) {
  assert(sim != nullptr);
  assert(connections > 0);
  queues_.reserve(static_cast<std::size_t>(connections));
  for (int j = 0; j < connections; ++j) queues_.emplace_back(capacity);
}

void Merger::set_on_space(int j, std::function<void()> fn) {
  on_space_[static_cast<std::size_t>(j)] = std::move(fn);
}

void Merger::connect_downstream(TupleSink* downstream) {
  downstream_ = downstream;
  // When the downstream frees space, resume draining (ordered mode) —
  // a zero-delay event keeps the call stack flat.
  downstream_->set_on_space(0, [this] {
    sim_->schedule_after(0, [this] { drain(); });
  });
}

bool Merger::emit(int from, const Tuple& t) {
  if (downstream_ != nullptr && !downstream_->offer(0, t)) return false;
  ++emitted_;
  ++emitted_from_[static_cast<std::size_t>(from)];
  if (metrics_.emitted != nullptr) metrics_.emitted->inc();
  if (metrics_.reorder_depth != nullptr) {
    // Tuples parked behind the sequence gate right now (the emitting one
    // is still at its queue head, so subtract it). queued_total_ keeps
    // this O(1) instead of summing every queue per emit.
    metrics_.reorder_depth->record(queued_total_ > 0 ? queued_total_ - 1 : 0);
  }
  if (on_emit_) on_emit_(t);
  return true;
}

bool Merger::try_push(int j, Tuple t) {
  auto& q = queues_[static_cast<std::size_t>(j)];
  if (q.full()) return false;
  // Ordered: queue and release strictly by sequence number. Unordered
  // (parallel sinks): the same machinery with no sequence gating — the
  // queue only holds tuples the downstream refused.
  q.push(t);
  ++queued_total_;
  drain();
  return true;
}

void Merger::note_lost(std::uint64_t seq) {
  if (!ordered_) return;  // no sequence gating to un-stick
  if (seq < expected_) return;  // already emitted (cannot happen for real
                                // losses, but keeps the call idempotent)
  lost_.emplace(seq, sim_->now());
  drain();
}

void Merger::drain() {
  // Emit while the next-expected tuple sits at the head of some queue.
  // Within one connection tuples arrive in send order, so only queue heads
  // can hold the expected sequence number.
  const std::size_t n = queues_.size();
  std::vector<bool> freed(n, false);
  bool progressed = true;
  bool downstream_full = false;
  while (progressed && !downstream_full) {
    progressed = false;
    // Skip sequences that died with a worker: the region told us they
    // will never arrive, so gating on them would wedge the output.
    while (!lost_.empty() && lost_.begin()->first == expected_) {
      if (metrics_.gap_wait_ns != nullptr) {
        metrics_.gap_wait_ns->record(
            static_cast<std::uint64_t>(sim_->now() - lost_.begin()->second));
      }
      lost_.erase(lost_.begin());
      ++expected_;
      ++gaps_;
      if (metrics_.gaps != nullptr) metrics_.gaps->inc();
      progressed = true;
    }
    for (std::size_t j = 0; j < n; ++j) {
      auto& q = queues_[j];
      if (ordered_) {
        while (!q.empty() && q.front().seq == expected_) {
          if (!emit(static_cast<int>(j), q.front())) {
            downstream_full = true;
            break;
          }
          (void)q.pop();
          --queued_total_;
          freed[j] = true;
          ++expected_;
          progressed = true;
        }
        if (downstream_full) break;
      } else {
        while (!q.empty() && emit(static_cast<int>(j), q.front())) {
          (void)q.pop();
          --queued_total_;
          freed[j] = true;
          progressed = true;
        }
      }
    }
  }
  // Un-stall workers whose queues gained space — decoupled through the
  // event queue so a long drain cannot recurse through worker code.
  for (std::size_t j = 0; j < n; ++j) {
    if (freed[j] && on_space_[j]) {
      sim_->schedule_after(0, on_space_[j]);
    }
  }
}

}  // namespace slb::sim
