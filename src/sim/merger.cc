#include "sim/merger.h"

#include <cassert>

namespace slb::sim {

Merger::Merger(Simulator* sim, int connections, std::size_t capacity,
               bool ordered)
    : sim_(sim),
      on_space_(static_cast<std::size_t>(connections)),
      emitted_from_(static_cast<std::size_t>(connections), 0),
      ordered_(ordered),
      last_enq_(static_cast<std::size_t>(connections), 0) {
  assert(sim != nullptr);
  assert(connections > 0);
  queues_.reserve(static_cast<std::size_t>(connections));
  for (int j = 0; j < connections; ++j) queues_.emplace_back(capacity);
}

void Merger::set_on_space(int j, std::function<void()> fn) {
  on_space_[static_cast<std::size_t>(j)] = std::move(fn);
}

void Merger::connect_downstream(TupleSink* downstream) {
  downstream_ = downstream;
  // When the downstream frees space, resume draining (ordered mode) —
  // a zero-delay event keeps the call stack flat.
  downstream_->set_on_space(0, [this] {
    sim_->schedule_after(0, [this] { drain(); });
  });
}

bool Merger::emit(int from, const Tuple& t) {
  if (downstream_ != nullptr && !downstream_->offer(0, t)) return false;
  ++emitted_;
  ++emitted_from_[static_cast<std::size_t>(from)];
  if (metrics_.emitted != nullptr) metrics_.emitted->inc();
  if (metrics_.reorder_depth != nullptr) {
    // Tuples parked behind the sequence gate right now (the emitting one
    // is still at its queue head, so subtract it). queued_total_ keeps
    // this O(1) instead of summing every queue per emit.
    metrics_.reorder_depth->record(queued_total_ > 0 ? queued_total_ - 1 : 0);
  }
  if (on_emit_) on_emit_(t);
  return true;
}

void Merger::set_on_ack(std::function<void(std::uint64_t)> fn,
                        DurationNs latency) {
  on_ack_ = std::move(fn);
  ack_latency_ = latency;
}

void Merger::discard_stale() {
  // A sequence below the release cursor cannot be emitted again without
  // breaking strict order. Under at-least-once it is a replay echo (the
  // original raced the crash and won); under GapSkip it is a tuple that
  // outlived its own gap declaration — previously invisible, now counted.
  if (mode_ == delivery::DeliveryMode::kAtLeastOnce) {
    ++dup_discards_;
    if (metrics_.dup_discards != nullptr) metrics_.dup_discards->inc();
  } else {
    ++late_discards_;
    if (metrics_.late_discards != nullptr) metrics_.late_discards->inc();
  }
}

void Merger::maybe_schedule_ack() {
  if (!on_ack_ || ack_scheduled_ || expected_ <= acked_sent_) return;
  // One coalesced in-flight ack at a time: the value is read at fire
  // time, so progress made while it was in flight rides along — the
  // cumulative encoding makes dropped/merged acks free.
  ack_scheduled_ = true;
  sim_->schedule_after(ack_latency_, [this] {
    ack_scheduled_ = false;
    if (expected_ > acked_sent_) {
      acked_sent_ = expected_;
      on_ack_(acked_sent_);
      maybe_schedule_ack();  // progress during the flight, if any
    }
  });
}

bool Merger::try_push(int j, Tuple t) {
  const auto ju = static_cast<std::size_t>(j);
  if (ordered_ && t.seq < expected_) {
    // Dedup window: already released (or declared a gap). Accept-and-drop
    // so the worker does not retry a tuple that must never be emitted.
    discard_stale();
    return true;
  }
  auto& q = queues_[ju];
  if (ordered_ && mode_ == delivery::DeliveryMode::kAtLeastOnce &&
      !q.empty() && t.seq < last_enq_[ju]) {
    // A replayed tuple landed behind newer sequences already queued on
    // this connection; the head-only drain scan would never reach it.
    // Park it in the sequence-keyed side pool instead of wedging the
    // FIFO. An insert collision means this exact sequence was already
    // pooled — a duplicate of a duplicate.
    if (replay_pool_.emplace(t.seq, std::make_pair(j, t)).second) {
      ++queued_total_;
    } else {
      discard_stale();
    }
    drain();
    return true;
  }
  if (q.full()) return false;
  // Ordered: queue and release strictly by sequence number. Unordered
  // (parallel sinks): the same machinery with no sequence gating — the
  // queue only holds tuples the downstream refused.
  q.push(t);
  last_enq_[ju] = t.seq;
  ++queued_total_;
  drain();
  return true;
}

void Merger::note_lost(std::uint64_t seq) {
  if (!ordered_) return;  // no sequence gating to un-stick
  if (seq < expected_) return;  // already emitted (cannot happen for real
                                // losses, but keeps the call idempotent)
  lost_.emplace(seq, sim_->now());
  drain();
}

void Merger::drain() {
  // Emit while the next-expected tuple sits at the head of some queue.
  // Within one connection tuples arrive in send order, so only queue heads
  // can hold the expected sequence number.
  const std::size_t n = queues_.size();
  std::vector<bool> freed(n, false);
  bool progressed = true;
  bool downstream_full = false;
  while (progressed && !downstream_full) {
    progressed = false;
    // Skip sequences that died with a worker: the region told us they
    // will never arrive, so gating on them would wedge the output.
    while (!lost_.empty() && lost_.begin()->first == expected_) {
      if (metrics_.gap_wait_ns != nullptr) {
        metrics_.gap_wait_ns->record(
            static_cast<std::uint64_t>(sim_->now() - lost_.begin()->second));
      }
      lost_.erase(lost_.begin());
      ++expected_;
      ++gaps_;
      if (metrics_.gaps != nullptr) metrics_.gaps->inc();
      progressed = true;
    }
    // Out-of-order replays parked in the side pool (at-least-once only).
    while (!replay_pool_.empty() &&
           replay_pool_.begin()->first < expected_) {
      discard_stale();
      replay_pool_.erase(replay_pool_.begin());
      --queued_total_;
      progressed = true;
    }
    while (!replay_pool_.empty() &&
           replay_pool_.begin()->first == expected_) {
      const auto& [from, t] = replay_pool_.begin()->second;
      if (!emit(from, t)) {
        downstream_full = true;
        break;
      }
      replay_pool_.erase(replay_pool_.begin());
      --queued_total_;
      ++expected_;
      progressed = true;
    }
    if (downstream_full) break;
    for (std::size_t j = 0; j < n; ++j) {
      auto& q = queues_[j];
      if (ordered_) {
        // Stale heads (sequence already released or skipped) would wedge
        // this FIFO forever: a duplicate of a tuple that was still queued
        // elsewhere when it arrived, or a late arrival whose sequence was
        // declared a gap meanwhile. Drop and count them.
        while (!q.empty() && q.front().seq < expected_) {
          discard_stale();
          (void)q.pop();
          --queued_total_;
          freed[j] = true;
          progressed = true;
        }
        while (!q.empty() && q.front().seq == expected_) {
          if (!emit(static_cast<int>(j), q.front())) {
            downstream_full = true;
            break;
          }
          (void)q.pop();
          --queued_total_;
          freed[j] = true;
          ++expected_;
          progressed = true;
        }
        if (downstream_full) break;
      } else {
        while (!q.empty() && emit(static_cast<int>(j), q.front())) {
          (void)q.pop();
          --queued_total_;
          freed[j] = true;
          progressed = true;
        }
      }
    }
  }
  // Un-stall workers whose queues gained space — decoupled through the
  // event queue so a long drain cannot recurse through worker code.
  for (std::size_t j = 0; j < n; ++j) {
    if (freed[j] && on_space_[j]) {
      sim_->schedule_after(0, on_space_[j]);
    }
  }
  maybe_schedule_ack();
}

}  // namespace slb::sim
