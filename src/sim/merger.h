// The in-order merger at the back of a parallel region (paper Section 4.1).
//
// Sequential semantics: tuples must leave the region in splitter send
// order. Each connection has a bounded FIFO of processed-but-unreleased
// tuples; the merger emits the tuple whose sequence number is next, no
// matter how many tuples from faster connections sit queued behind a slow
// one. Those bounded queues propagate back pressure to the workers — the
// merger is why per-connection throughput carries no load information
// (Section 4.3) and why the whole region is gated by its slowest worker.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "delivery/delivery.h"
#include "obs/metrics.h"
#include "sim/event.h"
#include "sim/queues.h"
#include "sim/sink.h"
#include "sim/tuple.h"
#include "util/time.h"

namespace slb::sim {

/// Registry handles for the merger (DESIGN.md §8). All pointers optional.
struct MergerMetrics {
  obs::Counter* emitted = nullptr;        // tuples released downstream
  obs::Counter* gaps = nullptr;           // lost sequences skipped over
  obs::Histogram* reorder_depth = nullptr;  // queued tuples at each emit
  obs::Histogram* gap_wait_ns = nullptr;  // declared-lost -> skipped delay
  obs::Counter* dup_discards = nullptr;   // replayed dupes dropped (ALO)
  obs::Counter* late_discards = nullptr;  // post-gap arrivals dropped
};

class Merger : public TupleSink {
 public:
  /// Effectively-unbounded reorder queues: the eager-reading merger of the
  /// paper's implementation (blocking happens at the splitter, not here).
  static constexpr std::size_t kUnbounded = std::size_t{1} << 40;

  /// @param connections number of worker connections feeding the merger.
  /// @param capacity per-connection reorder-queue capacity in tuples.
  /// @param ordered when false the region ends in parallel sinks (the
  ///   paper's Section 4.1 footnote): tuples are released immediately in
  ///   arrival order with no sequence gating. Per-connection throughput
  ///   then becomes a meaningful signal again — see Section 4.3.
  Merger(Simulator* sim, int connections, std::size_t capacity,
         bool ordered = true);

  /// Called when connection j's reorder queue frees at least one slot;
  /// used to un-stall worker j. Invoked as a zero-delay event.
  void set_on_space(int j, std::function<void()> fn) override;

  /// TupleSink: workers offer processed tuples here.
  bool offer(int from, Tuple t) override { return try_push(from, t); }

  /// Chains the merger's output into a downstream sink with back
  /// pressure (pipeline composition). Without one, emitted tuples are
  /// only counted/reported via set_on_emit.
  void connect_downstream(TupleSink* downstream);

  /// Called synchronously for every tuple emitted downstream, in sequence
  /// order.
  void set_on_emit(std::function<void(const Tuple&)> fn) {
    on_emit_ = std::move(fn);
  }

  /// Worker j offers a processed tuple. Returns false when j's reorder
  /// queue is full — the worker must hold the tuple and retry when poked.
  bool try_push(int j, Tuple t);

  /// Failure handling: sequence `seq` will never arrive (its tuple died
  /// with a worker). The merger skips over it instead of gating forever,
  /// preserving prefix order of the survivors; each skip is counted as a
  /// gap. Called by the region's fault handlers.
  void note_lost(std::uint64_t seq);

  /// Sequence numbers skipped because their tuples were lost to failures.
  std::uint64_t gaps() const { return gaps_; }

  /// Sequences declared lost (note_lost) but not yet skipped over — the
  /// merger is still gating earlier sequences. Conservation accounting:
  /// sent + shed == emitted + gaps + in_flight + lost_pending holds at
  /// every instant (tests/test_conservation.cc).
  std::uint64_t lost_pending() const {
    return static_cast<std::uint64_t>(lost_.size());
  }

  /// Observability: attach registry handles (see MergerMetrics).
  void set_metrics(const MergerMetrics& metrics) { metrics_ = metrics; }

  // --- Delivery semantics (DESIGN.md §10) ------------------------------

  /// Selects how stale arrivals (sequence below the release cursor) are
  /// accounted: dup_discards under at-least-once (an expected replay
  /// echo), late_discards under GapSkip (a tuple outliving its declared
  /// gap — the bug this counter makes visible). Either way the tuple is
  /// dropped and strict order is preserved.
  void set_delivery_mode(delivery::DeliveryMode mode) { mode_ = mode; }

  /// At-least-once reverse hop: after each drain that advances the
  /// release cursor, schedule `fn(expected)` — the cumulative ack — to
  /// fire `latency` later (one coalesced event at a time, modeling the
  /// merger->splitter link).
  void set_on_ack(std::function<void(std::uint64_t)> fn,
                  DurationNs latency);

  /// Replayed duplicates discarded below the release cursor (ALO).
  std::uint64_t dup_discards() const { return dup_discards_; }
  /// Tuples that arrived after their sequence was declared a gap.
  std::uint64_t late_discards() const { return late_discards_; }
  /// Replayed tuples parked in the out-of-order side pool (conservation
  /// accounting: these are in flight but invisible to queue_size).
  std::uint64_t pooled() const {
    return static_cast<std::uint64_t>(replay_pool_.size());
  }

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t expected_seq() const { return expected_; }
  std::size_t queue_size(int j) const {
    return queues_[static_cast<std::size_t>(j)].size();
  }

  /// Tuples released downstream that arrived via connection j.
  std::uint64_t emitted_from(int j) const {
    return emitted_from_[static_cast<std::size_t>(j)];
  }

  bool ordered() const { return ordered_; }

 private:
  void drain();
  /// Delivers one tuple downstream; false when the downstream refuses.
  bool emit(int from, const Tuple& t);
  /// Drops a tuple whose sequence already passed the release cursor.
  void discard_stale();
  /// Schedules the coalesced cumulative-ack event if one is due.
  void maybe_schedule_ack();

  Simulator* sim_;
  std::vector<BoundedFifo<Tuple>> queues_;
  /// Tuples across all reorder queues (kept in step with push/pop so the
  /// per-emit depth metric is O(1)).
  std::size_t queued_total_ = 0;
  std::vector<std::function<void()>> on_space_;
  std::function<void(const Tuple&)> on_emit_;
  TupleSink* downstream_ = nullptr;
  std::vector<std::uint64_t> emitted_from_;
  /// Sequence -> time it was declared lost; the delay until the skip is
  /// the gap wait (how long the loss gated the output).
  std::map<std::uint64_t, TimeNs> lost_;
  MergerMetrics metrics_;
  std::uint64_t expected_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t gaps_ = 0;
  bool ordered_ = true;

  /// Delivery semantics (DESIGN.md §10).
  delivery::DeliveryMode mode_ = delivery::DeliveryMode::kGapSkip;
  std::uint64_t dup_discards_ = 0;
  std::uint64_t late_discards_ = 0;
  /// Replays break the "within one connection, arrival order == sequence
  /// order" invariant the head-only drain scan depends on: a re-sent old
  /// sequence can land behind newer sequences already queued on the same
  /// connection, where the scan would never see it. Such stragglers are
  /// parked here, keyed by sequence (value: source connection + tuple),
  /// and drained alongside the queue heads.
  std::map<std::uint64_t, std::pair<int, Tuple>> replay_pool_;
  /// Highest sequence enqueued per connection (out-of-order detector).
  std::vector<std::uint64_t> last_enq_;
  std::function<void(std::uint64_t)> on_ack_;
  DurationNs ack_latency_ = 0;
  bool ack_scheduled_ = false;
  /// Highest cumulative ack already delivered to the splitter.
  std::uint64_t acked_sent_ = 0;
};

}  // namespace slb::sim
