// Bounded FIFO used for every buffer in the simulated pipeline: the
// splitter-side TCP send buffer, the worker-side receive buffer, and the
// merger's per-connection reorder queues. Bounded buffers are what create
// back pressure — and with it, the blocking signal the paper exploits.
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>

namespace slb::sim {

template <typename T>
class BoundedFifo {
 public:
  explicit BoundedFifo(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  bool full() const { return items_.size() >= capacity_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t free_slots() const { return capacity_ - items_.size(); }

  /// Pushes one item; caller must check `!full()` first.
  void push(T item) {
    assert(!full());
    items_.push_back(std::move(item));
  }

  /// Non-asserting push; returns false when full.
  bool try_push(T item) {
    if (full()) return false;
    items_.push_back(std::move(item));
    return true;
  }

  const T& front() const {
    assert(!empty());
    return items_.front();
  }

  T pop() {
    assert(!empty());
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

}  // namespace slb::sim
