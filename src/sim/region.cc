#include "sim/region.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace slb::sim {

Region::Region(RegionConfig config, std::unique_ptr<SplitPolicy> policy,
               LoadProfile load, HostModel hosts, Simulator* external_sim,
               SharedPlacement shared)
    : config_(config),
      policy_(std::move(policy)),
      load_(std::move(load)),
      hosts_(std::move(hosts)),
      owned_sim_(external_sim == nullptr ? std::make_unique<Simulator>()
                                         : nullptr),
      sim_(external_sim == nullptr ? owned_sim_.get() : external_sim),
      counters_(static_cast<std::size_t>(config.workers)) {
  assert(config_.workers > 0);
  assert(policy_ != nullptr);
  if (load_.workers() == 0) load_ = LoadProfile(config_.workers);
  assert(load_.workers() == config_.workers);
  if (shared.hosts != nullptr) {
    assert(static_cast<int>(shared.host_of.size()) == config_.workers);
  }

  Channel::Config chan_cfg;
  chan_cfg.send_capacity = config_.send_buffer;
  chan_cfg.recv_capacity = config_.recv_buffer;
  chan_cfg.latency = config_.link_latency;

  const std::size_t merge_cap =
      config_.merge_buffer == 0 ? Merger::kUnbounded : config_.merge_buffer;
  merger_ = std::make_unique<Merger>(sim_, config_.workers, merge_cap,
                                     config_.ordered);
  std::vector<Channel*> channel_ptrs;
  channel_ptrs.reserve(static_cast<std::size_t>(config_.workers));
  for (int j = 0; j < config_.workers; ++j) {
    channels_.push_back(std::make_unique<Channel>(sim_, j, chan_cfg));
    workers_.push_back(std::make_unique<Worker>(sim_, j, config_.base_cost,
                                                &load_, &hosts_));
    workers_.back()->wire(channels_.back().get(), merger_.get());
    // Crash losses funnel into the merger so it skips the dead sequences
    // instead of gating on tuples that will never arrive (GapSkip). Under
    // at-least-once the lost transmissions are replayed from the
    // splitter's buffers instead — declaring them gaps would let the
    // cursor skip sequences a replay is about to deliver.
    const auto lost = [this](const Tuple& t) {
      ++lost_tuples_;
      if (lost_counter_ != nullptr) lost_counter_->inc();
      if (!alo()) merger_->note_lost(t.seq);
    };
    channels_.back()->set_on_lost(lost);
    workers_.back()->set_on_lost(lost);
    if (shared.hosts != nullptr) {
      workers_.back()->bind_shared_host(
          shared.hosts, shared.host_of[static_cast<std::size_t>(j)]);
    }
    channel_ptrs.push_back(channels_.back().get());
  }
  splitter_ = std::make_unique<Splitter>(sim_, policy_.get(),
                                         config_.send_overhead,
                                         config_.source_interval);
  splitter_->wire(std::move(channel_ptrs), &counters_);

  if (alo()) {
    splitter_->set_delivery(config_.delivery.mode,
                            config_.delivery.replay_buffer_bytes);
    merger_->set_delivery_mode(config_.delivery.mode);
    // The reverse hop: cumulative acks ride back to the splitter with
    // the same link latency as the forward direction.
    merger_->set_on_ack(
        [this](std::uint64_t cum) { splitter_->on_ack(cum); },
        config_.link_latency);
  }

  const control::ProtectionConfig prot = config_.resolved_protection();
  if (prot.shed_high_watermark > 0) {
    splitter_->set_shed_watermarks(prot.shed_high_watermark,
                                   prot.shed_low_watermark);
    // Shed tuples consumed sequence numbers they will never deliver;
    // route them into the merger's gap set so ordered emission is not
    // gated on them and `emitted + gaps == sent + shed` holds.
    splitter_->set_on_shed(
        [this](std::uint64_t seq) { merger_->note_lost(seq); });
  }

  control::ControlLoopConfig loop_cfg;
  loop_cfg.protection = prot;
  loop_cfg.closed_loop_source = config_.source_interval == 0;
  if (alo()) loop_cfg.ack_stall_periods = config_.delivery.ack_stall_periods;
  loop_ = std::make_unique<control::RegionControlLoop>(
      static_cast<control::RegionPort*>(this), policy_.get(), loop_cfg);

  if (config_.metrics) {
    SplitterMetrics sm;
    sm.sent = &metrics_.counter("splitter.sent");
    sm.blocks = &metrics_.counter("splitter.blocks");
    sm.block_ns = &metrics_.histogram("splitter.block_ns");
    sm.failovers = &metrics_.counter("splitter.failovers");
    sm.rerouted = &metrics_.counter("splitter.rerouted");
    sm.shed = &metrics_.counter("splitter.shed");
    sm.retransmits = &metrics_.counter("splitter.retransmits");
    sm.replay_bytes = &metrics_.gauge("splitter.replay_buffer_bytes");
    sm.ack_lag = &metrics_.gauge("splitter.ack_lag");
    splitter_->set_metrics(sm);

    MergerMetrics mm;
    mm.emitted = &metrics_.counter("merger.emitted");
    mm.gaps = &metrics_.counter("merger.gaps");
    mm.reorder_depth = &metrics_.histogram("merger.reorder_depth");
    mm.gap_wait_ns = &metrics_.histogram("merger.gap_wait_ns");
    mm.dup_discards = &metrics_.counter("merger.dup_discards");
    mm.late_discards = &metrics_.counter("merger.late_discards");
    merger_->set_metrics(mm);

    for (int j = 0; j < config_.workers; ++j) {
      workers_[static_cast<std::size_t>(j)]->set_service_histogram(
          &metrics_.histogram("worker." + std::to_string(j) +
                              ".service_ns"));
    }

    loop_->attach_metrics(metrics_, "region.");
    lost_counter_ = &metrics_.counter("region.lost_tuples");

    policy_->attach_metrics(metrics_, "policy.");
  }

  merger_->set_on_emit([this](const Tuple& t) {
    const std::uint64_t emitted = merger_->emitted();
    const double lat = static_cast<double>(sim_->now() - t.created);
    latency_.add(lat);
    if (emitted % 8 == 0) latency_samples_.add(lat);
    for (EmitTrigger& trigger : emit_triggers_) {
      if (!trigger.fired && emitted >= trigger.threshold) {
        trigger.fired = true;
        trigger.fn();
      }
    }
    if (stop_target_ != 0 && emitted >= stop_target_) {
      target_reached_at_ = sim_->now();
      sim_->stop();
    }
  });
}

void Region::inject_fault(const FaultEvent& fault) {
  assert(fault.worker >= 0 && fault.worker < config_.workers);
  sim_->schedule_at(fault.at, [this, fault] {
    apply_fault_now(fault.kind, fault.worker, fault.duration);
  });
}

void Region::apply_fault_now(FaultKind kind, int worker,
                             DurationNs duration) {
  const auto j = static_cast<std::size_t>(worker);
  switch (kind) {
    case FaultKind::kWorkerCrash:
      if (workers_[j]->down()) return;
      // Order matters: quarantine the splitter first so the blocked-on-j
      // release it may schedule routes around the dead connection; then
      // kill the data plane (reporting losses); then queue the replay —
      // the unacked suffix — so the zero-delay resume event the
      // quarantine scheduled finds it pending and drains it first.
      splitter_->set_channel_up(worker, false);
      workers_[j]->crash();
      channels_[j]->fail();
      if (alo()) {
        const Splitter::ReplaySummary replay =
            splitter_->replay_channel(worker);
        loop_->note_replay(sim_->now(), worker, replay.tuples,
                           replay.bytes);
      }
      loop_->mark_channel_down(worker);
      break;
    case FaultKind::kWorkerRecover:
      if (!workers_[j]->down()) return;
      channels_[j]->restore();
      workers_[j]->recover();
      splitter_->set_channel_up(worker, true);
      loop_->mark_channel_up(worker);
      break;
    case FaultKind::kChannelStall:
      channels_[j]->stall(duration);
      break;
  }
}

void Region::at_emitted(std::uint64_t threshold, std::function<void()> fn) {
  emit_triggers_.push_back(EmitTrigger{threshold, std::move(fn), false});
}

void Region::ensure_started() {
  if (started_) return;
  started_ = true;
  splitter_->start();
  sim_->schedule_after(config_.sample_period, [this] { sample_tick(); });
}

void Region::sample_tick() {
  // Region-level per-period diagnostics.
  emitted_last_period_ = merger_->emitted() - prev_emitted_;
  prev_emitted_ = merger_->emitted();
  shed_last_period_ = splitter_->shed() - prev_shed_;
  prev_shed_ = splitter_->shed();

  // The whole decision pipeline — observation ingest, policy update,
  // admission throttle, watchdog ladder — runs in the shared control
  // loop, which samples and actuates through this region's RegionPort.
  loop_->tick(sim_->now(), config_.sample_period);

  if (sample_hook_) sample_hook_(*this);

  sim_->schedule_after(config_.sample_period, [this] { sample_tick(); });
}

std::vector<DurationNs> Region::sample_blocked() {
  return counters_.sample();
}

std::vector<std::uint64_t> Region::sample_delivered() {
  std::vector<std::uint64_t> delivered(
      static_cast<std::size_t>(config_.workers));
  for (int j = 0; j < config_.workers; ++j) {
    delivered[static_cast<std::size_t>(j)] = merger_->emitted_from(j);
  }
  return delivered;
}

void Region::apply_throttle(double factor) {
  // The loop only computes throttles for closed-loop sources; an
  // open-loop region sees this solely as the watchdog unwind's reset.
  splitter_->set_throttle(factor);
}

void Region::apply_shed_watermarks(std::uint64_t high, std::uint64_t low) {
  splitter_->set_shed_watermarks(high, low);
}

control::DeliverySample Region::sample_delivery_state() {
  control::DeliverySample sample;
  sample.enabled = alo();
  if (sample.enabled) {
    sample.cum_ack = splitter_->acked();
    sample.unacked = splitter_->unacked();
  }
  return sample;
}

void Region::run_for(DurationNs duration) {
  ensure_started();
  sim_->run_until(sim_->now() + duration);
}

RunResult Region::run_until_emitted(std::uint64_t target, TimeNs deadline) {
  ensure_started();
  RunResult result;
  if (merger_->emitted() >= target) {
    result.reached_target = true;
    result.emitted = merger_->emitted();
    result.finish_time = sim_->now();
    return result;
  }
  stop_target_ = target;
  target_reached_at_ = -1;
  sim_->run_while(deadline);
  stop_target_ = 0;

  result.emitted = merger_->emitted();
  result.reached_target = target_reached_at_ >= 0;
  result.finish_time =
      result.reached_target ? target_reached_at_ : deadline;
  return result;
}

}  // namespace slb::sim
