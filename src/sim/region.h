// A complete simulated data-parallel region: splitter, N TCP-like
// channels, N workers, in-order merger — plus the periodic sampling loop
// that feeds blocking counters to the routing policy. This is the
// simulator-facing top of the public API; every experiment in the paper
// is a Region configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "control/protection.h"
#include "control/region_control.h"
#include "control/region_port.h"
#include "core/blocking_counter.h"
#include "delivery/delivery.h"
#include "core/policies.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "sim/channel.h"
#include "sim/event.h"
#include "sim/fault.h"
#include "sim/host.h"
#include "sim/load_profile.h"
#include "sim/merger.h"
#include "sim/shared_host.h"
#include "sim/splitter.h"
#include "sim/worker.h"
#include "util/stats.h"
#include "util/time.h"

namespace slb::sim {

struct RegionConfig {
  int workers = 2;

  /// Per-tuple service time at multiplier 1 on a speed-1 host. The
  /// harness maps the paper's "n integer multiplies" onto this.
  DurationNs base_cost = micros(10);

  /// Buffer sizes in tuples (see DESIGN.md: defaults ablated in
  /// bench/ablation_buffers).
  std::size_t send_buffer = 32;
  std::size_t recv_buffer = 32;

  /// When false the region ends in parallel sinks (Section 4.1 footnote):
  /// no sequence gating, tuples leave in arrival order. The back-pressure
  /// topology changes completely — see Section 4.3.
  bool ordered = true;

  /// Per-connection merger reorder-queue capacity; 0 = unbounded.
  ///
  /// The paper's merger reads eagerly from its sockets into application
  /// queues, so back pressure reaches the splitter only through the
  /// connection that is actually slow ("it is an artifact of our
  /// implementation *where* we block", Section 4.3). Unbounded reorder
  /// queues reproduce that: blocking concentrates on the slow/draft-leader
  /// connection instead of smearing across all of them. A finite value
  /// models the alternative block-at-the-merger design (ablated in
  /// bench/ablation_buffers).
  std::size_t merge_buffer = 0;

  DurationNs link_latency = micros(2);

  /// Splitter per-tuple cost; bounds the region's maximum input rate.
  DurationNs send_overhead = 100;

  /// Upstream source pacing: 0 = closed loop (paper's experiments);
  /// > 0 = one tuple becomes available every source_interval ns.
  DurationNs source_interval = 0;

  /// Blocking-counter sampling / policy-update period (the paper samples
  /// every second of its time scale; the harness scales this down).
  DurationNs sample_period = millis(10);

  // --- Delivery semantics (DESIGN.md §10) ------------------------------

  /// GapSkip (default; crash losses become merger gaps, no new state or
  /// events — byte-identical to the pre-delivery behavior) or
  /// AtLeastOnce (splitter replay buffers + merger cumulative acks +
  /// crash replay onto survivors + merger dedup).
  delivery::DeliveryConfig delivery;

  // --- Overload protection (DESIGN.md §7, §9) --------------------------

  /// The region's protection knobs (admission control, shed watermarks,
  /// watchdog ladder), enforced by the shared control::RegionControlLoop.
  control::ProtectionConfig protection;

  /// Deprecated aliases of the `protection` fields (pre-PR-4 flat
  /// layout). A field set away from its default overrides the embedded
  /// struct via control::merged_protection, so old call sites keep
  /// working; new code should write `protection.*`.
  bool admission_control = false;
  double min_throttle = 0.25;
  std::uint64_t shed_high_watermark = 0;
  std::uint64_t shed_low_watermark = 0;
  bool watchdog = false;
  double watchdog_block_budget = 0.9;
  int watchdog_periods = 8;

  /// Legacy aliases resolved against the embedded struct.
  control::ProtectionConfig resolved_protection() const {
    return control::merged_protection(
        protection, admission_control, min_throttle, shed_high_watermark,
        shed_low_watermark, watchdog, watchdog_block_budget,
        watchdog_periods);
  }

  // --- Observability (DESIGN.md §8) ------------------------------------

  /// Wire the region's MetricsRegistry into every component (splitter,
  /// merger, workers, policy). Off = no per-tuple metric updates at all
  /// (the registry stays empty); used by bench/micro_core to measure the
  /// instrumentation overhead.
  bool metrics = true;
};

/// Result of run_until_emitted.
struct RunResult {
  bool reached_target = false;
  std::uint64_t emitted = 0;
  /// Virtual time at which the target tuple was emitted (or the deadline).
  TimeNs finish_time = 0;
};

/// Binding of a region's workers onto dynamically shared hosts (for
/// multi-region clusters). `host_of[j]` is worker j's host index in
/// `hosts`, which must outlive the region.
struct SharedPlacement {
  SharedHostSet* hosts = nullptr;
  std::vector<int> host_of;
};

class Region : private control::RegionPort {
 public:
  /// Builds and wires the whole region. `load` and `hosts` may be default
  /// (no external load; every worker on its own host).
  ///
  /// Multi-region use: pass a shared `external_sim` so several regions
  /// advance on one virtual timeline, and a SharedPlacement so their
  /// workers contend for the same hosts. Call start() on every region,
  /// then drive the shared simulator directly.
  Region(RegionConfig config, std::unique_ptr<SplitPolicy> policy,
         LoadProfile load = {}, HostModel hosts = {},
         Simulator* external_sim = nullptr, SharedPlacement shared = {});

  /// Arms the splitter and the sampling loop. Idempotent; run_for and
  /// run_until_emitted call it implicitly.
  void start() { ensure_started(); }

  /// Called once per sample period, after the policy has seen the new
  /// counters — the hook the tracing/experiment code uses.
  void set_sample_hook(std::function<void(Region&)> hook) {
    sample_hook_ = std::move(hook);
  }

  /// Registers a one-shot callback fired (from within the merger's emit
  /// path) when the emitted count first reaches `threshold`. Used for
  /// "an eighth through the experiment" load changes, which the paper
  /// defines in units of work, not time.
  void at_emitted(std::uint64_t threshold, std::function<void()> fn);

  /// The region's (mutable) external-load profile; experiments may append
  /// steps at the current time to impose or lift load mid-run.
  LoadProfile& load() { return load_; }

  /// Schedules a fault against this region's virtual timeline. Crash
  /// kills worker j and its connection (buffered/in-service tuples are
  /// lost and skipped by the merger as gaps), quarantines the connection
  /// at the splitter, and tells the policy to renormalize over the
  /// survivors. Recover restores all of that; the policy re-admits the
  /// connection through its normal probing path. Stall pauses delivery
  /// on j's connection for `duration` without losing anything. Faults
  /// are ordinary simulator events, so identical schedules replay
  /// identically. Call before or during a run.
  void inject_fault(const FaultEvent& fault);

  /// Applies a fault immediately (inject_fault's scheduled body).
  void apply_fault_now(FaultKind kind, int worker,
                       DurationNs duration = 0);

  /// Tuples lost to crashes so far (buffered, in flight, or in service
  /// when their worker died). Each becomes a merger gap.
  std::uint64_t lost_tuples() const { return lost_tuples_; }

  /// Tuples shed at the source so far (each one consumed a sequence
  /// number and became a merger gap, so ordering accounting stays exact).
  std::uint64_t shed_tuples() const { return splitter_->shed(); }

  /// Tuples shed during the most recent completed sample period.
  std::uint64_t shed_last_period() const { return shed_last_period_; }

  /// Current watchdog escalation stage (0 = normal, 1 = forced throttle,
  /// 2 = tightened shedding, 3 = safe-mode WRR).
  int watchdog_stage() const { return loop_->watchdog_stage(); }

  /// The region's control loop (DESIGN.md §9): the shared per-period
  /// decision pipeline this region adapts onto the simulator.
  control::RegionControlLoop& control() { return *loop_; }
  const control::RegionControlLoop& control() const { return *loop_; }

  /// Attaches `journal` to the control loop and (through it) the
  /// policy's controller, so the full decision sequence lands in one
  /// place. Not owned; pass nullptr to detach.
  void set_journal(obs::DecisionJournal* journal) {
    loop_->set_journal(journal);
  }

  /// Runs for `duration` of virtual time (starts the pipeline on first
  /// use).
  void run_for(DurationNs duration);

  /// Runs until `target` tuples have been emitted or `deadline` virtual
  /// time passes.
  RunResult run_until_emitted(std::uint64_t target, TimeNs deadline);

  // --- accessors used by experiments and tests -------------------------
  Simulator& simulator() { return *sim_; }
  const Simulator& simulator() const { return *sim_; }
  SplitPolicy& policy() { return *policy_; }
  const SplitPolicy& policy() const { return *policy_; }
  Splitter& splitter() { return *splitter_; }
  Merger& merger() { return *merger_; }
  Worker& worker(int j) { return *workers_[static_cast<std::size_t>(j)]; }
  Channel& channel(int j) { return *channels_[static_cast<std::size_t>(j)]; }
  BlockingCounterSet& counters() { return counters_; }
  const RegionConfig& config() const { return config_; }
  int workers() const { return config_.workers; }

  /// The region's metrics registry (DESIGN.md §8). Populated at
  /// construction when config.metrics is on: "splitter.*", "merger.*",
  /// "worker.<j>.service_ns", "policy.*" (via the policy's attach_metrics),
  /// "region.*" gauges and overload counters. Empty when metrics are off.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  std::uint64_t emitted() const { return merger_->emitted(); }

  /// Tuples emitted during the most recent completed sample period —
  /// the instantaneous region throughput numerator.
  std::uint64_t emitted_last_period() const { return emitted_last_period_; }

  /// Blocking rate per connection over the last completed sample period
  /// (fraction of the period the splitter spent blocked on it).
  double last_period_blocking_rate(int j) const {
    return loop_->last_actions().block_rates[static_cast<std::size_t>(j)];
  }

  /// End-to-end tuple latency (source arrival -> in-order emission):
  /// running mean/min/max over every emitted tuple.
  const RunningStats& latency() const { return latency_; }

  /// Exact latency quantile over a 1-in-8 systematic sample of emitted
  /// tuples (cheap enough to keep for multi-million-tuple runs).
  double latency_quantile(double q) { return latency_samples_.quantile(q); }

  TimeNs now() const { return sim_->now(); }

 private:
  void ensure_started();
  void sample_tick();

  // control::RegionPort (the control loop's view of this region).
  int channels() const override { return config_.workers; }
  std::vector<DurationNs> sample_blocked() override;
  std::vector<std::uint64_t> sample_delivered() override;
  void apply_throttle(double factor) override;
  void apply_shed_watermarks(std::uint64_t high, std::uint64_t low) override;
  control::DeliverySample sample_delivery_state() override;
  bool alo() const {
    return config_.delivery.mode == delivery::DeliveryMode::kAtLeastOnce;
  }

  RegionConfig config_;
  std::unique_ptr<SplitPolicy> policy_;
  LoadProfile load_;
  HostModel hosts_;
  /// Declared before the components that hold handles into it.
  obs::MetricsRegistry metrics_;

  std::unique_ptr<Simulator> owned_sim_;  // null when externally driven
  Simulator* sim_;
  BlockingCounterSet counters_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Merger> merger_;
  std::unique_ptr<Splitter> splitter_;

  /// The shared decision pipeline (DESIGN.md §9); this region is its
  /// RegionPort. Constructed last so it can capture the wired policy.
  std::unique_ptr<control::RegionControlLoop> loop_;

  std::function<void(Region&)> sample_hook_;
  bool started_ = false;

  std::uint64_t prev_emitted_ = 0;
  std::uint64_t emitted_last_period_ = 0;

  RunningStats latency_;
  SampleSet latency_samples_;

  std::uint64_t stop_target_ = 0;
  TimeNs target_reached_at_ = -1;

  std::uint64_t lost_tuples_ = 0;

  std::uint64_t prev_shed_ = 0;
  std::uint64_t shed_last_period_ = 0;

  /// Region-level counter (null when config.metrics is off); the
  /// throttle/watchdog gauges now live in the control loop.
  obs::Counter* lost_counter_ = nullptr;

  struct EmitTrigger {
    std::uint64_t threshold;
    std::function<void()> fn;
    bool fired = false;
  };
  std::vector<EmitTrigger> emit_triggers_;
};

}  // namespace slb::sim
