// Dynamically shared hosts — the substrate for the paper's stated future
// work (Section 8): multiple parallel regions whose worker PEs share
// machines, so one region's activity *is* another region's exogenous
// load.
//
// Unlike HostModel (a static placement factor), a SharedHostSet tracks
// how many workers are busy on each host right now. A worker starting a
// tuple pays an oversubscription factor based on the instantaneous busy
// count: when a co-located region ramps up, everyone on that host slows
// down — which the other regions' controllers observe purely through
// their own blocking rates, with no shared state or coordination.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

namespace slb::sim {

struct SharedHostSpec {
  double speed = 1.0;  // relative per-thread speed
  int threads = 8;     // hardware threads
};

class SharedHostSet {
 public:
  explicit SharedHostSet(std::vector<SharedHostSpec> specs) {
    hosts_.reserve(specs.size());
    for (const SharedHostSpec& spec : specs) {
      assert(spec.speed > 0.0);
      assert(spec.threads > 0);
      hosts_.push_back(Host{spec, 0});
    }
  }

  int hosts() const { return static_cast<int>(hosts_.size()); }
  int busy(int host) const { return at(host).busy; }

  /// Marks one more worker busy on `host` and returns the service-time
  /// factor that worker should pay (oversubscription / speed), evaluated
  /// at the new occupancy.
  double begin_service(int host) {
    Host& h = at(host);
    ++h.busy;
    return factor_at(h, h.busy);
  }

  /// Marks one worker idle again.
  void end_service(int host) {
    Host& h = at(host);
    assert(h.busy > 0);
    --h.busy;
  }

  /// The factor a worker *would* pay if it started now (no state change).
  double peek_factor(int host) const {
    const Host& h = at(host);
    return factor_at(h, h.busy + 1);
  }

 private:
  struct Host {
    SharedHostSpec spec;
    int busy;
  };

  static double factor_at(const Host& h, int busy) {
    const double oversub = std::max(
        1.0, static_cast<double>(busy) / static_cast<double>(h.spec.threads));
    return oversub / h.spec.speed;
  }

  Host& at(int host) {
    assert(host >= 0 && host < hosts());
    return hosts_[static_cast<std::size_t>(host)];
  }
  const Host& at(int host) const {
    assert(host >= 0 && host < hosts());
    return hosts_[static_cast<std::size_t>(host)];
  }

  std::vector<Host> hosts_;
};

}  // namespace slb::sim
