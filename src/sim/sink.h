// Tuple sinks: where a processing entity delivers its output.
//
// Workers deliver to a TupleSink — the in-order Merger inside a parallel
// region, a ChannelSink chaining into the next pipeline stage, or a
// CountingSink terminating the dataflow. The `offer` contract carries
// back pressure: a sink may refuse a tuple (return false), in which case
// the producer holds it and retries when poked via the registered
// space callback.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/channel.h"
#include "sim/tuple.h"

namespace slb::sim {

class TupleSink {
 public:
  virtual ~TupleSink() = default;

  /// Offers a tuple from input port `from`. Returns false when the sink
  /// cannot accept it right now; the producer must hold the tuple and
  /// retry after the on-space callback fires.
  virtual bool offer(int from, Tuple t) = 0;

  /// Registers the producer's wake-up for port `from`.
  virtual void set_on_space(int from, std::function<void()> fn) = 0;
};

/// Terminal sink: accepts everything, counts it, optionally notifies.
class CountingSink : public TupleSink {
 public:
  bool offer(int /*from*/, Tuple t) override {
    ++count_;
    if (on_tuple_) on_tuple_(t);
    return true;
  }

  void set_on_space(int /*from*/, std::function<void()> /*fn*/) override {}

  void set_on_tuple(std::function<void(const Tuple&)> fn) {
    on_tuple_ = std::move(fn);
  }

  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
  std::function<void(const Tuple&)> on_tuple_;
};

/// Adapter: delivers tuples into a downstream Channel's send buffer,
/// refusing while it is full (back pressure between pipeline stages).
class ChannelSink : public TupleSink {
 public:
  explicit ChannelSink(Channel* downstream) : downstream_(downstream) {}

  bool offer(int /*from*/, Tuple t) override {
    if (downstream_->send_full()) return false;
    downstream_->push_send(t);
    return true;
  }

  void set_on_space(int /*from*/, std::function<void()> fn) override {
    downstream_->set_on_send_space(std::move(fn));
  }

 private:
  Channel* downstream_;
};

}  // namespace slb::sim
