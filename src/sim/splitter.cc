#include "sim/splitter.h"

#include <cassert>

namespace slb::sim {

Splitter::Splitter(Simulator* sim, SplitPolicy* policy,
                   DurationNs send_overhead, DurationNs source_interval)
    : sim_(sim),
      policy_(policy),
      send_overhead_(send_overhead),
      source_interval_(source_interval) {
  assert(sim != nullptr);
  assert(policy != nullptr);
  assert(send_overhead > 0);  // zero would allow infinite same-instant sends
  assert(source_interval >= 0);
}

void Splitter::wire(std::vector<Channel*> channels,
                    BlockingCounterSet* counters) {
  assert(channels_.empty());
  assert(counters != nullptr);
  assert(counters->size() == channels.size());
  channels_ = std::move(channels);
  counters_ = counters;
  sent_.assign(channels_.size(), 0);
  blocks_.assign(channels_.size(), 0);
  chan_up_.assign(channels_.size(), 1);
  for (std::size_t j = 0; j < channels_.size(); ++j) {
    channels_[j]->set_on_send_space(
        [this, j] { on_send_space(static_cast<int>(j)); });
  }
}

void Splitter::start() {
  // The source starts producing now, not at the epoch (matters when a
  // region joins a shared timeline late).
  next_release_ = sim_->now();
  sim_->schedule_after(0, [this] { next_send(); });
}

void Splitter::set_input(Channel* input) {
  assert(input != nullptr);
  input_ = input;
  input_->set_on_recv_ready([this] {
    // New upstream data: resume if we were idle waiting for input (not
    // blocked on a full output channel — that wake-up comes separately).
    if (idle_for_input_) {
      idle_for_input_ = false;
      next_send();
    }
  });
}

void Splitter::set_throttle(double factor) {
  assert(factor > 0.0 && factor <= 1.0);
  throttle_ = factor;
}

void Splitter::set_shed_watermarks(std::uint64_t high, std::uint64_t low) {
  assert(low <= high);
  shed_high_ = high;
  shed_low_ = low;
}

void Splitter::shed_backlog() {
  if (shed_high_ == 0 || source_interval_ <= 0 || input_ != nullptr) return;
  std::uint64_t backlog = source_backlog(sim_->now());
  if (backlog < shed_high_) return;
  // Drop the oldest backlog tuples — they have already waited longest and
  // in a streaming region stale data is the least valuable. Each one
  // consumes the sequence number it would have carried, so the merger's
  // gap accounting stays exact.
  while (backlog > shed_low_) {
    const std::uint64_t seq = next_seq_++;
    ++shed_;
    if (metrics_.shed != nullptr) metrics_.shed->inc();
    next_release_ += source_interval_;
    --backlog;
    if (on_shed_) on_shed_(seq);
  }
}

void Splitter::next_send() {
  assert(blocked_on_ < 0);
  if (input_ != nullptr && input_->recv_empty()) {
    idle_for_input_ = true;  // wait for the upstream stage
    return;
  }
  shed_backlog();
  int j = policy_->pick_connection();
  assert(j >= 0 && j < static_cast<int>(channels_.size()));
  const int n = static_cast<int>(channels_.size());

  if (!chan_up_[static_cast<std::size_t>(j)]) {
    // Quarantined connection: fail over to the next live one. The policy
    // already zeroed its weight, but smooth-WRR state and in-flight
    // routing decisions can still name it for a short window.
    int live = -1;
    for (int step = 1; step < n; ++step) {
      const int k = (j + step) % n;
      if (chan_up_[static_cast<std::size_t>(k)]) {
        live = k;
        break;
      }
    }
    if (live < 0) {
      // Total outage: park until a connection returns.
      idle_no_channel_ = true;
      return;
    }
    ++failovers_;
    if (metrics_.failovers != nullptr) metrics_.failovers->inc();
    j = live;
  }

  if (!channels_[static_cast<std::size_t>(j)]->send_full()) {
    do_send(j);
    return;
  }

  if (policy_->reroute_on_block()) {
    // Section 4.4 baseline: divert to any connection with buffer space.
    for (int step = 1; step < n; ++step) {
      const int k = (j + step) % n;
      if (!chan_up_[static_cast<std::size_t>(k)]) continue;
      if (!channels_[static_cast<std::size_t>(k)]->send_full()) {
        ++rerouted_;
        if (metrics_.rerouted != nullptr) metrics_.rerouted->inc();
        do_send(k);
        return;
      }
    }
  }

  // Elect to block (Section 4.4: "we detect when a TCP send will block,
  // and then we block anyway, just making sure to record how long").
  blocked_on_ = j;
  block_start_ = sim_->now();
  ++blocks_[static_cast<std::size_t>(j)];
  if (metrics_.blocks != nullptr) metrics_.blocks->inc();
}

void Splitter::do_send(int j) {
  Tuple t;
  if (input_ != nullptr) {
    // Forwarded tuple: restamp the sequence, keep the original arrival
    // time so end-to-end latency survives region boundaries.
    t = input_->pop_recv();
  } else {
    // Source tuple: arrival = nominal release time for an open-loop
    // source (arrears count as waiting), or "now" for a closed loop.
    t.created = source_interval_ > 0 ? next_release_ : sim_->now();
  }
  t.seq = next_seq_++;
  channels_[static_cast<std::size_t>(j)]->push_send(t);
  ++sent_[static_cast<std::size_t>(j)];
  ++total_sent_;
  if (metrics_.sent != nullptr) metrics_.sent->inc();
  DurationNs gap = send_overhead_;
  if (throttle_ < 1.0) {
    // Admission control: stretch the per-send overhead so the closed-loop
    // source offers only `throttle_` of its full rate.
    gap = static_cast<DurationNs>(static_cast<double>(send_overhead_) /
                                  throttle_);
  }
  TimeNs next = sim_->now() + gap;
  if (source_interval_ > 0) {
    // Open loop: the next tuple is only available at its release time.
    // Arrears accumulated while we were blocked drain at full speed.
    next_release_ += source_interval_;
    next = std::max(next, next_release_);
  }
  sim_->schedule_at(next, [this] { next_send(); });
}

void Splitter::set_channel_up(int j, bool up) {
  const auto sj = static_cast<std::size_t>(j);
  if ((chan_up_[sj] != 0) == up) return;
  chan_up_[sj] = up ? 1 : 0;
  if (!up) {
    if (blocked_on_ == j) {
      // Blocked on the connection that just died: charge the wait (the
      // real splitter's timed select returns with an error here) and
      // move on to a survivor immediately.
      counters_->at(sj).add(sim_->now() - block_start_);
      if (metrics_.block_ns != nullptr) {
        metrics_.block_ns->record(
            static_cast<std::uint64_t>(sim_->now() - block_start_));
      }
      blocked_on_ = -1;
      sim_->schedule_after(0, [this] { next_send(); });
    }
    return;
  }
  if (idle_no_channel_) {
    idle_no_channel_ = false;
    sim_->schedule_after(0, [this] { next_send(); });
  }
}

void Splitter::on_send_space(int j) {
  if (blocked_on_ != j) return;
  if (channels_[static_cast<std::size_t>(j)]->send_full()) return;
  counters_->at(static_cast<std::size_t>(j))
      .add(sim_->now() - block_start_);
  if (metrics_.block_ns != nullptr) {
    metrics_.block_ns->record(
        static_cast<std::uint64_t>(sim_->now() - block_start_));
  }
  blocked_on_ = -1;
  do_send(j);
}

}  // namespace slb::sim
