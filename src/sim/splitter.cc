#include "sim/splitter.h"

#include <algorithm>
#include <cassert>

namespace slb::sim {

Splitter::Splitter(Simulator* sim, SplitPolicy* policy,
                   DurationNs send_overhead, DurationNs source_interval)
    : sim_(sim),
      policy_(policy),
      send_overhead_(send_overhead),
      source_interval_(source_interval) {
  assert(sim != nullptr);
  assert(policy != nullptr);
  assert(send_overhead > 0);  // zero would allow infinite same-instant sends
  assert(source_interval >= 0);
}

void Splitter::wire(std::vector<Channel*> channels,
                    BlockingCounterSet* counters) {
  assert(channels_.empty());
  assert(counters != nullptr);
  assert(counters->size() == channels.size());
  channels_ = std::move(channels);
  counters_ = counters;
  sent_.assign(channels_.size(), 0);
  blocks_.assign(channels_.size(), 0);
  chan_up_.assign(channels_.size(), 1);
  for (std::size_t j = 0; j < channels_.size(); ++j) {
    channels_[j]->set_on_send_space(
        [this, j] { on_send_space(static_cast<int>(j)); });
  }
}

void Splitter::start() {
  // The source starts producing now, not at the epoch (matters when a
  // region joins a shared timeline late).
  next_release_ = sim_->now();
  sim_->schedule_after(0, [this] { next_send(); });
}

void Splitter::set_input(Channel* input) {
  assert(input != nullptr);
  input_ = input;
  input_->set_on_recv_ready([this] {
    // New upstream data: resume if we were idle waiting for input (not
    // blocked on a full output channel — that wake-up comes separately).
    if (idle_for_input_) {
      idle_for_input_ = false;
      next_send();
    }
  });
}

void Splitter::set_delivery(delivery::DeliveryMode mode,
                            std::size_t replay_buffer_bytes,
                            std::size_t tuple_bytes) {
  assert(!channels_.empty());  // call after wire()
  assert(tuple_bytes > 0);
  mode_ = mode;
  tuple_bytes_ = tuple_bytes;
  replay_.clear();
  if (alo()) {
    for (std::size_t j = 0; j < channels_.size(); ++j) {
      replay_.emplace_back(replay_buffer_bytes);
    }
  }
}

void Splitter::on_ack(std::uint64_t cum) {
  if (!alo() || cum <= acked_) return;
  acked_ = cum;
  for (auto& rb : replay_) rb.ack(cum);
  // Replays whose sequence released while they waited are already at the
  // sink; re-sending them would only make dedup work for the merger.
  while (!replay_pending_.empty() && replay_pending_.front().seq < cum) {
    replay_pending_.pop_front();
  }
  update_delivery_gauges();
  // A trimmed buffer may end a replay-full blocking episode — the same
  // wake-up a freed send buffer gives, charged the same way.
  if (blocked_on_ >= 0) {
    const int j = blocked_on_;
    if (!channels_[static_cast<std::size_t>(j)]->send_full() &&
        !replay_full(j)) {
      unblock_and_send();
    }
  }
}

Splitter::ReplaySummary Splitter::replay_channel(int j) {
  ReplaySummary summary;
  if (!alo()) return summary;
  auto entries = replay_[static_cast<std::size_t>(j)].take_all();
  for (auto& e : entries) {
    if (e.seq < acked_) continue;  // released before the crash hit
    ++summary.tuples;
    summary.bytes += e.bytes;
    replay_pending_.push_back(e.payload);
  }
  // Oldest sequence first: the merger is gating on the lowest missing
  // sequence, and a prior replay may already sit queued behind newer
  // entries from this channel.
  std::sort(replay_pending_.begin(), replay_pending_.end(),
            [](const Tuple& a, const Tuple& b) { return a.seq < b.seq; });
  update_delivery_gauges();
  if (idle_for_input_ && !replay_pending_.empty()) {
    // Mid-pipeline splitter parked waiting for upstream data: the replay
    // queue is sendable without input, so resume.
    idle_for_input_ = false;
    sim_->schedule_after(0, [this] { next_send(); });
  }
  return summary;
}

std::uint64_t Splitter::unacked() const {
  std::uint64_t total = replay_pending_.size();
  for (const auto& rb : replay_) total += rb.size();
  return total;
}

std::size_t Splitter::replay_bytes() const {
  std::size_t total = 0;
  for (const auto& rb : replay_) total += rb.bytes();
  return total;
}

void Splitter::update_delivery_gauges() {
  if (metrics_.replay_bytes != nullptr) {
    metrics_.replay_bytes->set(static_cast<std::int64_t>(replay_bytes()));
  }
  if (metrics_.ack_lag != nullptr) {
    metrics_.ack_lag->set(static_cast<std::int64_t>(next_seq_ - acked_));
  }
}

void Splitter::set_throttle(double factor) {
  assert(factor > 0.0 && factor <= 1.0);
  throttle_ = factor;
}

void Splitter::set_shed_watermarks(std::uint64_t high, std::uint64_t low) {
  assert(low <= high);
  shed_high_ = high;
  shed_low_ = low;
}

void Splitter::shed_backlog() {
  if (shed_high_ == 0 || source_interval_ <= 0 || input_ != nullptr) return;
  std::uint64_t backlog = source_backlog(sim_->now());
  if (backlog < shed_high_) return;
  // Drop the oldest backlog tuples — they have already waited longest and
  // in a streaming region stale data is the least valuable. Each one
  // consumes the sequence number it would have carried, so the merger's
  // gap accounting stays exact.
  while (backlog > shed_low_) {
    const std::uint64_t seq = next_seq_++;
    ++shed_;
    if (metrics_.shed != nullptr) metrics_.shed->inc();
    next_release_ += source_interval_;
    --backlog;
    if (on_shed_) on_shed_(seq);
  }
}

void Splitter::next_send() {
  assert(blocked_on_ < 0);
  // Crash replays outrank fresh tuples (the merger is gating on them)
  // and need no source input.
  const bool replaying = !replay_pending_.empty();
  if (!replaying) {
    if (input_ != nullptr && input_->recv_empty()) {
      idle_for_input_ = true;  // wait for the upstream stage
      return;
    }
    shed_backlog();
  }
  int j = policy_->pick_connection();
  assert(j >= 0 && j < static_cast<int>(channels_.size()));
  const int n = static_cast<int>(channels_.size());

  if (!chan_up_[static_cast<std::size_t>(j)]) {
    // Quarantined connection: fail over to the next live one. The policy
    // already zeroed its weight, but smooth-WRR state and in-flight
    // routing decisions can still name it for a short window.
    int live = -1;
    for (int step = 1; step < n; ++step) {
      const int k = (j + step) % n;
      if (chan_up_[static_cast<std::size_t>(k)]) {
        live = k;
        break;
      }
    }
    if (live < 0) {
      // Total outage: park until a connection returns.
      idle_no_channel_ = true;
      return;
    }
    ++failovers_;
    if (metrics_.failovers != nullptr) metrics_.failovers->inc();
    j = live;
  }

  // A full replay buffer back-pressures exactly like a full send buffer:
  // the source blocks, the wait lands in j's blocking counter, and the
  // blocking-rate signal stays truthful (DESIGN.md §10).
  if (!channels_[static_cast<std::size_t>(j)]->send_full() &&
      !replay_full(j)) {
    do_send(j);
    return;
  }

  if (policy_->reroute_on_block()) {
    // Section 4.4 baseline: divert to any connection with buffer space.
    for (int step = 1; step < n; ++step) {
      const int k = (j + step) % n;
      if (!chan_up_[static_cast<std::size_t>(k)]) continue;
      if (!channels_[static_cast<std::size_t>(k)]->send_full() &&
          !replay_full(k)) {
        ++rerouted_;
        if (metrics_.rerouted != nullptr) metrics_.rerouted->inc();
        do_send(k);
        return;
      }
    }
  }

  // Elect to block (Section 4.4: "we detect when a TCP send will block,
  // and then we block anyway, just making sure to record how long").
  blocked_on_ = j;
  block_start_ = sim_->now();
  ++blocks_[static_cast<std::size_t>(j)];
  if (metrics_.blocks != nullptr) metrics_.blocks->inc();
}

void Splitter::do_send(int j) {
  Tuple t;
  bool retransmit = false;
  if (!replay_pending_.empty()) {
    // Crash replay: the sequence (and arrival stamp) survive — the sink
    // must not be able to tell a retransmission from the original.
    t = replay_pending_.front();
    replay_pending_.pop_front();
    retransmit = true;
  } else if (input_ != nullptr) {
    // Forwarded tuple: restamp the sequence, keep the original arrival
    // time so end-to-end latency survives region boundaries.
    t = input_->pop_recv();
    t.seq = next_seq_++;
  } else {
    // Source tuple: arrival = nominal release time for an open-loop
    // source (arrears count as waiting), or "now" for a closed loop.
    t.created = source_interval_ > 0 ? next_release_ : sim_->now();
    t.seq = next_seq_++;
  }
  channels_[static_cast<std::size_t>(j)]->push_send(t);
  if (alo()) {
    replay_[static_cast<std::size_t>(j)].push(t.seq, tuple_bytes_, t);
    update_delivery_gauges();
  }
  if (retransmit) {
    // Not counted as sent: sent/total_sent track fresh sequences, so the
    // throughput signal and conservation identities stay in sequence
    // space (emitted + gaps == sent + shed).
    ++retransmits_;
    if (metrics_.retransmits != nullptr) metrics_.retransmits->inc();
  } else {
    ++sent_[static_cast<std::size_t>(j)];
    ++total_sent_;
    if (metrics_.sent != nullptr) metrics_.sent->inc();
  }
  DurationNs gap = send_overhead_;
  if (throttle_ < 1.0) {
    // Admission control: stretch the per-send overhead so the closed-loop
    // source offers only `throttle_` of its full rate.
    gap = static_cast<DurationNs>(static_cast<double>(send_overhead_) /
                                  throttle_);
  }
  TimeNs next = sim_->now() + gap;
  if (source_interval_ > 0) {
    // Open loop: the next *fresh* tuple is only available at its release
    // time (retransmits consumed no source release). Arrears accumulated
    // while we were blocked drain at full speed.
    if (!retransmit) next_release_ += source_interval_;
    if (replay_pending_.empty()) next = std::max(next, next_release_);
  }
  sim_->schedule_at(next, [this] { next_send(); });
}

void Splitter::set_channel_up(int j, bool up) {
  const auto sj = static_cast<std::size_t>(j);
  if ((chan_up_[sj] != 0) == up) return;
  chan_up_[sj] = up ? 1 : 0;
  if (!up) {
    if (blocked_on_ == j) {
      // Blocked on the connection that just died: charge the wait (the
      // real splitter's timed select returns with an error here) and
      // move on to a survivor immediately.
      counters_->at(sj).add(sim_->now() - block_start_);
      if (metrics_.block_ns != nullptr) {
        metrics_.block_ns->record(
            static_cast<std::uint64_t>(sim_->now() - block_start_));
      }
      blocked_on_ = -1;
      sim_->schedule_after(0, [this] { next_send(); });
    }
    return;
  }
  if (idle_no_channel_) {
    idle_no_channel_ = false;
    sim_->schedule_after(0, [this] { next_send(); });
  }
}

void Splitter::on_send_space(int j) {
  if (blocked_on_ != j) return;
  if (channels_[static_cast<std::size_t>(j)]->send_full()) return;
  if (replay_full(j)) return;  // still waiting on an ack to trim
  unblock_and_send();
}

void Splitter::unblock_and_send() {
  const int j = blocked_on_;
  counters_->at(static_cast<std::size_t>(j))
      .add(sim_->now() - block_start_);
  if (metrics_.block_ns != nullptr) {
    metrics_.block_ns->record(
        static_cast<std::uint64_t>(sim_->now() - block_start_));
  }
  blocked_on_ = -1;
  do_send(j);
}

}  // namespace slb::sim
