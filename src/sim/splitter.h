// The simulated splitter: a single thread of control distributing tuples
// over per-worker connections (paper Sections 2–4).
//
// The single-threadedness is load-bearing: because one control flow sends
// to all connections, blocking on one connection gives every other
// connection slack — the origin of the *drafting* phenomenon (Section
// 4.2). The splitter here is a state machine driven by simulator events:
//
//   * every `send_overhead` ns it asks its SplitPolicy for a target and
//     pushes one tuple (closed-loop source: tuples are always available,
//     matching the paper's throughput-bound experiments);
//   * when the chosen connection's send buffer is full it BLOCKS — and
//     records exactly how long, in that connection's BlockingCounter
//     (the paper's MSG_DONTWAIT + timed select, Section 3);
//   * if the policy enables transport-level re-routing (Section 4.4's
//     failed baseline) it instead scans for any connection with space and
//     only blocks when all are full.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/blocking_counter.h"
#include "core/policies.h"
#include "delivery/delivery.h"
#include "delivery/replay_buffer.h"
#include "obs/metrics.h"
#include "sim/channel.h"
#include "sim/event.h"
#include "sim/tuple.h"
#include "util/time.h"

namespace slb::sim {

/// Registry handles for the splitter's hot-path events (DESIGN.md §8).
/// All pointers optional; a null member disables that metric. The
/// pointed-to registry must outlive the splitter.
struct SplitterMetrics {
  obs::Counter* sent = nullptr;       // tuples pushed to any channel
  obs::Counter* blocks = nullptr;     // distinct blocking episodes
  obs::Histogram* block_ns = nullptr; // per-episode blocked duration
  obs::Counter* failovers = nullptr;  // diverted off quarantined channels
  obs::Counter* rerouted = nullptr;   // Section 4.4 block-time diversions
  obs::Counter* shed = nullptr;       // source tuples dropped by watermarks
  obs::Counter* retransmits = nullptr;  // replayed sends (at-least-once)
  obs::Gauge* replay_bytes = nullptr;   // bytes held across replay buffers
  obs::Gauge* ack_lag = nullptr;        // next_seq - cumulative ack
};

class Splitter {
 public:
  /// @param source_interval mean inter-arrival gap of the upstream tuple
  ///   source: 0 = closed loop (a tuple is always ready — the paper's
  ///   throughput-bound experiments); > 0 = open loop at rate
  ///   1/source_interval, with arrears bursting out after blocking, like
  ///   a real upstream stage's queue.
  Splitter(Simulator* sim, SplitPolicy* policy, DurationNs send_overhead,
           DurationNs source_interval = 0);

  /// Connects the splitter to its channels and the region's blocking
  /// counters. Must be called once before start().
  void wire(std::vector<Channel*> channels, BlockingCounterSet* counters);

  /// Mid-pipeline mode: instead of generating tuples (closed loop /
  /// paced source), the splitter forwards tuples arriving on `input`,
  /// restamping their sequence numbers in arrival order (which preserves
  /// end-to-end order through the region's merger). Call before start().
  void set_input(Channel* input);

  /// Schedules the first send at the current time.
  void start();

  /// Failure handling: marks connection j dead (quarantined) or alive
  /// again. A quarantined connection is never routed to; a splitter
  /// blocked on it is released immediately (the wait is charged to j's
  /// blocking counter, exactly like a normal un-block). If every
  /// connection is down the splitter idles until one comes back.
  void set_channel_up(int j, bool up);
  bool channel_up(int j) const {
    return chan_up_[static_cast<std::size_t>(j)] != 0;
  }

  std::uint64_t total_sent() const { return total_sent_; }
  std::uint64_t sent(int j) const {
    return sent_[static_cast<std::size_t>(j)];
  }
  /// Tuples diverted by the Section 4.4 re-routing baseline.
  std::uint64_t rerouted() const { return rerouted_; }
  /// Tuples diverted because their picked connection was quarantined.
  std::uint64_t failovers() const { return failovers_; }
  /// Number of distinct blocking episodes per connection.
  std::uint64_t blocks(int j) const {
    return blocks_[static_cast<std::size_t>(j)];
  }
  bool blocked() const { return blocked_on_ >= 0; }
  int blocked_on() const { return blocked_on_; }

  /// Open-loop sources only: how many released-but-unsent tuples are
  /// queued at the source right now (0 for closed-loop sources). A
  /// growing backlog means the region cannot sustain the offered rate.
  std::uint64_t source_backlog(TimeNs now) const {
    if (source_interval_ <= 0 || now <= next_release_) return 0;
    return static_cast<std::uint64_t>((now - next_release_) /
                                      source_interval_);
  }

  /// Admission control (closed-loop sources): scales the source's tuple
  /// rate to `factor` (in (0, 1]) of full speed by stretching the per-send
  /// overhead. 1.0 restores full speed. No effect on open-loop release
  /// times — an external source cannot be slowed down, only shed.
  void set_throttle(double factor);
  double throttle() const { return throttle_; }

  /// Load shedding (open-loop sources): when the source backlog reaches
  /// `high`, drop backlog tuples (oldest first) until it is back at `low`.
  /// Every shed tuple still consumes a sequence number and is reported
  /// through `on_shed`, so the ordered merger can account it as a gap and
  /// `emitted + gaps == sent + shed` stays an invariant. `high == 0`
  /// disables shedding.
  void set_shed_watermarks(std::uint64_t high, std::uint64_t low);
  void set_on_shed(std::function<void(std::uint64_t seq)> fn) {
    on_shed_ = std::move(fn);
  }
  /// Total tuples shed at the source so far.
  std::uint64_t shed() const { return shed_; }

  /// Observability: attach registry handles (see SplitterMetrics). The
  /// splitter keeps updating its own counters either way; metrics are a
  /// parallel, thread-safe view for exporters.
  void set_metrics(const SplitterMetrics& metrics) { metrics_ = metrics; }

  // --- At-least-once delivery (DESIGN.md §10) --------------------------

  /// Arms at-least-once delivery: every sent tuple is held in its
  /// channel's byte-capped replay buffer until acked. Call after wire(),
  /// before start(). `tuple_bytes` is the accounting size of one tuple
  /// (the sim has no wire encoding; sizeof(Tuple) by default).
  void set_delivery(delivery::DeliveryMode mode,
                    std::size_t replay_buffer_bytes,
                    std::size_t tuple_bytes = sizeof(Tuple));

  /// Cumulative ack from the merger: every sequence below `cum` has been
  /// released. Trims the replay buffers, drops pending replays that
  /// released meanwhile, and — if the splitter was blocked on a channel
  /// whose replay buffer just drained — resumes it.
  void on_ack(std::uint64_t cum);

  struct ReplaySummary {
    std::uint64_t tuples = 0;
    std::uint64_t bytes = 0;
  };

  /// Crash recovery: moves channel j's unacked suffix into the pending
  /// replay queue, drained (oldest sequence first) before fresh source
  /// tuples through the normal pick path — so retransmits respect the
  /// current RAP weights via the same WRR as everything else.
  ReplaySummary replay_channel(int j);

  /// Tuples re-sent after crash replay. Disjoint from total_sent():
  /// sent counters track fresh sequences only, so the throughput signal
  /// and per-channel signatures are unchanged by retransmission.
  std::uint64_t retransmits() const { return retransmits_; }
  /// Highest cumulative ack seen from the merger.
  std::uint64_t acked() const { return acked_; }
  /// Tuples held for replay: buffered unacked + pending re-send.
  std::uint64_t unacked() const;
  /// Bytes held across all replay buffers.
  std::size_t replay_bytes() const;
  /// Pending (crash-replayed, not yet re-sent) tuples.
  std::size_t replay_pending() const { return replay_pending_.size(); }

 private:
  void next_send();
  void do_send(int j);
  void on_send_space(int j);
  void shed_backlog();
  bool alo() const {
    return mode_ == delivery::DeliveryMode::kAtLeastOnce;
  }
  /// True when channel j's replay buffer cannot admit the next tuple.
  bool replay_full(int j) const {
    return alo() &&
           replay_[static_cast<std::size_t>(j)].would_block(tuple_bytes_);
  }
  /// Ends the current blocking episode (charging channel
  /// `blocked_on_`'s counter) and sends on it.
  void unblock_and_send();
  void update_delivery_gauges();

  Simulator* sim_;
  SplitPolicy* policy_;
  DurationNs send_overhead_;
  DurationNs source_interval_;
  TimeNs next_release_ = 0;
  double throttle_ = 1.0;
  std::uint64_t shed_high_ = 0;
  std::uint64_t shed_low_ = 0;
  std::uint64_t shed_ = 0;
  std::function<void(std::uint64_t)> on_shed_;
  Channel* input_ = nullptr;
  std::vector<Channel*> channels_;
  BlockingCounterSet* counters_ = nullptr;

  SplitterMetrics metrics_;

  /// At-least-once state (empty/zero in GapSkip mode).
  delivery::DeliveryMode mode_ = delivery::DeliveryMode::kGapSkip;
  std::size_t tuple_bytes_ = sizeof(Tuple);
  std::vector<delivery::ReplayBuffer<Tuple>> replay_;
  /// Crash-replayed tuples awaiting re-send, oldest sequence first;
  /// drained before fresh source tuples.
  std::deque<Tuple> replay_pending_;
  std::uint64_t acked_ = 0;
  std::uint64_t retransmits_ = 0;

  std::uint64_t next_seq_ = 0;
  std::uint64_t total_sent_ = 0;
  std::uint64_t rerouted_ = 0;
  std::uint64_t failovers_ = 0;
  std::vector<std::uint64_t> sent_;
  std::vector<std::uint64_t> blocks_;
  std::vector<char> chan_up_;

  int blocked_on_ = -1;
  TimeNs block_start_ = 0;
  bool idle_for_input_ = false;
  /// True while every connection is quarantined: the splitter parks and
  /// resumes from set_channel_up(j, true).
  bool idle_no_channel_ = false;
};

}  // namespace slb::sim
