#include "sim/trace.h"

#include <cstdio>
#include <sstream>

#include "util/csv.h"

namespace slb::sim {

void TraceRecorder::attach(Region& region) {
  region.set_sample_hook([this](Region& r) {
    TraceRow row;
    row.paper_s = scale_.to_paper_seconds(r.now());
    row.weights = r.policy().weights();
    row.block_rates.reserve(static_cast<std::size_t>(r.workers()));
    for (int j = 0; j < r.workers(); ++j) {
      row.block_rates.push_back(r.last_period_blocking_rate(j));
    }
    if (const auto* lb =
            dynamic_cast<const LoadBalancingPolicy*>(&r.policy())) {
      const Clusters& clusters = lb->controller().status().clusters;
      if (!clusters.empty()) {
        row.cluster_of.assign(static_cast<std::size_t>(r.workers()), -1);
        for (std::size_t c = 0; c < clusters.size(); ++c) {
          for (ConnectionId j : clusters[c]) {
            row.cluster_of[static_cast<std::size_t>(j)] =
                static_cast<int>(c);
          }
        }
      }
    }
    row.emitted_in_period = r.emitted_last_period();
    row.shed_in_period = r.shed_last_period();
    row.overloaded = r.policy().overload_state().overloaded;
    rows_.push_back(std::move(row));
  });
}

bool TraceRecorder::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  if (!csv.ok()) return false;
  if (rows_.empty()) return true;
  const std::size_t n = rows_.front().weights.size();
  // Cluster columns are included if ANY row carries assignments (the
  // first few periods never do — the controller has no data yet); rows
  // without assignments write -1.
  bool any_clusters = false;
  for (const TraceRow& row : rows_) {
    if (!row.cluster_of.empty()) {
      any_clusters = true;
      break;
    }
  }
  std::vector<std::string> header{"paper_s"};
  for (std::size_t j = 0; j < n; ++j) header.push_back("w" + std::to_string(j));
  for (std::size_t j = 0; j < n; ++j) header.push_back("rate" + std::to_string(j));
  if (any_clusters) {
    for (std::size_t j = 0; j < n; ++j) {
      header.push_back("cluster" + std::to_string(j));
    }
  }
  header.push_back("emitted");
  header.push_back("shed");
  header.push_back("overloaded");
  csv.header(header);
  for (const TraceRow& row : rows_) {
    std::vector<double> cells{row.paper_s};
    for (Weight w : row.weights) cells.push_back(static_cast<double>(w));
    for (double r : row.block_rates) cells.push_back(r);
    if (any_clusters) {
      for (std::size_t j = 0; j < n; ++j) {
        cells.push_back(j < row.cluster_of.size()
                            ? static_cast<double>(row.cluster_of[j])
                            : -1.0);
      }
    }
    cells.push_back(static_cast<double>(row.emitted_in_period));
    cells.push_back(static_cast<double>(row.shed_in_period));
    cells.push_back(row.overloaded ? 1.0 : 0.0);
    csv.row(cells);
  }
  return true;
}

std::string TraceRecorder::render_weights(int stride) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < rows_.size();
       i += static_cast<std::size_t>(stride)) {
    const TraceRow& row = rows_[i];
    char ts[32];
    std::snprintf(ts, sizeof(ts), "t=%7.1fs |", row.paper_s);
    out << ts;
    for (Weight w : row.weights) {
      char cell[16];
      std::snprintf(cell, sizeof(cell), " %4d", w);
      out << cell;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace slb::sim
