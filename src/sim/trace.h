// Per-period tracing for the paper's in-depth figures (8, 11 top, 12):
// allocation weight and blocking rate per connection over time, plus
// cluster assignments for the clustering heatmap.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "sim/harness.h"
#include "sim/region.h"

namespace slb::sim {

/// One sampling period's snapshot.
struct TraceRow {
  double paper_s = 0.0;
  WeightVector weights;             // per connection, 0.1% units
  std::vector<double> block_rates;  // per connection, fraction of period
  std::vector<int> cluster_of;      // per connection; empty if no clustering
  std::uint64_t emitted_in_period = 0;
  std::uint64_t shed_in_period = 0;  // source tuples shed (overload mode)
  bool overloaded = false;           // policy's declared overload state
};

/// Records one row per sample period via the region's sample hook.
class TraceRecorder {
 public:
  explicit TraceRecorder(const Scale& scale) : scale_(scale) {}

  /// Installs this recorder on a region (replaces any prior hook).
  void attach(Region& region);

  const std::vector<TraceRow>& rows() const { return rows_; }

  /// Writes the trace as CSV: paper_s, w0..wN-1, r0..rN-1, emitted.
  /// Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Renders a compact textual summary of weight trajectories: one line
  /// per `stride` periods, for console output in the figure benches.
  std::string render_weights(int stride = 10) const;

 private:
  Scale scale_;
  std::vector<TraceRow> rows_;
};

}  // namespace slb::sim
