// The unit of streaming data. The splitter stamps the sequence number at
// send time and the merger restores global sequence order before
// emitting (sequential semantics). `created` is the tuple's arrival time
// at the region's source — for an open-loop source, its nominal release
// time, so source-side queueing counts toward latency — and rides along
// so the merger can report end-to-end latency.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace slb::sim {

struct Tuple {
  std::uint64_t seq = 0;
  TimeNs created = 0;
};

}  // namespace slb::sim
