#include "sim/worker.h"

#include <cassert>
#include <cmath>

namespace slb::sim {

Worker::Worker(Simulator* sim, int id, DurationNs base_cost,
               const LoadProfile* load, const HostModel* hosts)
    : sim_(sim), id_(id), base_cost_(base_cost), load_(load), hosts_(hosts) {
  assert(sim != nullptr);
  assert(base_cost > 0);
}

void Worker::wire(Channel* channel, TupleSink* sink, int port) {
  assert(channel_ == nullptr && sink_ == nullptr);
  channel_ = channel;
  sink_ = sink;
  port_ = port < 0 ? id_ : port;
  channel_->set_on_recv_ready([this] { poll(); });
  sink_->set_on_space(port_, [this] { poll(); });
}

void Worker::bind_shared_host(SharedHostSet* hosts, int host) {
  assert(hosts != nullptr);
  assert(host >= 0 && host < hosts->hosts());
  shared_hosts_ = hosts;
  shared_host_ = host;
}

DurationNs Worker::current_service_time() const {
  double factor = 1.0;
  if (load_ != nullptr) factor *= load_->at(id_, sim_->now());
  if (shared_hosts_ != nullptr) {
    factor *= shared_hosts_->peek_factor(shared_host_);
  } else if (hosts_ != nullptr) {
    factor *= hosts_->factor(id_);
  }
  const double ns = static_cast<double>(base_cost_) * factor;
  return static_cast<DurationNs>(std::llround(ns));
}

void Worker::poll() {
  if (down_) return;
  if (holding_) {
    if (!sink_->offer(port_, held_)) return;  // still stalled
    holding_ = false;
  }
  if (!busy_ && !channel_->recv_empty()) {
    const Tuple t = channel_->pop_recv();
    busy_ = true;
    double factor = 1.0;
    if (load_ != nullptr) factor *= load_->at(id_, sim_->now());
    if (shared_hosts_ != nullptr) {
      factor *= shared_hosts_->begin_service(shared_host_);
    } else if (hosts_ != nullptr) {
      factor *= hosts_->factor(id_);
    }
    const auto service = static_cast<DurationNs>(
        std::llround(static_cast<double>(base_cost_) * factor));
    if (service_hist_ != nullptr) {
      service_hist_->record(static_cast<std::uint64_t>(service));
    }
    sim_->schedule_after(service, [this, t, epoch = epoch_] {
      if (epoch != epoch_) {
        // The PE died while this tuple was in service.
        if (on_lost_) on_lost_(t);
        return;
      }
      finish(t);
    });
  }
}

void Worker::crash() {
  if (down_) return;
  down_ = true;
  ++epoch_;
  if (busy_ && shared_hosts_ != nullptr) {
    shared_hosts_->end_service(shared_host_);  // release the host slot
  }
  busy_ = false;
  if (holding_) {
    holding_ = false;
    if (on_lost_) on_lost_(held_);
  }
}

void Worker::recover() {
  if (!down_) return;
  down_ = false;
  poll();
}

void Worker::finish(Tuple t) {
  busy_ = false;
  ++processed_;
  if (shared_hosts_ != nullptr) shared_hosts_->end_service(shared_host_);
  if (!sink_->offer(port_, t)) {
    holding_ = true;
    held_ = t;
    return;  // the sink will poke us when space frees
  }
  poll();
}

}  // namespace slb::sim
