// A simulated worker PE: pulls tuples from its connection's receive
// buffer, "processes" them for a service time, and offers results to the
// merger. Stateless, as the paper requires of data-parallel regions.
//
// Service time = base_cost x external-load multiplier (LoadProfile)
//              x host factor (HostModel: speed + oversubscription).
// If the merger's reorder queue is full the worker stalls holding its
// result — the back-pressure link that ultimately surfaces as splitter
// blocking.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/metrics.h"
#include "sim/channel.h"
#include "sim/event.h"
#include "sim/host.h"
#include "sim/load_profile.h"
#include "sim/merger.h"
#include "sim/shared_host.h"
#include "sim/sink.h"
#include "sim/tuple.h"
#include "util/time.h"

namespace slb::sim {

class Worker {
 public:
  Worker(Simulator* sim, int id, DurationNs base_cost,
         const LoadProfile* load, const HostModel* hosts);

  /// Connects the worker to its input channel and its output sink (the
  /// region's merger, or any TupleSink when composing pipelines). `port`
  /// is the sink input this worker feeds; defaults to the worker id.
  /// Must be called exactly once before the simulation starts.
  void wire(Channel* channel, TupleSink* sink, int port = -1);

  /// Binds the worker to a dynamically shared host (multi-region
  /// clusters): each tuple's service factor then comes from the host's
  /// instantaneous occupancy instead of the static HostModel.
  void bind_shared_host(SharedHostSet* hosts, int host);

  /// Re-evaluates what the worker can do: push a held result, start the
  /// next tuple. Safe to call at any point inside an event.
  void poll();

  /// Fault injection: the PE dies. Its in-service tuple and any held
  /// result are lost (reported via set_on_lost); a shared host slot is
  /// released. The worker ignores input until recover().
  void crash();

  /// A replacement PE comes up, stateless as the paper requires — it
  /// simply starts pulling from its (restored) channel again.
  void recover();

  /// Invoked once per tuple this worker loses to a crash.
  void set_on_lost(std::function<void(const Tuple&)> fn) {
    on_lost_ = std::move(fn);
  }

  int id() const { return id_; }
  bool busy() const { return busy_; }
  bool stalled() const { return holding_; }
  bool down() const { return down_; }
  std::uint64_t processed() const { return processed_; }

  /// The effective per-tuple service time if a tuple started now.
  DurationNs current_service_time() const;

  /// Observability: record every started tuple's service time (ns) into
  /// `h` (DESIGN.md §8). Pass nullptr to detach.
  void set_service_histogram(obs::Histogram* h) { service_hist_ = h; }

 private:
  void finish(Tuple t);

  Simulator* sim_;
  int id_;
  DurationNs base_cost_;
  const LoadProfile* load_;
  const HostModel* hosts_;
  Channel* channel_ = nullptr;
  TupleSink* sink_ = nullptr;
  int port_ = 0;
  SharedHostSet* shared_hosts_ = nullptr;
  int shared_host_ = -1;
  bool busy_ = false;
  bool holding_ = false;
  bool down_ = false;
  Tuple held_{};
  std::uint64_t processed_ = 0;
  obs::Histogram* service_hist_ = nullptr;
  std::function<void(const Tuple&)> on_lost_;
  /// Bumped by crash(): a finish event from a previous life reports its
  /// tuple lost instead of forwarding it.
  std::uint64_t epoch_ = 0;
};

}  // namespace slb::sim
