#include "transport/framing.h"

namespace slb::net {

namespace {

void put_u32(std::uint32_t v, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

std::uint32_t fnv1a32(const std::uint8_t* p, std::size_t n,
                      std::uint32_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

}  // namespace

std::uint32_t frame_checksum(std::uint64_t seq, const std::uint8_t* payload,
                             std::size_t len) {
  std::uint8_t seq_le[8];
  for (int i = 0; i < 8; ++i) {
    seq_le[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  const std::uint32_t h = fnv1a32(seq_le, sizeof seq_le, 2166136261u);
  return fnv1a32(payload, len, h);
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  put_u32(static_cast<std::uint32_t>(frame.payload.size()), out);
  put_u32(frame_checksum(frame.seq, frame.payload.data(),
                         frame.payload.size()),
          out);
  put_u64(frame.seq, out);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::vector<std::uint8_t> fin_bytes() {
  Frame fin;
  fin.seq = kFinSeq;
  std::vector<std::uint8_t> out;
  encode_frame(fin, out);
  return out;
}

std::uint32_t Frame::hello_worker() const {
  return payload.size() >= 4 ? get_u32(payload.data()) : 0;
}

std::vector<std::uint8_t> hello_bytes(std::uint32_t worker_id) {
  Frame hello;
  hello.seq = kHelloSeq;
  put_u32(worker_id, hello.payload);
  std::vector<std::uint8_t> out;
  encode_frame(hello, out);
  return out;
}

std::uint64_t Frame::gap_first() const {
  return payload.size() >= 16 ? get_u64(payload.data()) : 0;
}

std::uint64_t Frame::gap_count() const {
  return payload.size() >= 16 ? get_u64(payload.data() + 8) : 0;
}

std::vector<std::uint8_t> gap_bytes(std::uint64_t first,
                                    std::uint64_t count) {
  Frame gap;
  gap.seq = kGapSeq;
  put_u64(first, gap.payload);
  put_u64(count, gap.payload);
  std::vector<std::uint8_t> out;
  encode_frame(gap, out);
  return out;
}

std::uint64_t Frame::ack_value() const {
  return payload.size() >= 8 ? get_u64(payload.data()) : 0;
}

std::vector<std::uint8_t> ack_bytes(std::uint64_t cum) {
  Frame ack;
  ack.seq = kAckSeq;
  put_u64(cum, ack.payload);
  std::vector<std::uint8_t> out;
  encode_frame(ack, out);
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (corrupt_) return;
  buffer_.insert(buffer_.end(), data, data + len);
}

void FrameDecoder::poison() {
  // The stream is garbage from here on. Drop the buffered bytes so a
  // wedged connection cannot pin memory either.
  corrupt_ = true;
  buffer_.clear();
  buffer_.shrink_to_fit();
  consumed_ = 0;
}

bool FrameDecoder::next(Frame& frame) {
  if (corrupt_) return false;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const std::uint8_t* base = buffer_.data() + consumed_;
  const std::uint32_t payload_len = get_u32(base);
  if (payload_len > kMaxPayloadBytes) {
    // Impossible length: poison as soon as the length field lands — no
    // need to wait for a header and checksum that cannot arrive.
    poison();
    return false;
  }
  if (available < kFrameHeaderBytes + payload_len) return false;
  const std::uint32_t wire_sum = get_u32(base + 4);
  const std::uint64_t seq = get_u64(base + 8);
  if (wire_sum !=
      frame_checksum(seq, base + kFrameHeaderBytes, payload_len)) {
    // Bit rot (or a hostile peer) inside the frame body: indistinguishable
    // from a corrupted length field one frame later, so fail the same way.
    poison();
    return false;
  }
  frame.seq = seq;
  frame.payload.assign(base + kFrameHeaderBytes,
                       base + kFrameHeaderBytes + payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  compact();
  return true;
}

void FrameDecoder::compact() {
  // Reclaim space once the consumed prefix dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

}  // namespace slb::net
