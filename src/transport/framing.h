// Tuple wire format for the threaded runtime.
//
// A frame is [u32 payload_len][u32 checksum][u64 seq][payload_len bytes].
// All integers little-endian (we only run loopback, but the format is
// explicit anyway). The checksum is FNV-1a-32 over the seq bytes (as
// encoded, little-endian) followed by the payload; a mismatch marks the
// stream corrupt exactly like an impossible length field — frame
// integrity is end-to-end, not trusted to the transport. A frame with
// seq == kFinSeq and empty payload signals end-of-stream.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace slb::net {

inline constexpr std::uint64_t kFinSeq = ~std::uint64_t{0};
/// Reserved sequence announcing a (re)connecting worker to the merger:
/// payload = [u32 worker_id]. Sent as the first frame on a replacement
/// worker->merger connection so the merger can re-admit the right slot.
inline constexpr std::uint64_t kHelloSeq = ~std::uint64_t{0} - 1;
/// Reserved sequence announcing shed tuples: payload = [u64 first][u64
/// count], meaning sequences [first, first + count) were dropped at the
/// source and will never arrive. Workers forward these to the merger with
/// zero work; the merger accounts them as gaps so ordered emission is not
/// gated on them.
inline constexpr std::uint64_t kGapSeq = ~std::uint64_t{0} - 2;
/// Reserved sequence carrying a cumulative ack from the merger back to
/// the splitter (at-least-once delivery, DESIGN.md §10): payload =
/// [u64 cum], meaning every sequence below `cum` has been released
/// downstream. Flows on its own merger->splitter connection, against the
/// data direction.
inline constexpr std::uint64_t kAckSeq = ~std::uint64_t{0} - 3;
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8;

/// Upper bound on a frame's payload accepted by the decoder. Far above
/// anything this runtime sends (tuple payloads are a few KiB at most);
/// its purpose is bounding the memory a hostile or corrupted length
/// field can make the decoder buffer.
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 20;

/// The per-frame FNV-1a-32 checksum over the little-endian seq bytes
/// followed by `len` payload bytes. Exposed so tests can forge frames.
std::uint32_t frame_checksum(std::uint64_t seq, const std::uint8_t* payload,
                             std::size_t len);

struct Frame {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;

  bool is_fin() const { return seq == kFinSeq && payload.empty(); }
  bool is_hello() const { return seq == kHelloSeq; }
  bool is_gap() const { return seq == kGapSeq && payload.size() >= 16; }
  bool is_ack() const { return seq == kAckSeq && payload.size() >= 8; }
  /// Worker id carried by a hello frame (call only when is_hello()).
  std::uint32_t hello_worker() const;
  /// First shed sequence carried by a gap frame (call only when is_gap()).
  std::uint64_t gap_first() const;
  /// Number of consecutive shed sequences (call only when is_gap()).
  std::uint64_t gap_count() const;
  /// Cumulative ack carried by an ack frame (call only when is_ack()).
  std::uint64_t ack_value() const;
};

/// Serializes a frame into `out` (appended), checksum included.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Builds the FIN frame bytes.
std::vector<std::uint8_t> fin_bytes();

/// Builds the hello frame bytes announcing `worker_id`.
std::vector<std::uint8_t> hello_bytes(std::uint32_t worker_id);

/// Builds a gap frame declaring sequences [first, first + count) shed.
std::vector<std::uint8_t> gap_bytes(std::uint64_t first,
                                    std::uint64_t count);

/// Builds an ack frame carrying the cumulative ack `cum`.
std::vector<std::uint8_t> ack_bytes(std::uint64_t cum);

/// Incremental decoder: feed arbitrary byte chunks, take complete frames.
///
/// Robustness: a length field above kMaxPayloadBytes — or a complete
/// frame whose checksum does not match — marks the stream corrupt: the
/// decoder refuses further input and yields no more frames
/// (resynchronizing inside a length-prefixed stream is guesswork; the
/// connection must be torn down, like any other channel fault). This
/// bounds the memory a hostile length field can pin to the bytes already
/// received.
class FrameDecoder {
 public:
  /// Appends raw bytes from the wire. No-op once the stream is corrupt.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Pops the next complete frame into `frame`; returns false when more
  /// bytes are needed or the stream is corrupt.
  bool next(Frame& frame);

  /// True once an impossible length field or a checksum mismatch has
  /// been seen; the connection should be treated as lost.
  bool corrupt() const { return corrupt_; }

  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void compact();
  void poison();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace slb::net
