// Tuple wire format for the threaded runtime.
//
// A frame is [u32 payload_len][u64 seq][payload_len bytes]. All integers
// little-endian (we only run loopback, but the format is explicit anyway).
// A frame with seq == kFinSeq and empty payload signals end-of-stream.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace slb::net {

inline constexpr std::uint64_t kFinSeq = ~std::uint64_t{0};
/// Reserved sequence announcing a (re)connecting worker to the merger:
/// payload = [u32 worker_id]. Sent as the first frame on a replacement
/// worker->merger connection so the merger can re-admit the right slot.
inline constexpr std::uint64_t kHelloSeq = ~std::uint64_t{0} - 1;
inline constexpr std::size_t kFrameHeaderBytes = 4 + 8;

struct Frame {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;

  bool is_fin() const { return seq == kFinSeq && payload.empty(); }
  bool is_hello() const { return seq == kHelloSeq; }
  /// Worker id carried by a hello frame (call only when is_hello()).
  std::uint32_t hello_worker() const;
};

/// Serializes a frame into `out` (appended).
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Builds the FIN frame bytes.
std::vector<std::uint8_t> fin_bytes();

/// Builds the hello frame bytes announcing `worker_id`.
std::vector<std::uint8_t> hello_bytes(std::uint32_t worker_id);

/// Incremental decoder: feed arbitrary byte chunks, take complete frames.
class FrameDecoder {
 public:
  /// Appends raw bytes from the wire.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Pops the next complete frame into `frame`; returns false when more
  /// bytes are needed.
  bool next(Frame& frame);

  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace slb::net
