// Tuple wire format for the threaded runtime.
//
// A frame is [u32 payload_len][u64 seq][payload_len bytes]. All integers
// little-endian (we only run loopback, but the format is explicit anyway).
// A frame with seq == kFinSeq and empty payload signals end-of-stream.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace slb::net {

inline constexpr std::uint64_t kFinSeq = ~std::uint64_t{0};
inline constexpr std::size_t kFrameHeaderBytes = 4 + 8;

struct Frame {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;

  bool is_fin() const { return seq == kFinSeq && payload.empty(); }
};

/// Serializes a frame into `out` (appended).
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Builds the FIN frame bytes.
std::vector<std::uint8_t> fin_bytes();

/// Incremental decoder: feed arbitrary byte chunks, take complete frames.
class FrameDecoder {
 public:
  /// Appends raw bytes from the wire.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Pops the next complete frame into `frame`; returns false when more
  /// bytes are needed.
  bool next(Frame& frame);

  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace slb::net
