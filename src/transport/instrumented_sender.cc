#include "transport/instrumented_sender.h"

#include <poll.h>
#include <sys/socket.h>

#include <cassert>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace slb::net {

InstrumentedSender::InstrumentedSender(int fd, BlockingCounter* counter)
    : fd_(fd), counter_(counter) {
  assert(fd >= 0);
  assert(counter != nullptr);
}

bool InstrumentedSender::send_all(const std::uint8_t* data, std::size_t len) {
  if (broken_) return false;
  std::size_t sent = 0;
  bool blocked_this_call = false;
  while (sent < len) {
    const ssize_t n =
        ::send(fd_, data + sent, len - sent, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The send would block: block deliberately and charge the wait.
      if (!blocked_this_call) {
        blocked_this_call = true;
        ++block_events_;
      }
      counter_->add(wait_writable());
      if (broken_) return false;  // the wait saw the peer hang up
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      broken_ = true;
      return false;
    }
    throw std::runtime_error(std::string("send: ") + std::strerror(errno));
  }
  return true;
}

std::size_t InstrumentedSender::try_send(const std::uint8_t* data,
                                         std::size_t len) {
  if (broken_) return 0;
  const ssize_t n = ::send(fd_, data, len, MSG_DONTWAIT | MSG_NOSIGNAL);
  if (n >= 0) return static_cast<std::size_t>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  if (errno == EPIPE || errno == ECONNRESET) {
    broken_ = true;
    return 0;
  }
  throw std::runtime_error(std::string("send: ") + std::strerror(errno));
}

void InstrumentedSender::rebind(int fd) {
  assert(fd >= 0);
  fd_ = fd;
  broken_ = false;
}

DurationNs InstrumentedSender::wait_writable() {
  pollfd pfd{};
  pfd.fd = fd_;
  // POLLIN alongside POLLOUT: the peer never writes on this stream, so
  // readability means FIN or RST — the only wake-up a dead worker whose
  // receive window already closed can ever deliver (see header).
  pfd.events = POLLOUT | POLLIN;
  const TimeNs start = monotonic_now();
  const int rc = ::poll(&pfd, 1, /*timeout_ms=*/50);
  if (rc < 0 && errno != EINTR) {
    throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
  }
  if (rc > 0 && (pfd.revents & (POLLIN | POLLERR | POLLHUP))) {
    // Confirm without consuming: EOF or a socket error is peer death; a
    // spurious wake with the peer alive leaves EAGAIN and changes nothing.
    std::uint8_t probe;
    const ssize_t got = ::recv(fd_, &probe, 1, MSG_DONTWAIT | MSG_PEEK);
    if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
      broken_ = true;
    }
  }
  return monotonic_now() - start;
}

}  // namespace slb::net
