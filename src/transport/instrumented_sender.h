// The paper's measurement mechanism (Section 3), on real sockets.
//
// Every send is attempted with MSG_DONTWAIT. If the kernel would block
// (EAGAIN — the socket send buffer is full), we *elect to block anyway*:
// we wait in poll(POLLOUT) and charge the measured wait to this
// connection's BlockingCounter. The paper uses select() and reads the
// remaining time from the Linux timeout object; we take monotonic clock
// readings around poll(), which measures the same quantity without the
// Linux-specific semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/blocking_counter.h"
#include "util/time.h"

namespace slb::net {

class InstrumentedSender {
 public:
  /// @param fd connected socket; ownership stays with the caller.
  /// @param counter blocking counter for this connection.
  InstrumentedSender(int fd, BlockingCounter* counter);

  /// Sends the full buffer, blocking as needed; blocked time is recorded.
  /// Returns false when the peer vanished mid-send (EPIPE/ECONNRESET):
  /// the sender is then `broken()` and the caller owns failover (the
  /// splitter quarantines the channel and re-routes). Genuine local
  /// errors still throw.
  bool send_all(const std::uint8_t* data, std::size_t len);

  /// Attempts to send without blocking at all. Returns the number of
  /// bytes accepted by the kernel (possibly 0). Used by the Section 4.4
  /// re-routing baseline, which diverts instead of blocking. A dead peer
  /// marks the sender `broken()` and returns 0.
  std::size_t try_send(const std::uint8_t* data, std::size_t len);

  /// Number of times send_all had to wait at least once.
  std::uint64_t block_events() const { return block_events_; }

  /// True once a send observed that the connection is gone. No further
  /// bytes are accepted until rebind().
  bool broken() const { return broken_; }

  /// Points the sender at a freshly connected socket after a reconnect
  /// (ownership stays with the caller) and clears the broken state.
  void rebind(int fd);

  int fd() const { return fd_; }

 private:
  /// Waits until the socket is writable; returns the time spent waiting.
  /// The splitter->worker stream is one-way — the peer never writes — so
  /// the wait also watches for readability: a readable socket here can
  /// only mean FIN or RST, i.e. the worker died. That observation marks
  /// the sender broken, which matters when the peer's receive window is
  /// already closed: no data can reach the dead socket to provoke an
  /// RST, so a pure POLLOUT wait would block forever.
  DurationNs wait_writable();

  int fd_;
  BlockingCounter* counter_;
  std::uint64_t block_events_ = 0;
  bool broken_ = false;
};

}  // namespace slb::net
