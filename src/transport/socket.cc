#include "transport/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace slb::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Waits for `events` on `fd`; returns false on timeout. EINTR retries
/// do not extend the deadline beyond sloppiness we can live with here.
bool poll_for(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

}  // namespace

void ignore_sigpipe() {
  // signal() is async-signal-safe enough for an idempotent SIG_IGN; the
  // senders also pass MSG_NOSIGNAL, so this is belt-and-braces for any
  // plain write() path (e.g. write_all in the workers).
  ::signal(SIGPIPE, SIG_IGN);
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener() {
  fd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_.get(), 16) != 0) throw_errno("listen");
}

Fd Listener::accept_one(int timeout_ms) {
  if (timeout_ms >= 0 && !poll_for(fd_.get(), POLLIN, timeout_ms)) {
    throw std::runtime_error("accept: timed out waiting for a peer");
  }
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  return Fd(fd);
}

Fd connect_loopback(std::uint16_t port, int timeout_ms) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (timeout_ms < 0) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      throw_errno("connect");
    }
    return fd;
  }

  // Bounded connect: non-blocking connect, poll for writability, read the
  // outcome from SO_ERROR, then restore blocking mode.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    if (!poll_for(fd.get(), POLLOUT, timeout_ms)) {
      throw std::runtime_error("connect: timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw std::runtime_error(std::string("connect: ") +
                               std::strerror(err));
    }
  }
  if (::fcntl(fd.get(), F_SETFL, flags) != 0) throw_errno("fcntl(F_SETFL)");
  return fd;
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

void set_send_buffer(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    throw_errno("setsockopt(SO_SNDBUF)");
  }
}

void set_recv_buffer(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) != 0) {
    throw_errno("setsockopt(SO_RCVBUF)");
  }
}

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw ConnectionLost("read_exact: EOF mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        // A crashed peer resets instead of FIN-ing; at a frame boundary
        // that is indistinguishable from EOF for our callers.
        if (got == 0) return false;
        throw ConnectionLost("read_exact: connection reset mid-frame");
      }
      throw_errno("read");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw ConnectionLost(std::string("write: ") + std::strerror(errno));
      }
      throw_errno("write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace slb::net
