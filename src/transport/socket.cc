#include "transport/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace slb::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener() {
  fd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_.get(), 16) != 0) throw_errno("listen");
}

Fd Listener::accept_one() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  return Fd(fd);
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect");
  }
  return fd;
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

void set_send_buffer(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    throw_errno("setsockopt(SO_SNDBUF)");
  }
}

void set_recv_buffer(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) != 0) {
    throw_errno("setsockopt(SO_RCVBUF)");
  }
}

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw std::runtime_error("read_exact: EOF mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::write(fd, p + sent, len - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace slb::net
