// RAII TCP sockets over loopback — the data transport layer of the
// threaded runtime.
//
// The paper's splitter talks to its worker PEs over per-connection TCP;
// we reproduce the same kernel path (socket buffers, flow control,
// blocking sends) with 127.0.0.1 connections inside one process. Send
// buffers are deliberately sized small so back pressure reaches the
// splitter quickly at benchmark scale.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace slb::net {

/// Thrown when the peer end of a connection is gone (EPIPE / ECONNRESET /
/// EOF mid-frame). Callers that implement failover catch exactly this —
/// any other error still surfaces as a plain std::runtime_error.
struct ConnectionLost : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Process-wide SIGPIPE setup: a dead peer must surface as EPIPE on the
/// write, never as a process-killing signal. Idempotent; called by the
/// runtime's region bring-up and safe to call from anywhere.
void ignore_sigpipe();

/// Owning file descriptor with move-only semantics.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// A TCP listener bound to 127.0.0.1 on an ephemeral port.
class Listener {
 public:
  /// Creates, binds, and listens; throws std::runtime_error on failure.
  Listener();

  std::uint16_t port() const { return port_; }
  /// The listening socket itself, for callers that poll for arrivals.
  int fd() const { return fd_.get(); }

  /// Waits until one connection arrives and returns the connected socket.
  /// `timeout_ms < 0` blocks forever (the historical behavior);
  /// otherwise a peer that never shows up raises std::runtime_error after
  /// ~timeout_ms instead of hanging the caller (and CI) indefinitely.
  Fd accept_one(int timeout_ms = -1);

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port; throws on failure. `timeout_ms >= 0` bounds
/// the wait for connection establishment (non-blocking connect + poll).
Fd connect_loopback(std::uint16_t port, int timeout_ms = -1);

/// Socket-option helpers (throw on failure).
void set_nodelay(int fd);
void set_send_buffer(int fd, int bytes);
void set_recv_buffer(int fd, int bytes);

/// Reads exactly `len` bytes (blocking); returns false on EOF (or a
/// connection reset) before any byte, throws ConnectionLost on EOF/reset
/// mid-stream.
bool read_exact(int fd, void* buf, std::size_t len);

/// Writes exactly `len` bytes with plain blocking sends (used by workers,
/// where blocking time is not measured). Throws ConnectionLost when the
/// peer is gone (EPIPE/ECONNRESET), std::runtime_error otherwise.
void write_all(int fd, const void* buf, std::size_t len);

}  // namespace slb::net
