// RAII TCP sockets over loopback — the data transport layer of the
// threaded runtime.
//
// The paper's splitter talks to its worker PEs over per-connection TCP;
// we reproduce the same kernel path (socket buffers, flow control,
// blocking sends) with 127.0.0.1 connections inside one process. Send
// buffers are deliberately sized small so back pressure reaches the
// splitter quickly at benchmark scale.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace slb::net {

/// Owning file descriptor with move-only semantics.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// A TCP listener bound to 127.0.0.1 on an ephemeral port.
class Listener {
 public:
  /// Creates, binds, and listens; throws std::runtime_error on failure.
  Listener();

  std::uint16_t port() const { return port_; }

  /// Blocks until one connection arrives; returns the connected socket.
  Fd accept_one();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port (blocking); throws on failure.
Fd connect_loopback(std::uint16_t port);

/// Socket-option helpers (throw on failure).
void set_nodelay(int fd);
void set_send_buffer(int fd, int bytes);
void set_recv_buffer(int fd, int bytes);

/// Reads exactly `len` bytes (blocking); returns false on EOF before any
/// byte, throws on error mid-stream.
bool read_exact(int fd, void* buf, std::size_t len);

/// Writes exactly `len` bytes with plain blocking sends (used by workers,
/// where blocking time is not measured).
void write_all(int fd, const void* buf, std::size_t len);

}  // namespace slb::net
