// CSV trace writer. The in-depth experiment harnesses emit per-second
// traces (allocation weight, blocking rate per connection) in CSV so the
// paper's time-series figures can be regenerated with any plotting tool.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace slb {

/// Streams rows to a CSV file. Values are written with full precision;
/// strings containing separators/quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter() = default;

  /// Opens (truncates) `path`. Check `ok()` afterwards.
  explicit CsvWriter(const std::string& path) : out_(path) {}

  bool ok() const { return out_.is_open() && out_.good(); }

  void header(const std::vector<std::string>& names) { write_row(names); }

  void row(const std::vector<std::string>& cells) { write_row(cells); }

  /// Convenience: numeric row.
  void row(const std::vector<double>& cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double c : cells) text.push_back(format(c));
    write_row(text);
  }

  static std::string format(double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
  }

  static std::string escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }

 private:
  void write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << escape(cells[i]);
    }
    out_ << '\n';
  }

  std::ofstream out_;
};

}  // namespace slb
