// Exponentially weighted moving average used to smooth blocking-rate
// samples before they are folded into a connection's rate function.
#pragma once

#include <cassert>

namespace slb {

/// A standard EWMA: after `add(x)`, `value()` is
/// `alpha * x + (1 - alpha) * previous`. The first sample initializes the
/// average directly so there is no warm-up bias toward zero.
class Ewma {
 public:
  /// @param alpha Smoothing factor in (0, 1]; larger reacts faster.
  explicit Ewma(double alpha) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  /// Folds one sample into the average.
  void add(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
  }

  /// True once at least one sample has been added.
  bool initialized() const { return initialized_; }

  /// Current smoothed value; 0 before any sample.
  double value() const { return value_; }

  /// Forgets all history.
  void reset() {
    value_ = 0.0;
    initialized_ = false;
  }

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace slb
