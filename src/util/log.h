// Minimal leveled logger. The library itself logs nothing by default;
// harnesses and examples opt in. Thread-safe at the line level (a single
// formatted line is written atomically under a mutex), which is all the
// threaded runtime requires.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace slb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration.
class Log {
 public:
  static LogLevel& threshold() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  static std::mutex& mutex() {
    static std::mutex m;
    return m;
  }

  static void write(LogLevel level, const std::string& line) {
    if (level < threshold()) return;
    std::lock_guard<std::mutex> guard(mutex());
    std::cerr << prefix(level) << line << '\n';
  }

 private:
  static const char* prefix(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "[debug] ";
      case LogLevel::kInfo: return "[info ] ";
      case LogLevel::kWarn: return "[warn ] ";
      case LogLevel::kError: return "[error] ";
      default: return "";
    }
  }
};

/// Builds one log line with stream syntax and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace slb

#define SLB_DEBUG() ::slb::LogLine(::slb::LogLevel::kDebug)
#define SLB_INFO() ::slb::LogLine(::slb::LogLevel::kInfo)
#define SLB_WARN() ::slb::LogLine(::slb::LogLevel::kWarn)
#define SLB_ERROR() ::slb::LogLine(::slb::LogLevel::kError)
