#include "util/rng.h"

#include <cmath>

namespace slb {

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; clamp the uniform away from 0 so log() is finite.
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace slb
