// Deterministic pseudo-random number generation for the simulator and the
// workload generators.
//
// We implement xoshiro256++ (Blackman & Vigna) rather than relying on
// std::mt19937 so that benchmark output is reproducible across standard
// library implementations, and splitmix64 for seeding.
#pragma once

#include <array>
#include <cstdint>

namespace slb {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ 1.0. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, though the helpers below avoid
/// distribution-implementation variance entirely.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// approximation, which is unbiased enough for workload generation and
  /// fully deterministic.
  std::uint64_t below(std::uint64_t n) {
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * n;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace slb
