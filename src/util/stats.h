// Small statistics helpers used by the experiment harnesses: running
// moments, min/max, and exact percentiles over retained samples.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace slb {

/// Running mean / variance / extrema without retaining samples
/// (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }

  /// Population variance; 0 with fewer than two samples. Welford's m2 can
  /// drift a hair negative under catastrophic cancellation; clamp so
  /// stddev() never takes sqrt of a negative.
  double variance() const {
    if (count_ < 2) return 0.0;
    const double v = m2_ / static_cast<double>(count_);
    return v > 0.0 ? v : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains every sample; supports exact quantiles. Intended for
/// experiment post-processing, not hot paths.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// Exact quantile by linear interpolation between order statistics.
  /// @param q nominally in [0, 1]; out-of-range (including NaN) is
  ///   clamped rather than asserted — histogram/report code feeds
  ///   computed q values here, and a degenerate ratio must not abort a
  ///   run. 0 samples -> 0; 1 sample -> that sample for every q.
  double quantile(double q) {
    if (!(q >= 0.0)) q = 0.0;  // also catches NaN
    if (q > 1.0) q = 1.0;
    if (samples_.empty()) return 0.0;
    sort();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double median() { return quantile(0.5); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace slb
