// Time types shared by the simulator, the core load-balancing library and
// the threaded runtime.
//
// All durations and points in time are carried as signed 64-bit nanosecond
// counts. The simulator interprets them as *virtual* nanoseconds; the
// threaded runtime interprets them as wall-clock nanoseconds taken from
// CLOCK_MONOTONIC. Using one integral representation everywhere keeps the
// controller substrate-agnostic and avoids floating-point drift in
// accumulated counters.
#pragma once

#include <chrono>
#include <cstdint>

namespace slb {

/// A span of (virtual or real) time in nanoseconds.
using DurationNs = std::int64_t;

/// An absolute instant in nanoseconds since an arbitrary epoch.
using TimeNs = std::int64_t;

inline constexpr DurationNs kNanosPerMicro = 1'000;
inline constexpr DurationNs kNanosPerMilli = 1'000'000;
inline constexpr DurationNs kNanosPerSec = 1'000'000'000;

/// Converts whole seconds to nanoseconds.
constexpr DurationNs seconds(std::int64_t s) { return s * kNanosPerSec; }

/// Converts whole milliseconds to nanoseconds.
constexpr DurationNs millis(std::int64_t ms) { return ms * kNanosPerMilli; }

/// Converts whole microseconds to nanoseconds.
constexpr DurationNs micros(std::int64_t us) { return us * kNanosPerMicro; }

/// Converts a (possibly fractional) second count to nanoseconds.
constexpr DurationNs seconds_f(double s) {
  return static_cast<DurationNs>(s * static_cast<double>(kNanosPerSec));
}

/// Converts nanoseconds to fractional seconds (for reporting only).
constexpr double to_seconds(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerSec);
}

/// Reads the machine's monotonic clock as nanoseconds. Used only by the
/// threaded runtime; the simulator never calls this.
inline TimeNs monotonic_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace slb
