// Tests for agglomerative clustering of connection functions and the
// cluster-aggregate function.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/clustering.h"
#include "util/rng.h"

namespace slb {
namespace {

RateFunction knee_fn(Weight knee, double slope, double jitter = 0.0,
                     std::uint64_t seed = 0) {
  Rng rng(seed + 1);
  RateFunction f;
  for (Weight w = 20; w <= kWeightUnits; w += 20) {
    double rate = w <= knee ? 0.0 : slope * (w - knee);
    if (jitter > 0.0 && rate > 0.0) rate *= rng.uniform(1 - jitter, 1 + jitter);
    f.observe(w, rate);
  }
  return f;
}

std::vector<const RateFunction*> ptrs(const std::vector<RateFunction>& fns) {
  std::vector<const RateFunction*> out;
  for (const auto& f : fns) out.push_back(&f);
  return out;
}

TEST(Clustering, SingleFunctionSingleCluster) {
  std::vector<RateFunction> fns;
  fns.push_back(knee_fn(300, 0.001));
  const Clusters c = cluster_functions(ptrs(fns), {});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], (std::vector<ConnectionId>{0}));
}

TEST(Clustering, IdenticalFunctionsMerge) {
  std::vector<RateFunction> fns;
  for (int i = 0; i < 5; ++i) fns.push_back(knee_fn(300, 0.001));
  const Clusters c = cluster_functions(ptrs(fns), {});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].size(), 5u);
}

TEST(Clustering, ThresholdZeroKeepsDistinctApart) {
  std::vector<RateFunction> fns;
  fns.push_back(knee_fn(100, 0.001));
  fns.push_back(knee_fn(900, 0.001));
  ClusteringConfig cfg;
  cfg.threshold = 0.0;
  const Clusters c = cluster_functions(ptrs(fns), cfg);
  EXPECT_EQ(c.size(), 2u);
}

TEST(Clustering, HugeThresholdMergesEverything) {
  std::vector<RateFunction> fns;
  fns.push_back(knee_fn(100, 0.01));
  fns.push_back(knee_fn(500, 0.001));
  fns.push_back(knee_fn(900, 0.0001));
  ClusteringConfig cfg;
  cfg.threshold = 1e9;
  const Clusters c = cluster_functions(ptrs(fns), cfg);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].size(), 3u);
}

TEST(Clustering, RecoversThreePerformanceClasses) {
  // The Figure 12 scenario in miniature: three load classes with some
  // observation jitter must cluster into groups that never mix classes.
  std::vector<RateFunction> fns;
  std::vector<int> truth;
  for (int i = 0; i < 6; ++i) {
    fns.push_back(knee_fn(20, 0.01, 0.1, static_cast<std::uint64_t>(i)));
    truth.push_back(0);  // heavily loaded: blocks almost immediately
  }
  for (int i = 0; i < 6; ++i) {
    fns.push_back(knee_fn(200, 0.001, 0.1, static_cast<std::uint64_t>(10 + i)));
    truth.push_back(1);
  }
  for (int i = 0; i < 6; ++i) {
    fns.push_back(knee_fn(800, 0.0001, 0.1, static_cast<std::uint64_t>(20 + i)));
    truth.push_back(2);
  }
  const Clusters c = cluster_functions(ptrs(fns), {});
  // Purity: every cluster contains members of exactly one class.
  for (const auto& members : c) {
    for (ConnectionId m : members) {
      EXPECT_EQ(truth[static_cast<std::size_t>(m)],
                truth[static_cast<std::size_t>(members.front())]);
    }
  }
  // And the classes must not be glued together into fewer than 3 clusters.
  EXPECT_GE(c.size(), 3u);
}

TEST(Clustering, EveryConnectionInExactlyOneCluster) {
  std::vector<RateFunction> fns;
  for (int i = 0; i < 12; ++i) {
    fns.push_back(knee_fn(static_cast<Weight>(50 + 80 * i), 0.001));
  }
  const Clusters c = cluster_functions(ptrs(fns), {});
  std::vector<int> seen(12, 0);
  for (const auto& members : c) {
    for (ConnectionId m : members) ++seen[static_cast<std::size_t>(m)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Clustering, CanonicalizeSortsMembersAndClusters) {
  Clusters c{{5, 3}, {2, 0, 4}};
  canonicalize(c);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], (std::vector<ConnectionId>{0, 2, 4}));
  EXPECT_EQ(c[1], (std::vector<ConnectionId>{3, 5}));
}

TEST(MergeClusterFunction, AveragesMemberEvidence) {
  std::vector<RateFunction> fns(2);
  fns[0].observe(500, 0.2);
  fns[1].observe(500, 0.4);
  const RateFunction merged =
      merge_cluster_function(ptrs(fns), {0, 1});
  EXPECT_NEAR(merged.value(500), 0.3, 1e-9);
}

TEST(MergeClusterFunction, WeightsEvidenceBySampleWeight) {
  std::vector<RateFunction> fns(2);
  fns[0].observe(500, 0.0, 3.0);  // three periods of "no blocking"
  fns[1].observe(500, 0.4, 1.0);
  const RateFunction merged = merge_cluster_function(ptrs(fns), {0, 1});
  EXPECT_NEAR(merged.value(500), 0.1, 1e-9);
}

TEST(MergeClusterFunction, UnionsDistinctWeights) {
  std::vector<RateFunction> fns(2);
  fns[0].observe(200, 0.1);
  fns[1].observe(800, 0.7);
  const RateFunction merged = merge_cluster_function(ptrs(fns), {0, 1});
  EXPECT_EQ(merged.observed_points(), 2);
  EXPECT_NEAR(merged.value(200), 0.1, 1e-9);
  EXPECT_NEAR(merged.value(800), 0.7, 1e-9);
}

TEST(MergeClusterFunction, SubsetOfMembersOnly) {
  std::vector<RateFunction> fns(3);
  fns[0].observe(100, 0.5);
  fns[1].observe(100, 0.1);
  fns[2].observe(100, 0.9);
  const RateFunction merged = merge_cluster_function(ptrs(fns), {0, 1});
  EXPECT_NEAR(merged.value(100), 0.3, 1e-9);  // 2 excluded
}

}  // namespace
}  // namespace slb
