// Randomized conservation invariants under seeded fault + overload
// schedules (the chaos plans from sim/chaos.h, same generator the soak
// tool uses). At every sample period and at end of run:
//
//   * emitted + gaps == expected prefix (ordered-prefix-with-gaps: the
//     merger's sequence cursor equals what left plus what was declared
//     dead, and never regresses);
//   * sent + shed == emitted + gaps + in-flight + lost-pending (every
//     issued sequence number is somewhere accountable right now);
//   * weights stay on the simplex (non-negative, summing to kWeightUnits).
//
// Budget-bound: a handful of short seeds, deterministic, suitable for
// ctest. The open-ended soak lives in tools/chaos_soak.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/policies.h"
#include "core/types.h"
#include "sim/chaos.h"
#include "sim/region.h"
#include "util/time.h"

namespace slb {
namespace {

ControllerConfig protected_controller() {
  ControllerConfig cfg;
  cfg.enable_overload_protection = true;
  cfg.saturation.enter_periods = 3;
  cfg.saturation.exit_periods = 3;
  return cfg;
}

/// Tuples demonstrably inside the region right now: channel buffers,
/// reorder queues, in service, or paused by a stall.
std::uint64_t in_flight(sim::Region& r, int workers) {
  std::uint64_t n = 0;
  for (int j = 0; j < workers; ++j) {
    n += r.channel(j).occupancy();
    n += r.merger().queue_size(j);
    if (r.worker(j).busy()) ++n;
    if (r.worker(j).stalled()) ++n;
  }
  return n;
}

void run_seed(std::uint64_t seed) {
  const DurationNs duration = millis(200);
  const sim::ChaosPlan plan = sim::make_chaos_plan(seed, duration);
  const int workers = plan.region.workers;
  sim::Region region(plan.region,
                     std::make_unique<LoadBalancingPolicy>(
                         workers, protected_controller()),
                     plan.load);
  for (const sim::FaultEvent& f : plan.faults) region.inject_fault(f);

  std::uint64_t prev_emitted_plus_gaps = 0;
  region.set_sample_hook([&](sim::Region& r) {
    // Weights on the simplex at every sample.
    const WeightVector& w = r.policy().weights();
    Weight sum = 0;
    for (Weight x : w) {
      ASSERT_GE(x, 0) << "seed " << seed;
      sum += x;
    }
    ASSERT_EQ(sum, kWeightUnits) << "seed " << seed;

    // Ordered prefix with gaps: everything up to the merger's cursor is
    // either emitted or a declared gap, and the prefix never regresses.
    const std::uint64_t prefix = r.emitted() + r.merger().gaps();
    ASSERT_GE(prefix, prev_emitted_plus_gaps) << "seed " << seed;
    prev_emitted_plus_gaps = prefix;

    // Conservation at sample time. Shed tuples consumed a sequence number
    // without entering a channel; they surface as merger gaps (possibly
    // later — lost_pending covers announced-but-not-yet-skipped numbers).
    const std::uint64_t accounted = r.emitted() + r.merger().gaps() +
                                    in_flight(r, workers) +
                                    r.merger().lost_pending();
    ASSERT_EQ(r.splitter().total_sent() + r.shed_tuples(), accounted)
        << "seed " << seed;
  });

  region.start();
  region.run_for(duration);

  // End-of-run: the same conservation plus the lost-tuple ledger.
  EXPECT_EQ(region.splitter().total_sent() + region.shed_tuples(),
            region.emitted() + region.merger().gaps() +
                in_flight(region, workers) + region.merger().lost_pending())
      << "seed " << seed;
  EXPECT_LE(region.merger().gaps(),
            region.lost_tuples() + region.shed_tuples())
      << "seed " << seed;
  EXPECT_GT(region.emitted(), 0u) << "seed " << seed;
}

TEST(Conservation, Seed1) { run_seed(1); }
TEST(Conservation, Seed2) { run_seed(2); }
TEST(Conservation, Seed3) { run_seed(3); }
TEST(Conservation, Seed7) { run_seed(7); }
TEST(Conservation, Seed11) { run_seed(11); }
TEST(Conservation, Seed23) { run_seed(23); }

}  // namespace
}  // namespace slb
