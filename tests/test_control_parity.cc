// Control-plane parity across substrates (DESIGN.md §9).
//
// The whole point of control::RegionControlLoop is that sim::Region,
// flow::Pipeline, and rt::LocalRegion are thin adapters around ONE
// decision pipeline. These tests prove it: identical seeded blocking
// traces fed through tick_with() into each substrate's loop (and into a
// bare loop on a mock port) must produce byte-identical decision
// journals — same policy updates, same overload declarations, same
// watchdog transitions, same per-tick control lines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "control/region_control.h"
#include "control/region_port.h"
#include "core/controller.h"
#include "core/policies.h"
#include "flow/pipeline.h"
#include "obs/journal.h"
#include "runtime/local_region.h"
#include "sim/region.h"
#include "util/time.h"

namespace slb {
namespace {

constexpr int kChannels = 4;
constexpr DurationNs kSpan = millis(10);
constexpr int kPeriods = 90;

/// Deterministic per-period cumulative-blocked trace: a quiet warmup, a
/// long saturated plateau (even rates, aggregate ~0.95 — enough to
/// declare overload and walk the watchdog ladder), then calm (enough to
/// unwind it). Jitter comes from a seeded xorshift so every substrate
/// sees the exact same bytes.
std::vector<std::vector<DurationNs>> make_trace(std::uint64_t seed) {
  std::uint64_t state = seed;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<std::vector<DurationNs>> trace;
  std::vector<DurationNs> cumulative(kChannels, 0);
  for (int p = 0; p < kPeriods; ++p) {
    for (int j = 0; j < kChannels; ++j) {
      double rate;
      if (p < 20) {
        rate = 0.05 + 0.02 * static_cast<double>(j);  // mild, uneven
      } else if (p < 60) {
        rate = 0.23 + 0.005 * static_cast<double>(next() % 4);  // saturated
      } else {
        rate = 0.01 + 0.005 * static_cast<double>(next() % 3);  // calm
      }
      cumulative[static_cast<std::size_t>(j)] +=
          static_cast<DurationNs>(rate * static_cast<double>(kSpan));
    }
    trace.push_back(cumulative);
  }
  return trace;
}

control::ProtectionConfig parity_protection() {
  control::ProtectionConfig prot;
  prot.admission_control = true;
  prot.shed_high_watermark = 128;
  prot.shed_low_watermark = 64;
  prot.watchdog = true;
  prot.watchdog_periods = 4;
  return prot;
}

ControllerConfig parity_controller() {
  ControllerConfig cfg;
  cfg.enable_overload_protection = true;
  return cfg;
}

std::unique_ptr<LoadBalancingPolicy> parity_policy() {
  return std::make_unique<LoadBalancingPolicy>(kChannels,
                                               parity_controller());
}

/// Substrate-free reference port: records what the loop actuates.
struct MockPort final : control::RegionPort {
  int channels() const override { return kChannels; }
  std::vector<DurationNs> sample_blocked() override { return {}; }
  std::vector<std::uint64_t> sample_delivered() override { return {}; }
  void apply_throttle(double factor) override { throttle = factor; }
  void apply_shed_watermarks(std::uint64_t high,
                             std::uint64_t low) override {
    shed_high = high;
    shed_low = low;
  }
  double throttle = 1.0;
  std::uint64_t shed_high = 0;
  std::uint64_t shed_low = 0;
};

/// Feeds the trace into `loop` with a fresh journal attached; returns
/// the journal contents.
obs::DecisionJournal drive(control::RegionControlLoop& loop,
                           const std::vector<std::vector<DurationNs>>& trace) {
  obs::DecisionJournal journal;
  loop.set_journal(&journal);
  loop.set_journal_ticks(true);
  for (int p = 0; p < static_cast<int>(trace.size()); ++p) {
    loop.tick_with((p + 1) * kSpan, kSpan,
                   trace[static_cast<std::size_t>(p)], {});
  }
  loop.set_journal(nullptr);
  return journal;
}

void expect_byte_identical(const obs::DecisionJournal& a,
                           const obs::DecisionJournal& b,
                           const char* label) {
  ASSERT_EQ(a.entries(), b.entries()) << label;
  for (std::size_t i = 0; i < a.entries(); ++i) {
    ASSERT_EQ(a.lines()[i], b.lines()[i])
        << label << ": first divergence at line " << i;
  }
  EXPECT_EQ(a.digest(), b.digest()) << label;
}

TEST(ControlParity, IdenticalTracesProduceByteIdenticalJournals) {
  const auto trace = make_trace(/*seed=*/0x5EEDu);
  const control::ProtectionConfig prot = parity_protection();

  // Reference: a bare loop on a mock port.
  MockPort mock;
  control::ControlLoopConfig loop_cfg;
  loop_cfg.protection = prot;
  auto ref_policy = parity_policy();
  control::RegionControlLoop reference(&mock, ref_policy.get(), loop_cfg);
  const obs::DecisionJournal ref_journal = drive(reference, trace);

  // The trace must be non-trivial: it has to exercise overload
  // declaration and the full watchdog ladder, or parity proves nothing.
  ASSERT_GT(ref_journal.entries(), 0u);
  bool escalated = false;
  bool unwound = false;
  for (const std::string& line : ref_journal.lines()) {
    if (line.find(R"("ev":"watchdog_)") == std::string::npos) continue;
    if (line.find("escalate") != std::string::npos) escalated = true;
    if (line.find("unwind") != std::string::npos) unwound = true;
  }
  ASSERT_TRUE(escalated);
  ASSERT_TRUE(unwound);

  // Simulator substrate.
  sim::RegionConfig sim_cfg;
  sim_cfg.workers = kChannels;
  sim_cfg.protection = prot;
  sim_cfg.metrics = false;
  sim::Region region(sim_cfg, parity_policy());
  expect_byte_identical(ref_journal, drive(region.control(), trace), "sim");

  // Flow substrate (one parallel stage).
  flow::PipelineConfig flow_cfg;
  flow_cfg.protection = prot;
  flow_cfg.metrics = false;
  flow::PipelineBuilder builder(flow_cfg);
  builder.parallel("score", kChannels, micros(10), parity_policy());
  auto pipeline = builder.build();
  expect_byte_identical(ref_journal, drive(pipeline->stage_control(0), trace),
                        "flow");

  // Threaded-runtime substrate (constructed over real loopback sockets;
  // never run — the loop is driven externally, exactly like a replay).
  rt::LocalRegionConfig rt_cfg;
  rt_cfg.workers = kChannels;
  rt_cfg.protection = prot;
  rt_cfg.metrics = false;
  rt::LocalRegion local(rt_cfg, parity_policy());
  expect_byte_identical(ref_journal, drive(local.control(), trace), "runtime");
}

TEST(ControlParity, ActionsMatchTickForTickAcrossSubstrates) {
  const auto trace = make_trace(/*seed=*/0xBEEFu);
  const control::ProtectionConfig prot = parity_protection();

  sim::RegionConfig sim_cfg;
  sim_cfg.workers = kChannels;
  sim_cfg.protection = prot;
  sim_cfg.metrics = false;
  sim::Region region(sim_cfg, parity_policy());

  flow::PipelineConfig flow_cfg;
  flow_cfg.protection = prot;
  flow_cfg.metrics = false;
  flow::PipelineBuilder builder(flow_cfg);
  builder.parallel("score", kChannels, micros(10), parity_policy());
  auto pipeline = builder.build();

  rt::LocalRegionConfig rt_cfg;
  rt_cfg.workers = kChannels;
  rt_cfg.protection = prot;
  rt_cfg.metrics = false;
  rt::LocalRegion local(rt_cfg, parity_policy());

  for (int p = 0; p < static_cast<int>(trace.size()); ++p) {
    const auto& cumulative = trace[static_cast<std::size_t>(p)];
    const TimeNs now = (p + 1) * kSpan;
    const control::ControlActions& a =
        region.control().tick_with(now, kSpan, cumulative, {});
    const control::ControlActions& b =
        pipeline->stage_control(0).tick_with(now, kSpan, cumulative, {});
    const control::ControlActions& c =
        local.control().tick_with(now, kSpan, cumulative, {});
    ASSERT_EQ(a.throttle_set, b.throttle_set) << "tick " << p;
    ASSERT_EQ(a.throttle, b.throttle) << "tick " << p;
    ASSERT_EQ(a.watchdog_stage, b.watchdog_stage) << "tick " << p;
    ASSERT_EQ(a.safe_mode, b.safe_mode) << "tick " << p;
    ASSERT_EQ(a.shed_high, b.shed_high) << "tick " << p;
    ASSERT_EQ(a.shed_low, b.shed_low) << "tick " << p;
    ASSERT_EQ(a.overloaded, b.overloaded) << "tick " << p;
    ASSERT_EQ(a.weights, b.weights) << "tick " << p;
    ASSERT_EQ(a.block_rates, b.block_rates) << "tick " << p;
    ASSERT_EQ(a.throttle, c.throttle) << "tick " << p;
    ASSERT_EQ(a.watchdog_stage, c.watchdog_stage) << "tick " << p;
    ASSERT_EQ(a.safe_mode, c.safe_mode) << "tick " << p;
    ASSERT_EQ(a.shed_high, c.shed_high) << "tick " << p;
    ASSERT_EQ(a.weights, c.weights) << "tick " << p;
  }
  // The shared trace walked every substrate through the same ladder and
  // back out of it.
  EXPECT_EQ(region.watchdog_stage(), 0);
  EXPECT_EQ(pipeline->stage_watchdog_stage(0), 0);
  EXPECT_EQ(local.watchdog_stage(), 0);
}

TEST(ControlParity, WatchdogLadderWalksUpAndUnwinds) {
  MockPort mock;
  auto policy = parity_policy();
  control::ControlLoopConfig loop_cfg;
  loop_cfg.protection = parity_protection();
  control::RegionControlLoop loop(&mock, policy.get(), loop_cfg);

  const auto trace = make_trace(/*seed=*/0xF00Du);
  int max_stage = 0;
  bool saw_halved_watermarks = false;
  for (int p = 0; p < static_cast<int>(trace.size()); ++p) {
    loop.tick_with((p + 1) * kSpan, kSpan,
                   trace[static_cast<std::size_t>(p)], {});
    max_stage = std::max(max_stage, loop.watchdog_stage());
    if (loop.watchdog_stage() >= 2) {
      saw_halved_watermarks = mock.shed_high == 64 && mock.shed_low == 32;
    }
  }
  // The plateau is long enough to reach safe mode (stage 3)...
  EXPECT_EQ(max_stage, 3);
  EXPECT_TRUE(saw_halved_watermarks);
  // ...and the calm tail unwinds everything: stage 0, full watermarks,
  // throttle released, safe mode exited.
  EXPECT_EQ(loop.watchdog_stage(), 0);
  EXPECT_FALSE(policy->safe_mode());
  EXPECT_EQ(mock.shed_high, 128u);
  EXPECT_EQ(mock.shed_low, 64u);
  EXPECT_EQ(mock.throttle, 1.0);
}

}  // namespace
}  // namespace slb
