// Tests for LoadBalanceController against synthetic blocking models —
// convergence to true capacities, static vs adaptive behavior, clustered
// solving — without any simulator or sockets involved.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/controller.h"

namespace slb {
namespace {

/// A synthetic system: connection j can sustain `capacity[j]` (fractions
/// summing to <= 1). Each period, every connection whose weight exceeds
/// its capacity accrues blocking time proportional to the overload. With
/// `draft_leader_only`, only the most-overloaded connection reports
/// blocking that period — mimicking the paper's drafting phenomenon.
class FakeSystem {
 public:
  FakeSystem(std::vector<double> capacity, bool draft_leader_only)
      : capacity_(std::move(capacity)),
        cumulative_(capacity_.size(), 0),
        draft_leader_only_(draft_leader_only) {}

  void step(const WeightVector& weights, DurationNs period) {
    int worst = -1;
    double worst_overload = 0.0;
    std::vector<double> overload(capacity_.size(), 0.0);
    for (std::size_t j = 0; j < capacity_.size(); ++j) {
      const double share =
          static_cast<double>(weights[j]) / kWeightUnits;
      overload[j] = std::max(0.0, share - capacity_[j]);
      if (overload[j] > worst_overload) {
        worst_overload = overload[j];
        worst = static_cast<int>(j);
      }
    }
    for (std::size_t j = 0; j < capacity_.size(); ++j) {
      if (draft_leader_only_ && static_cast<int>(j) != worst) continue;
      cumulative_[j] += static_cast<DurationNs>(
          overload[j] * 3.0 * static_cast<double>(period));
    }
  }

  const std::vector<DurationNs>& cumulative() const { return cumulative_; }

 private:
  std::vector<double> capacity_;
  std::vector<DurationNs> cumulative_;
  bool draft_leader_only_;
};

WeightVector run_loop(LoadBalanceController& controller, FakeSystem& system,
                      int periods) {
  const DurationNs period = seconds(1);
  for (int i = 0; i < periods; ++i) {
    system.step(controller.weights(), period);
    controller.update((i + 1) * period, system.cumulative());
  }
  return controller.weights();
}

TEST(Controller, StartsWithEvenWeights) {
  LoadBalanceController c(4);
  EXPECT_EQ(c.weights(), even_weights(4));
  EXPECT_EQ(total_weight(c.weights()), kWeightUnits);
}

TEST(Controller, FirstUpdateOnlyBaselines) {
  LoadBalanceController c(2);
  const std::vector<DurationNs> zero{0, 0};
  EXPECT_EQ(c.update(seconds(1), zero), even_weights(2));
  EXPECT_EQ(c.status().updates, 0);
}

TEST(Controller, HoldsEvenSplitWithoutBlocking) {
  LoadBalanceController c(3);
  const std::vector<DurationNs> zero{0, 0, 0};
  for (int i = 1; i <= 10; ++i) c.update(i * seconds(1), zero);
  EXPECT_EQ(c.weights(), even_weights(3));
}

TEST(Controller, WeightsAlwaysSumToTotal) {
  FakeSystem system({0.1, 0.5, 0.4}, /*draft_leader_only=*/false);
  LoadBalanceController c(3);
  const DurationNs period = seconds(1);
  for (int i = 0; i < 50; ++i) {
    system.step(c.weights(), period);
    c.update((i + 1) * period, system.cumulative());
    EXPECT_EQ(total_weight(c.weights()), kWeightUnits);
  }
}

TEST(Controller, ShiftsAwayFromOverloadedConnection) {
  // Connection 0 can only handle 5% of the traffic.
  FakeSystem system({0.05, 0.5, 0.45}, false);
  LoadBalanceController c(3);
  const WeightVector w = run_loop(c, system, 60);
  EXPECT_LT(w[0], 150);
  EXPECT_GT(w[1], 250);
  EXPECT_GT(w[2], 250);
}

TEST(Controller, ConvergesNearTrueCapacities) {
  FakeSystem system({0.2, 0.3, 0.5}, false);
  ControllerConfig cfg;
  cfg.decay_factor = 0.9;
  LoadBalanceController c(3, cfg);
  const WeightVector w = run_loop(c, system, 300);
  // Within ~10 percentage points of the true capacity split.
  EXPECT_NEAR(w[0], 200, 100);
  EXPECT_NEAR(w[1], 300, 100);
  EXPECT_NEAR(w[2], 500, 120);
}

TEST(Controller, ConvergesWithDraftLeaderOnlyData) {
  // Only one connection reports blocking per period (the paper's data
  // paucity); the controller must still find a sane split.
  FakeSystem system({0.1, 0.45, 0.45}, true);
  LoadBalanceController c(3);
  const WeightVector w = run_loop(c, system, 200);
  EXPECT_LT(w[0], 250);
  EXPECT_GT(w[1], 250);
  EXPECT_GT(w[2], 250);
}

TEST(Controller, StaticNeverDecays) {
  ControllerConfig cfg;
  cfg.decay_factor = 1.0;  // LB-static
  FakeSystem system({0.05, 0.95}, false);
  LoadBalanceController c(2, cfg);
  run_loop(c, system, 80);
  const double f_high = c.function(0).value(500);
  // Freeze the system: no more blocking anywhere. Static keeps its belief.
  const std::vector<DurationNs> frozen = system.cumulative();
  for (int i = 0; i < 50; ++i) {
    c.update(seconds(1000 + i), frozen);
  }
  EXPECT_NEAR(c.function(0).value(500), f_high, f_high * 0.5 + 1e-9);
}

TEST(Controller, AdaptiveDecaysAndReexplores) {
  ControllerConfig cfg;
  cfg.decay_factor = 0.9;
  cfg.zero_sample_weight = 0.25;
  FakeSystem loaded({0.05, 0.95}, false);
  LoadBalanceController c(2, cfg);
  run_loop(c, loaded, 80);
  const Weight w0_loaded = c.weights()[0];
  EXPECT_LT(w0_loaded, 200);

  // Load disappears: connection 0 can now handle everything.
  FakeSystem recovered({0.5, 0.5}, false);
  // Seed the recovered system's counters so cumulative keeps rising from
  // where the old one stopped: build a fresh controller-driving loop.
  std::vector<DurationNs> base = loaded.cumulative();
  const DurationNs period = seconds(1);
  for (int i = 0; i < 300; ++i) {
    recovered.step(c.weights(), period);
    std::vector<DurationNs> cum = recovered.cumulative();
    for (std::size_t j = 0; j < cum.size(); ++j) cum[j] += base[j];
    c.update(seconds(100) + (i + 1) * period, cum);
  }
  EXPECT_GT(c.weights()[0], 350);  // climbed back toward even
}

TEST(Controller, StepBoundsLimitMovement) {
  ControllerConfig cfg;
  cfg.max_step_down = 50;
  cfg.max_step_up = 50;
  FakeSystem system({0.02, 0.98}, false);
  LoadBalanceController c(2, cfg);
  const DurationNs period = seconds(1);
  WeightVector prev = c.weights();
  for (int i = 0; i < 30; ++i) {
    system.step(c.weights(), period);
    c.update((i + 1) * period, system.cumulative());
    EXPECT_LE(std::abs(c.weights()[0] - prev[0]), 50);
    EXPECT_LE(std::abs(c.weights()[1] - prev[1]), 50);
    prev = c.weights();
  }
  EXPECT_LT(c.weights()[0], 250);  // still gets there, just gradually
}

TEST(Controller, MinWeightFloorRespected) {
  ControllerConfig cfg;
  cfg.min_weight = 20;
  FakeSystem system({0.01, 0.99}, false);
  LoadBalanceController c(2, cfg);
  run_loop(c, system, 60);
  EXPECT_GE(c.weights()[0], 20);
}

TEST(Controller, SetWeightsOverrides) {
  LoadBalanceController c(2);
  c.set_weights({900, 100});
  EXPECT_EQ(c.weights(), (WeightVector{900, 100}));
}

TEST(Controller, ClusteringEngagesAboveThreshold) {
  ControllerConfig cfg;
  cfg.enable_clustering = true;
  cfg.clustering_min_connections = 8;
  const int n = 12;
  std::vector<double> caps;
  // Two performance classes: 6 weak (2% each), 6 strong (~14.6% each).
  for (int j = 0; j < 6; ++j) caps.push_back(0.02);
  for (int j = 0; j < 6; ++j) caps.push_back(0.8 / 6 + 0.02);
  FakeSystem system(caps, false);
  LoadBalanceController c(n, cfg);
  run_loop(c, system, 120);
  EXPECT_FALSE(c.status().clusters.empty());
  // All members of a cluster hold identical weights (modulo the leftover
  // distribution, which adds at most 1 unit).
  for (const auto& members : c.status().clusters) {
    for (ConnectionId m : members) {
      EXPECT_NEAR(c.weights()[static_cast<std::size_t>(m)],
                  c.weights()[static_cast<std::size_t>(members.front())], 1);
    }
  }
  // Weak connections end up with clearly less weight than strong ones.
  double weak = 0;
  double strong = 0;
  for (int j = 0; j < 6; ++j) weak += c.weights()[static_cast<std::size_t>(j)];
  for (int j = 6; j < 12; ++j) {
    strong += c.weights()[static_cast<std::size_t>(j)];
  }
  EXPECT_LT(weak, strong);
}

TEST(Controller, ClusteringDisengagedBelowThreshold) {
  ControllerConfig cfg;
  cfg.enable_clustering = true;
  cfg.clustering_min_connections = 32;
  FakeSystem system({0.2, 0.8}, false);
  LoadBalanceController c(2, cfg);
  run_loop(c, system, 20);
  EXPECT_TRUE(c.status().clusters.empty());
}

TEST(Controller, StatusReflectsRates) {
  FakeSystem system({0.05, 0.95}, false);
  LoadBalanceController c(2);
  run_loop(c, system, 5);
  EXPECT_GT(c.status().raw_rates[0] + c.status().smoothed_rates[0], 0.0);
  EXPECT_GT(c.status().updates, 0);
}

}  // namespace
}  // namespace slb
