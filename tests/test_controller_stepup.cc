// Tests for the geometric step-up exploration bound and related
// controller knobs added during reproduction (see DESIGN.md).
#include <gtest/gtest.h>

#include <vector>

#include "core/controller.h"

namespace slb {
namespace {

/// Feeds the controller a synthetic period where connection `blocked_j`
/// reports the given blocking rate and everyone else reports zero.
class ControllerDriver {
 public:
  explicit ControllerDriver(LoadBalanceController* c)
      : controller_(c),
        cumulative_(static_cast<std::size_t>(c->connections()), 0) {}

  void step(int blocked_j, double rate) {
    now_ += seconds(1);
    if (blocked_j >= 0) {
      cumulative_[static_cast<std::size_t>(blocked_j)] +=
          static_cast<DurationNs>(rate * static_cast<double>(seconds(1)));
    }
    controller_->update(now_, cumulative_);
  }

 private:
  LoadBalanceController* controller_;
  std::vector<DurationNs> cumulative_;
  TimeNs now_ = 0;
};

TEST(GeometricStepUp, CapsPerUpdateGrowthFromZero) {
  ControllerConfig cfg;
  cfg.geometric_step_up = true;
  cfg.geometric_step_floor = 8;
  cfg.zero_sample_weight = 0.5;
  LoadBalanceController c(2, cfg);
  ControllerDriver driver(&c);

  // Connection 0 blocks hard at its even share: it is dropped to 0 (down
  // moves are unbounded)...
  driver.step(0, 0.9);
  driver.step(0, 0.9);
  EXPECT_EQ(c.weights()[0], 0);

  // ...and once the other connection starts blocking under the full
  // load, connection 0's climb back is bounded by max(floor, 2w) per
  // update: 8, 16, 32, ...
  Weight prev = 0;
  for (int i = 0; i < 5; ++i) {
    driver.step(1, 0.4);
    const Weight now = c.weights()[0];
    EXPECT_LE(now, std::max(cfg.geometric_step_floor, prev) + prev);
    prev = now;
  }
  EXPECT_GT(c.weights()[0], 0);  // it is climbing
}

TEST(GeometricStepUp, StillReachesEvenShareQuickly) {
  ControllerConfig cfg;
  cfg.geometric_step_up = true;
  cfg.zero_sample_weight = 0.5;
  LoadBalanceController c(2, cfg);
  ControllerDriver driver(&c);
  driver.step(0, 0.9);
  driver.step(0, 0.9);
  ASSERT_EQ(c.weights()[0], 0);
  // The survivor now blocks under the full load; doubling brings
  // connection 0 back to a large share within ~log2(R) updates.
  for (int i = 0; i < 12; ++i) driver.step(1, 0.5);
  EXPECT_GT(c.weights()[0], 300);
}

TEST(GeometricStepUp, DisabledAllowsFullJumps) {
  ControllerConfig cfg;
  cfg.geometric_step_up = false;
  cfg.zero_sample_weight = 1.0;
  cfg.decay_factor = 0.5;  // aggressive decay for a fast test
  LoadBalanceController c(2, cfg);
  ControllerDriver driver(&c);
  driver.step(0, 0.9);
  driver.step(0, 0.9);
  ASSERT_EQ(c.weights()[0], 0);
  // With connection 0's decayed function and connection 1 blocking under
  // the full load, an unbounded solve can jump far in a single step.
  Weight max_jump = 0;
  Weight prev = 0;
  for (int i = 0; i < 12; ++i) {
    driver.step(1, 0.5);
    max_jump = std::max(max_jump, static_cast<Weight>(c.weights()[0] - prev));
    prev = c.weights()[0];
  }
  EXPECT_GT(max_jump, 50);
}

TEST(GeometricStepUp, DownwardMovesRemainUnbounded) {
  ControllerConfig cfg;
  cfg.geometric_step_up = true;
  LoadBalanceController c(4, cfg);
  ControllerDriver driver(&c);
  driver.step(0, 0.0);  // baseline-ready
  driver.step(0, 0.95);
  // From the even 250 straight down, no staircase.
  EXPECT_LE(c.weights()[0], 10);
}


TEST(SolverChoice, FoxAndBisectAgreeOnObjective) {
  // Drive two controllers with identical observations, one per solver.
  ControllerConfig fox_cfg;
  fox_cfg.solver = RapSolverKind::kFox;
  ControllerConfig bis_cfg;
  bis_cfg.solver = RapSolverKind::kBisect;
  LoadBalanceController fox(3, fox_cfg);
  LoadBalanceController bis(3, bis_cfg);
  ControllerDriver fox_driver(&fox);
  ControllerDriver bis_driver(&bis);
  // First solving period: identical inputs, so the (exact) solvers must
  // report the same minimax objective. Beyond that the trajectories may
  // legitimately diverge — equally-optimal solutions attribute future
  // observations to different weights.
  fox_driver.step(0, 0.9);
  bis_driver.step(0, 0.9);
  fox_driver.step(0, 0.9);
  bis_driver.step(0, 0.9);
  EXPECT_NEAR(fox.status().objective, bis.status().objective, 1e-9);

  // And the bisect-driven controller remains a sane balancer end to end:
  // connection 0 keeps blocking whenever it holds weight; it must end
  // far below its even share.
  for (int i = 0; i < 20; ++i) {
    bis_driver.step(bis.weights()[0] > 50 ? 0 : 1,
                    bis.weights()[0] > 50 ? 0.8 : 0.2);
    EXPECT_EQ(total_weight(bis.weights()), kWeightUnits);
  }
  EXPECT_LT(bis.weights()[0], 200);
}

}  // namespace
}  // namespace slb
