// Delivery-semantics tests (DESIGN.md §10): the replay buffer, the
// merger's dedup/late-discard accounting, at-least-once crash recovery in
// the simulator and the threaded runtime, replay back pressure, and the
// control loop's ack-stall watchdog rung.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/region_control.h"
#include "control/region_port.h"
#include "core/policies.h"
#include "delivery/delivery.h"
#include "delivery/replay_buffer.h"
#include "obs/journal.h"
#include "runtime/local_region.h"
#include "sim/merger.h"
#include "sim/region.h"
#include "util/time.h"

namespace slb {
namespace {

using delivery::DeliveryMode;
using delivery::ReplayBuffer;

// --- ReplayBuffer ----------------------------------------------------

TEST(ReplayBufferTest, CumulativeAckTrimsEverythingBelow) {
  ReplayBuffer<int> buf;
  for (std::uint64_t s = 0; s < 10; ++s) buf.push(s, 8, static_cast<int>(s));
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf.bytes(), 80u);
  EXPECT_EQ(buf.ack(7), 7u);  // seqs 0..6 released
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.bytes(), 24u);
  // Acks are cumulative: a stale (lower) ack removes nothing more.
  EXPECT_EQ(buf.ack(3), 0u);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(ReplayBufferTest, ByteCapBlocksButEmptyBufferAlwaysAdmits) {
  ReplayBuffer<int> buf(100);
  EXPECT_FALSE(buf.would_block(1000));  // empty admits even an oversize
  buf.push(0, 1000, 0);
  EXPECT_TRUE(buf.would_block(1));  // over cap: back-pressure the source
  buf.ack(1);
  EXPECT_FALSE(buf.would_block(99));
  buf.push(1, 60, 1);
  EXPECT_FALSE(buf.would_block(40));  // exactly at cap is admitted
  EXPECT_TRUE(buf.would_block(41));
}

TEST(ReplayBufferTest, TakeAllDrainsForCrashReplay) {
  ReplayBuffer<int> buf(100);
  buf.push(5, 10, 50);
  buf.push(6, 10, 60);
  auto taken = buf.take_all();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].seq, 5u);
  EXPECT_EQ(taken[1].payload, 60);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.bytes(), 0u);
  EXPECT_FALSE(buf.would_block(1000));  // reusable after the drain
}

TEST(ReplayBufferTest, AckRemovesEntriesBehindNewerSequences) {
  // After a crash replay lands on a surviving channel, its buffer holds
  // e.g. [10, 11, 3, 4]: fresh sends followed by re-sent older sequences.
  // A cumulative ack must find and drop the old ones mid-buffer.
  ReplayBuffer<int> buf;
  buf.push(10, 8, 0);
  buf.push(11, 8, 0);
  buf.push(3, 8, 0);
  buf.push(4, 8, 0);
  EXPECT_EQ(buf.ack(5), 2u);  // 3 and 4 released
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.bytes(), 16u);
  EXPECT_EQ(buf.ack(12), 2u);
  EXPECT_TRUE(buf.empty());
}

// --- sim merger dedup / late-discard accounting -----------------------

TEST(MergerDelivery, ReplayEchoBelowCursorIsDupDiscard) {
  sim::Simulator sim;
  sim::Merger m(&sim, 2, sim::Merger::kUnbounded);
  m.set_delivery_mode(DeliveryMode::kAtLeastOnce);
  EXPECT_TRUE(m.try_push(0, sim::Tuple{0}));
  EXPECT_TRUE(m.try_push(0, sim::Tuple{1}));
  EXPECT_EQ(m.emitted(), 2u);
  // The original raced the crash and won; the replayed copy arrives via
  // the survivor after release. Strict order demands a silent discard.
  EXPECT_TRUE(m.try_push(1, sim::Tuple{0}));
  EXPECT_EQ(m.emitted(), 2u);
  EXPECT_EQ(m.dup_discards(), 1u);
  EXPECT_EQ(m.late_discards(), 0u);
  EXPECT_EQ(m.expected_seq(), 2u);
}

TEST(MergerDelivery, ArrivalAfterGapDeclarationIsLateDiscard) {
  // GapSkip bugfix: a tuple outliving its declared gap used to silently
  // corrupt the order accounting; now it is dropped and counted.
  sim::Simulator sim;
  sim::Merger m(&sim, 2, sim::Merger::kUnbounded);
  EXPECT_TRUE(m.try_push(0, sim::Tuple{1}));  // gated on seq 0
  EXPECT_EQ(m.emitted(), 0u);
  m.note_lost(0);  // seq 0 declared dead with its worker
  EXPECT_EQ(m.emitted(), 1u);
  EXPECT_EQ(m.gaps(), 1u);
  // ...but the "dead" tuple limps in after all.
  EXPECT_TRUE(m.try_push(1, sim::Tuple{0}));
  EXPECT_EQ(m.emitted(), 1u);
  EXPECT_EQ(m.late_discards(), 1u);
  EXPECT_EQ(m.dup_discards(), 0u);
  EXPECT_EQ(m.expected_seq(), 2u);
}

TEST(MergerDelivery, ReplayBehindNewerQueuedSequencesStillReleases) {
  // A replayed old sequence landing on a connection whose FIFO already
  // holds newer sequences would sit behind them forever under head-only
  // scanning; the side pool must rescue it.
  sim::Simulator sim;
  sim::Merger m(&sim, 2, sim::Merger::kUnbounded);
  m.set_delivery_mode(DeliveryMode::kAtLeastOnce);
  EXPECT_TRUE(m.try_push(0, sim::Tuple{1}));
  EXPECT_TRUE(m.try_push(0, sim::Tuple{2}));
  EXPECT_TRUE(m.try_push(1, sim::Tuple{3}));
  EXPECT_EQ(m.emitted(), 0u);  // everything gated on seq 0
  // The replay of seq 0 arrives on connection 1, behind queued seq 3.
  EXPECT_TRUE(m.try_push(1, sim::Tuple{0}));
  EXPECT_EQ(m.emitted(), 4u);
  EXPECT_EQ(m.pooled(), 0u);
  EXPECT_EQ(m.dup_discards(), 0u);
  EXPECT_EQ(m.expected_seq(), 4u);
}

// --- sim region: at-least-once crash recovery -------------------------

sim::RegionConfig alo_region(int workers) {
  sim::RegionConfig cfg;
  cfg.workers = workers;
  cfg.base_cost = micros(5);
  cfg.send_overhead = micros(1);
  cfg.sample_period = millis(5);
  cfg.delivery.mode = DeliveryMode::kAtLeastOnce;
  return cfg;
}

TEST(SimDelivery, CrashReplayDeliversEverySequenceWithoutGaps) {
  sim::Region region(alo_region(3),
                     std::make_unique<LoadBalancingPolicy>(3));
  // Early enough that the open-throttle source is still far from the
  // emission target, with the crashed channel's queues full.
  region.inject_fault({sim::FaultKind::kWorkerCrash, 1, millis(10), 0});
  const sim::RunResult r =
      region.run_until_emitted(20000, /*deadline=*/seconds(5));

  ASSERT_TRUE(r.reached_target);
  // The crash lost in-flight copies, but every sequence was replayed
  // onto the survivors: zero gaps in the output, strict prefix order.
  EXPECT_GT(region.lost_tuples(), 0u);
  EXPECT_EQ(region.merger().gaps(), 0u);
  EXPECT_GT(region.splitter().retransmits(), 0u);
  EXPECT_EQ(region.merger().expected_seq(), region.merger().emitted());
}

TEST(SimDelivery, ReplayRacesRecoveryWithoutGapsOrStalls) {
  sim::Region region(alo_region(3),
                     std::make_unique<LoadBalancingPolicy>(3));
  region.inject_fault({sim::FaultKind::kWorkerCrash, 0, millis(10), 0});
  region.inject_fault({sim::FaultKind::kWorkerRecover, 0, millis(20), 0});
  const sim::RunResult r =
      region.run_until_emitted(20000, /*deadline=*/seconds(5));

  ASSERT_TRUE(r.reached_target);
  EXPECT_EQ(region.merger().gaps(), 0u);
  EXPECT_EQ(region.merger().expected_seq(), region.merger().emitted());
  EXPECT_FALSE(region.worker(0).down());
}

TEST(SimDelivery, TinyReplayCapBackpressuresWithoutDeadlock) {
  sim::RegionConfig cfg = alo_region(2);
  // Room for ~4 tuples per channel: the replay window, not the socket
  // buffer, becomes the binding constraint almost immediately.
  cfg.delivery.replay_buffer_bytes = 4 * sizeof(sim::Tuple);
  sim::Region region(cfg, std::make_unique<LoadBalancingPolicy>(2));
  region.run_for(millis(100));

  // Progress continues (acks drain the windows)...
  EXPECT_GT(region.emitted(), 100u);
  // ...the cap was respected...
  EXPECT_LE(region.splitter().replay_bytes(),
            2 * cfg.delivery.replay_buffer_bytes);
  // ...and the wait was charged as blocking, keeping the signal truthful.
  std::uint64_t blocks = 0;
  for (int j = 0; j < 2; ++j) blocks += region.splitter().blocks(j);
  EXPECT_GT(blocks, 0u);
}

TEST(SimDelivery, GapSkipRemainsDefaultAndCountsGaps) {
  // Control experiment for the mode switch itself: same fault schedule,
  // default GapSkip — losses surface as gaps and nothing is replayed.
  sim::RegionConfig cfg = alo_region(3);
  cfg.delivery = {};
  sim::Region region(cfg, std::make_unique<LoadBalancingPolicy>(3));
  region.inject_fault({sim::FaultKind::kWorkerCrash, 1, millis(50), 0});
  region.run_for(millis(200));

  EXPECT_GT(region.lost_tuples(), 0u);
  EXPECT_EQ(region.merger().gaps(), region.lost_tuples());
  EXPECT_EQ(region.splitter().retransmits(), 0u);
  EXPECT_EQ(region.merger().dup_discards(), 0u);
}

// --- control loop: ack-stall watchdog rung ----------------------------

class StalledAckPort : public control::RegionPort {
 public:
  int channels() const override { return 2; }
  std::vector<DurationNs> sample_blocked() override { return {0, 0}; }
  std::vector<std::uint64_t> sample_delivered() override { return {}; }
  void apply_throttle(double) override {}
  void apply_shed_watermarks(std::uint64_t, std::uint64_t) override {}
  control::DeliverySample sample_delivery_state() override {
    control::DeliverySample d;
    d.enabled = true;
    d.cum_ack = cum_ack;
    d.unacked = unacked;
    return d;
  }
  std::uint64_t cum_ack = 7;
  std::uint64_t unacked = 42;
};

TEST(AckStallRung, FrozenAckEscalatesAndJournals) {
  StalledAckPort port;
  LoadBalancingPolicy policy(2);
  control::ControlLoopConfig cfg;
  cfg.ack_stall_periods = 3;
  control::RegionControlLoop loop(&port, &policy, cfg);
  obs::DecisionJournal journal;
  loop.set_journal(&journal);

  // Tick 1 records the baseline ack; ticks 2..4 are the first stalled
  // streak, ticks 5..7 the second.
  for (int i = 1; i <= 7; ++i) loop.tick(i * millis(10), millis(10));

  EXPECT_EQ(loop.ack_stalls(), 2u);
  // Each firing climbs one watchdog rung (stage 1: forced throttle,
  // stage 2: tightened shedding).
  EXPECT_EQ(loop.watchdog_stage(), 2);
  int stall_lines = 0;
  int escalate_lines = 0;
  for (const std::string& line : journal.lines()) {
    if (line.find("\"ack_stall\"") != std::string::npos) ++stall_lines;
    if (line.find("\"watchdog_escalate\"") != std::string::npos) {
      ++escalate_lines;
    }
  }
  EXPECT_EQ(stall_lines, 2);
  EXPECT_EQ(escalate_lines, 2);
}

TEST(AckStallRung, AckProgressResetsTheStreak) {
  StalledAckPort port;
  LoadBalancingPolicy policy(2);
  control::ControlLoopConfig cfg;
  cfg.ack_stall_periods = 3;
  control::RegionControlLoop loop(&port, &policy, cfg);

  for (int i = 1; i <= 3; ++i) loop.tick(i * millis(10), millis(10));
  port.cum_ack += 10;  // the merger released something after all
  loop.tick(4 * millis(10), millis(10));
  for (int i = 5; i <= 6; ++i) loop.tick(i * millis(10), millis(10));

  EXPECT_EQ(loop.ack_stalls(), 0u);
  EXPECT_EQ(loop.watchdog_stage(), 0);
}

TEST(AckStallRung, AllChannelsDownIsNotAStall) {
  // Nothing can deliver, let alone ack: the reconnect machinery owns
  // this case and the rung must stay quiet.
  StalledAckPort port;
  LoadBalancingPolicy policy(2);
  control::ControlLoopConfig cfg;
  cfg.ack_stall_periods = 2;
  control::RegionControlLoop loop(&port, &policy, cfg);
  loop.mark_channel_down(0);
  loop.mark_channel_down(1);

  for (int i = 1; i <= 6; ++i) loop.tick(i * millis(10), millis(10));
  EXPECT_EQ(loop.ack_stalls(), 0u);
}

// --- threaded runtime: at-least-once over loopback TCP ----------------

rt::LocalRegionConfig rt_alo(int workers) {
  rt::LocalRegionConfig cfg;
  cfg.workers = workers;
  cfg.multiplies = 2000;
  cfg.sample_period = millis(20);
  cfg.delivery.mode = DeliveryMode::kAtLeastOnce;
  return cfg;
}

TEST(RtDelivery, CleanRunIsExactlyOnce) {
  rt::LocalRegion region(rt_alo(2),
                         std::make_unique<LoadBalancingPolicy>(2));
  const rt::LocalRunStats stats = region.run(millis(200));

  EXPECT_TRUE(stats.order_ok);
  EXPECT_GT(stats.sent, 0u);
  EXPECT_EQ(stats.emitted, stats.sent);
  EXPECT_EQ(stats.gaps, 0u);
  EXPECT_EQ(stats.dup_discards, 0u);
  EXPECT_EQ(stats.late_discards, 0u);
}

TEST(RtDelivery, KillMidRunReplaysOntoSurvivorWithoutGaps) {
  rt::LocalRegionConfig cfg = rt_alo(2);
  cfg.failure_events.push_back({millis(60), 0, /*restart=*/false});
  rt::LocalRegion region(cfg, std::make_unique<LoadBalancingPolicy>(2));
  const rt::LocalRunStats stats = region.run(millis(300));

  // GapSkip would report every tuple caught in the dead worker's buffers
  // as a gap; at-least-once replays them onto the survivor instead.
  EXPECT_GE(stats.channel_failures, 1u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_EQ(stats.gaps, 0u);
  EXPECT_EQ(stats.emitted, stats.sent);
  EXPECT_TRUE(stats.order_ok);
  // Replay echoes are possible (original and replay both arriving) but
  // each re-sent frame is sent once per retransmit.
  EXPECT_LE(stats.dup_discards, stats.retransmits);
}

TEST(RtDelivery, ReplayRacesReconnect) {
  rt::LocalRegionConfig cfg = rt_alo(2);
  cfg.failure_events.push_back({millis(60), 0, /*restart=*/false});
  cfg.failure_events.push_back({millis(90), 0, /*restart=*/true});
  rt::LocalRegion region(cfg, std::make_unique<LoadBalancingPolicy>(2));
  const rt::LocalRunStats stats = region.run(millis(300));

  EXPECT_GE(stats.channel_failures, 1u);
  EXPECT_EQ(stats.gaps, 0u);
  EXPECT_EQ(stats.emitted, stats.sent);
  EXPECT_TRUE(stats.order_ok);
}

}  // namespace
}  // namespace slb
