// Determinism and conservation invariants over a sweep of region
// configurations: identical configs replay identically, and tuples are
// neither lost nor duplicated anywhere in the pipeline.
#include <gtest/gtest.h>

#include <memory>

#include "sim/harness.h"
#include "util/rng.h"

namespace slb::sim {
namespace {

/// Builds a randomized-but-seed-determined experiment spec.
ExperimentSpec random_spec(std::uint64_t seed) {
  Rng rng(seed);
  ExperimentSpec spec;
  spec.workers = 2 + static_cast<int>(rng.below(7));  // 2..8
  spec.base_multiplies = 500 * (1 + static_cast<long>(rng.below(8)));
  spec.duration_paper_s = 40;
  const int loaded = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(spec.workers)));
  if (loaded > 0) {
    LoadClass cls;
    for (int w = 0; w < loaded; ++w) cls.workers.push_back(w);
    cls.multiplier = 2.0 + rng.uniform() * 48.0;
    cls.until_paper_s = rng.chance(0.5) ? 20.0 : -1.0;
    spec.loads.push_back(cls);
  }
  return spec;
}

PolicyKind random_policy(std::uint64_t seed) {
  switch (seed % 4) {
    case 0: return PolicyKind::kRoundRobin;
    case 1: return PolicyKind::kLbStatic;
    case 2: return PolicyKind::kLbAdaptive;
    default: return PolicyKind::kReroute;
  }
}

class RegionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionSweep, IdenticalConfigsReplayIdentically) {
  const ExperimentSpec spec = random_spec(GetParam());
  const PolicyKind kind = random_policy(GetParam());

  auto run = [&] {
    auto region = make_region(kind, spec);
    region->run_for(spec.scale.from_paper_seconds(spec.duration_paper_s));
    struct Snapshot {
      std::uint64_t emitted;
      std::uint64_t sent;
      std::uint64_t events;
      WeightVector weights;
      std::vector<DurationNs> blocked;
    };
    return Snapshot{region->emitted(), region->splitter().total_sent(),
                    region->simulator().events_processed(),
                    region->policy().weights(),
                    region->counters().sample()};
  };

  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.blocked, b.blocked);
}

TEST_P(RegionSweep, ConservationAndOrderInvariants) {
  const ExperimentSpec spec = random_spec(GetParam() ^ 0xfeed);
  const PolicyKind kind = random_policy(GetParam() >> 2);
  auto region = make_region(kind, spec);
  region->run_for(spec.scale.from_paper_seconds(spec.duration_paper_s));

  // Everything sent is either emitted or still inside a bounded buffer.
  const std::uint64_t sent = region->splitter().total_sent();
  const std::uint64_t emitted = region->emitted();
  EXPECT_LE(emitted, sent);
  std::uint64_t in_buffers = 0;
  for (int j = 0; j < region->workers(); ++j) {
    in_buffers += region->channel(j).occupancy();
    in_buffers += region->merger().queue_size(j);
    if (region->worker(j).busy() || region->worker(j).stalled()) {
      ++in_buffers;
    }
  }
  EXPECT_EQ(sent, emitted + in_buffers);

  // Ordered merger: the emitted count equals the contiguous sequence
  // prefix (no gaps, no duplicates).
  EXPECT_EQ(region->merger().expected_seq(), emitted);

  // Per-connection sends sum to the total and respect the weights within
  // routing granularity.
  std::uint64_t per_conn = 0;
  for (int j = 0; j < region->workers(); ++j) {
    per_conn += region->splitter().sent(j);
  }
  EXPECT_EQ(per_conn, sent);

  // Weights always sum to the full allocation.
  EXPECT_EQ(total_weight(region->policy().weights()), kWeightUnits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionSweep,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(Determinism, HarnessRunsAreReproducible) {
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = 40;
  spec.loads.push_back({{0, 1}, 10.0, -1.0, 1.0 / 8.0});
  const std::uint64_t work = ideal_work(spec);
  const ExperimentResult a =
      run_fixed_work(PolicyKind::kLbAdaptive, spec, work);
  const ExperimentResult b =
      run_fixed_work(PolicyKind::kLbAdaptive, spec, work);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_DOUBLE_EQ(a.exec_time_paper_s, b.exec_time_paper_s);
  EXPECT_DOUBLE_EQ(a.final_throughput_mtps, b.final_throughput_mtps);
}

}  // namespace
}  // namespace slb::sim
