// Tests for the clustering distance between blocking-rate functions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/distance.h"

namespace slb {
namespace {

RateFunction make_knee_function(Weight knee, double slope) {
  RateFunction f;
  for (Weight w = 10; w <= kWeightUnits; w += 10) {
    const double rate = w <= knee ? 0.0 : slope * (w - knee);
    f.observe(w, rate);
  }
  return f;
}

TEST(Distance, AlphaFormula) {
  DistanceConfig cfg;
  cfg.delta = 1e-6;
  // alpha = log(R) / |log(R * delta)| with R = 1000.
  const double expected = std::log(1000.0) / std::fabs(std::log(1e-3));
  EXPECT_NEAR(distance_alpha(cfg), expected, 1e-12);
}

TEST(Distance, IdenticalFunctionsAreZero) {
  const RateFunction f = make_knee_function(400, 0.001);
  EXPECT_NEAR(function_distance(f, f), 0.0, 1e-12);
}

TEST(Distance, Symmetric) {
  const RateFunction a = make_knee_function(200, 0.001);
  const RateFunction b = make_knee_function(700, 0.002);
  EXPECT_DOUBLE_EQ(function_distance(a, b), function_distance(b, a));
}

TEST(Distance, GrowsWithKneeSeparation) {
  const RateFunction base = make_knee_function(200, 0.001);
  const RateFunction near = make_knee_function(250, 0.001);
  const RateFunction far = make_knee_function(800, 0.001);
  EXPECT_LT(function_distance(base, near), function_distance(base, far));
}

TEST(Distance, SeverelyBlockedVsFreeIsLarge) {
  // Paper Figure 7: severe blocking at 0.1% of load vs no blocking until
  // half the load. These must be very far apart.
  RateFunction severe;
  severe.observe(1, 0.9);
  const RateFunction relaxed = make_knee_function(500, 0.0001);
  EXPECT_GT(function_distance(severe, relaxed), 2.0);
}

TEST(Distance, BothFlatZeroFunctionsAreClose) {
  const RateFunction a;
  const RateFunction b;
  EXPECT_NEAR(function_distance(a, b), 0.0, 1e-12);
}

TEST(Distance, SameKneeDifferentSeverity) {
  const RateFunction mild = make_knee_function(500, 0.0001);
  const RateFunction steep = make_knee_function(500, 0.01);
  const double d = function_distance(mild, steep);
  EXPECT_GT(d, 0.1);  // distinguishable...
  EXPECT_LT(d, function_distance(make_knee_function(5, 0.01), mild));
}

TEST(Distance, TriangleLikeOrdering) {
  // Not a metric proof — just sanity that a middle function sits between
  // two extremes.
  const RateFunction lo = make_knee_function(100, 0.001);
  const RateFunction mid = make_knee_function(400, 0.001);
  const RateFunction hi = make_knee_function(900, 0.001);
  EXPECT_LT(function_distance(lo, mid), function_distance(lo, hi));
  EXPECT_LT(function_distance(mid, hi), function_distance(lo, hi));
}

}  // namespace
}  // namespace slb
