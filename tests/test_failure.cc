// Failure-handling tests across all three layers:
//   * controller: mark_down / mark_up renormalization and re-admission;
//   * simulator: deterministic crash/recover with exact gap accounting;
//   * runtime: a real worker thread killed mid-run over loopback TCP,
//     with quarantine, reconnect, and an in-order (modulo gaps) output.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "core/controller.h"
#include "core/policies.h"
#include "runtime/local_region.h"
#include "sim/harness.h"
#include "sim/region.h"

namespace slb {
namespace {

// --- controller ------------------------------------------------------

TEST(ControllerFailure, MarkDownRedistributesToSurvivors) {
  LoadBalanceController controller(4);
  controller.set_weights({400, 300, 200, 100});
  controller.mark_down(1);
  const WeightVector& w = controller.weights();
  EXPECT_EQ(w[1], 0);
  EXPECT_EQ(std::accumulate(w.begin(), w.end(), Weight{0}), kWeightUnits);
  // Proportional split of the dead connection's 300 over 400:200:100.
  EXPECT_GT(w[0], 400);
  EXPECT_GT(w[2], 200);
  EXPECT_GT(w[3], 100);
  EXPECT_TRUE(controller.is_down(1));
  EXPECT_EQ(controller.live(), 3);
}

TEST(ControllerFailure, MarkDownIsIdempotent) {
  LoadBalanceController controller(3);
  controller.mark_down(0);
  const WeightVector snapshot = controller.weights();
  controller.mark_down(0);
  EXPECT_EQ(controller.weights(), snapshot);
}

TEST(ControllerFailure, DownChannelStaysAtZeroAcrossUpdates) {
  LoadBalanceController controller(3);
  controller.mark_down(2);
  std::vector<DurationNs> blocked = {0, 0, 0};
  for (int period = 1; period <= 20; ++period) {
    blocked[0] += millis(2);  // connection 0 keeps blocking
    controller.update(period * millis(10), blocked);
    EXPECT_EQ(controller.weights()[2], 0) << "period " << period;
  }
}

TEST(ControllerFailure, MarkUpReadmitsThroughGeometricProbing) {
  LoadBalanceController controller(3);
  controller.mark_down(2);
  controller.mark_up(2);
  EXPECT_FALSE(controller.is_down(2));
  EXPECT_EQ(controller.weights()[2], 0);  // starts from nothing

  // With connection 0 blocking, updates run the solver; the recovered
  // connection climbs back via step-up probing.
  std::vector<DurationNs> blocked = {0, 0, 0};
  Weight prev = 0;
  bool grew = false;
  for (int period = 1; period <= 20; ++period) {
    blocked[0] += millis(2);
    controller.update(period * millis(10), blocked);
    const Weight w = controller.weights()[2];
    if (w > prev) grew = true;
    prev = w;
  }
  EXPECT_TRUE(grew);
  EXPECT_GT(controller.weights()[2], 0);
}

TEST(ControllerFailure, AllDownHoldsWeightsWithoutCrashing) {
  LoadBalanceController controller(2);
  controller.mark_down(0);
  controller.mark_down(1);
  EXPECT_EQ(controller.live(), 0);
  std::vector<DurationNs> blocked = {millis(1), millis(1)};
  controller.update(millis(10), blocked);  // must not divide by zero
  EXPECT_EQ(std::accumulate(controller.weights().begin(),
                            controller.weights().end(), Weight{0}),
            kWeightUnits);
}

TEST(PolicyFailure, ChannelHooksReachControllerAndWrr) {
  LoadBalancingPolicy policy(3);
  policy.on_channel_down(1);
  EXPECT_EQ(policy.weights()[1], 0);
  // The WRR must never name the dead connection while it has weight 0.
  for (int i = 0; i < 300; ++i) EXPECT_NE(policy.pick_connection(), 1);
  policy.on_channel_up(1);
  EXPECT_EQ(policy.weights()[1], 0);  // re-admitted but not yet trusted
}

// --- simulator -------------------------------------------------------

sim::RegionConfig small_region(int workers) {
  sim::RegionConfig cfg;
  cfg.workers = workers;
  cfg.base_cost = micros(5);
  cfg.send_overhead = micros(1);
  cfg.sample_period = millis(5);
  return cfg;
}

TEST(SimFailure, CrashShiftsTrafficToSurvivors) {
  sim::Region region(small_region(3),
                     std::make_unique<LoadBalancingPolicy>(3));
  region.inject_fault({sim::FaultKind::kWorkerCrash, 1, millis(50), 0});
  region.run_for(millis(200));

  EXPECT_TRUE(region.worker(1).down());
  EXPECT_EQ(region.policy().weights()[1], 0);
  // Lost tuples are bounded by what the dead channel could hold.
  EXPECT_GT(region.lost_tuples(), 0u);
  EXPECT_EQ(region.merger().gaps(), region.lost_tuples());
  // Conservation: everything sent is emitted, lost, or still in flight.
  std::uint64_t in_flight = 0;
  for (int j = 0; j < 3; ++j) {
    in_flight += region.channel(j).occupancy();
    in_flight += region.merger().queue_size(j);
    if (region.worker(j).busy()) ++in_flight;
    if (region.worker(j).stalled()) ++in_flight;
  }
  EXPECT_EQ(region.splitter().total_sent(),
            region.emitted() + region.lost_tuples() + in_flight);
  // The region keeps flowing on the survivors.
  EXPECT_GT(region.emitted(), 1000u);
}

TEST(SimFailure, RecoveryReadmitsWorker) {
  sim::Region region(small_region(3),
                     std::make_unique<LoadBalancingPolicy>(3));
  region.inject_fault({sim::FaultKind::kWorkerCrash, 0, millis(40), 0});
  region.inject_fault({sim::FaultKind::kWorkerRecover, 0, millis(100), 0});

  // Snapshot worker 0's lifetime tuple count at its first post-recovery
  // sample, to prove it did real work *after* the restart.
  std::uint64_t processed_at_recovery = 0;
  bool seen_recovered = false;
  region.set_sample_hook([&](sim::Region& r) {
    if (!seen_recovered && r.now() >= millis(100) && !r.worker(0).down()) {
      seen_recovered = true;
      processed_at_recovery = r.worker(0).processed();
    }
  });
  region.run_for(millis(400));

  EXPECT_FALSE(region.worker(0).down());
  EXPECT_TRUE(seen_recovered);
  // The recovered worker won weight back via step-up probing and
  // processed real tuples after its restart.
  EXPECT_GT(region.policy().weights()[0], 0);
  EXPECT_GT(region.worker(0).processed(), processed_at_recovery);
}

TEST(SimFailure, ChannelStallLosesNothing) {
  sim::Region region(small_region(2),
                     std::make_unique<RoundRobinPolicy>(2));
  region.inject_fault(
      {sim::FaultKind::kChannelStall, 0, millis(30), millis(20)});
  region.run_for(millis(200));
  EXPECT_EQ(region.lost_tuples(), 0u);
  EXPECT_EQ(region.merger().gaps(), 0u);
  EXPECT_GT(region.emitted(), 1000u);
}

TEST(SimFailure, TotalOutageParksSplitterThenResumes) {
  sim::Region region(small_region(2),
                     std::make_unique<RoundRobinPolicy>(2));
  region.inject_fault({sim::FaultKind::kWorkerCrash, 0, millis(20), 0});
  region.inject_fault({sim::FaultKind::kWorkerCrash, 1, millis(20), 0});
  region.inject_fault({sim::FaultKind::kWorkerRecover, 0, millis(60), 0});
  region.run_for(millis(150));
  EXPECT_GT(region.emitted(), 0u);
  // After recovery the splitter resumed: worker 0 processed post-outage
  // tuples.
  EXPECT_GT(region.worker(0).processed(), 10u);
}

std::vector<std::uint64_t> crash_run_signature(unsigned salt) {
  sim::Region region(small_region(4),
                     std::make_unique<LoadBalancingPolicy>(4));
  (void)salt;  // same schedule each time; determinism is the point
  region.inject_fault({sim::FaultKind::kWorkerCrash, 2, millis(30), 0});
  region.inject_fault(
      {sim::FaultKind::kChannelStall, 0, millis(50), millis(10)});
  region.inject_fault({sim::FaultKind::kWorkerRecover, 2, millis(90), 0});
  region.run_for(millis(300));
  std::vector<std::uint64_t> sig;
  sig.push_back(region.emitted());
  sig.push_back(region.lost_tuples());
  sig.push_back(region.merger().gaps());
  sig.push_back(region.splitter().total_sent());
  sig.push_back(region.splitter().failovers());
  for (int j = 0; j < 4; ++j) {
    sig.push_back(region.splitter().sent(j));
    sig.push_back(region.worker(j).processed());
    sig.push_back(static_cast<std::uint64_t>(region.policy().weights()[j]));
  }
  return sig;
}

TEST(SimFailure, CrashScheduleIsDeterministic) {
  const auto a = crash_run_signature(1);
  const auto b = crash_run_signature(2);
  EXPECT_EQ(a, b);
}

TEST(SimFailure, HarnessFaultSpecsApply) {
  sim::ExperimentSpec spec;
  spec.workers = 3;
  spec.base_multiplies = 500;
  spec.faults.push_back(
      {sim::FaultKind::kWorkerCrash, 1, 10.0, 0.0});
  auto region = sim::make_region(sim::PolicyKind::kLbAdaptive, spec);
  region->run_for(spec.scale.from_paper_seconds(30.0));
  EXPECT_TRUE(region->worker(1).down());
  EXPECT_EQ(region->policy().weights()[1], 0);
  EXPECT_GT(region->emitted(), 0u);
}

// --- runtime ---------------------------------------------------------

rt::LocalRegionConfig rt_config(int workers) {
  rt::LocalRegionConfig cfg;
  cfg.workers = workers;
  cfg.multiplies = 2000;
  cfg.payload_bytes = 32;
  cfg.sample_period = millis(50);
  cfg.merger_gap_timeout = millis(200);
  return cfg;
}

TEST(RuntimeFailure, KillQuarantinesAndOutputStaysOrdered) {
  rt::LocalRegionConfig cfg = rt_config(3);
  cfg.failure_events = {{millis(300), 1, /*restart=*/false}};
  rt::LocalRegion region(cfg, std::make_unique<LoadBalancingPolicy>(3));
  const rt::LocalRunStats stats = region.run(millis(1500));

  EXPECT_GT(stats.sent, 100u);
  EXPECT_EQ(stats.channel_failures, 1u);
  EXPECT_EQ(stats.reconnects, 0u);
  // Order modulo gaps: emission stayed monotone and every sent sequence
  // is accounted for as emitted or lost-with-the-worker.
  EXPECT_TRUE(stats.order_ok);
  EXPECT_EQ(stats.emitted + stats.gaps, stats.sent);
  // The dead channel's weight went to zero.
  EXPECT_EQ(stats.final_weights[1], 0);
}

TEST(RuntimeFailure, KillAndRestartReconnects) {
  rt::LocalRegionConfig cfg = rt_config(3);
  cfg.failure_events = {{millis(300), 2, /*restart=*/false},
                        {millis(700), 2, /*restart=*/true}};
  rt::LocalRegion region(cfg, std::make_unique<LoadBalancingPolicy>(3));

  std::vector<std::pair<DurationNs, Weight>> w2;
  region.set_sample_hook([&](const rt::LocalSample& s) {
    w2.emplace_back(s.elapsed, s.weights[2]);
  });
  const rt::LocalRunStats stats = region.run(millis(2500));

  EXPECT_EQ(stats.channel_failures, 1u);
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_TRUE(stats.order_ok);
  EXPECT_EQ(stats.emitted + stats.gaps, stats.sent);
  // After the restart the connection earned weight back.
  EXPECT_GT(stats.final_weights[2], 0);
  // And the replacement worker processed real tuples.
  EXPECT_GT(region.worker(2).processed(), 0u);

  // Weight shifted off the dead connection within 3 sample periods of
  // the kill.
  std::size_t first = w2.size();
  for (std::size_t i = 0; i < w2.size(); ++i) {
    if (w2[i].first >= millis(300)) {
      first = i;
      break;
    }
  }
  ASSERT_LT(first, w2.size());
  bool dropped = false;
  for (std::size_t i = first; i < std::min(first + 3, w2.size()); ++i) {
    if (w2[i].second == 0) dropped = true;
  }
  EXPECT_TRUE(dropped);
}

TEST(RuntimeFailure, CleanRunReportsNoGaps) {
  rt::LocalRegionConfig cfg = rt_config(2);
  cfg.failure_events = {{millis(10'000'000), 0, false}};  // never fires
  rt::LocalRegion region(cfg, std::make_unique<RoundRobinPolicy>(2));
  const rt::LocalRunStats stats = region.run(millis(400));
  EXPECT_EQ(stats.gaps, 0u);
  EXPECT_EQ(stats.channel_failures, 0u);
  EXPECT_EQ(stats.emitted, stats.sent);
  EXPECT_TRUE(stats.order_ok);
}

}  // namespace
}  // namespace slb
