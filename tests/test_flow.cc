// Tests for the dataflow layer: pipelines of operators with embedded
// data-parallel regions, end-to-end ordering, back pressure to the
// source, and per-stage load balancing.
#include <gtest/gtest.h>

#include <memory>

#include "flow/pipeline.h"

namespace slb::flow {
namespace {

PipelineConfig fast_config() {
  PipelineConfig cfg;
  cfg.sample_period = millis(5);
  cfg.channel_buffer = 16;
  cfg.link_latency = micros(1);
  return cfg;
}

TEST(Pipeline, SingleOpDelivers) {
  PipelineBuilder b(fast_config());
  b.op("only", micros(5));
  auto p = b.build();
  p->run_for(millis(50));
  EXPECT_GT(p->delivered(), 5000u);
  EXPECT_TRUE(p->order_ok());
  EXPECT_EQ(p->stages(), 1);
  EXPECT_EQ(p->stage_name(0), "only");
  EXPECT_FALSE(p->stage_is_parallel(0));
}

TEST(Pipeline, ChainedOpsPreserveOrderAndCount) {
  PipelineBuilder b(fast_config());
  b.op("a", micros(2)).op("b", micros(3)).op("c", micros(2));
  auto p = b.build();
  p->run_for(millis(50));
  EXPECT_GT(p->delivered(), 1000u);
  EXPECT_TRUE(p->order_ok());
  // Upstream stages have processed at least as much as downstream ones.
  EXPECT_GE(p->stage_processed(0), p->stage_processed(1));
  EXPECT_GE(p->stage_processed(1), p->stage_processed(2));
}

TEST(Pipeline, ThroughputGatedBySlowestStage) {
  PipelineBuilder b(fast_config());
  b.op("fast1", micros(1)).op("slow", micros(50)).op("fast2", micros(1));
  auto p = b.build();
  p->run_for(millis(100));
  // 50 us bottleneck -> ~20K/s -> ~2000 tuples in 100 ms (plus slack).
  EXPECT_GT(p->delivered(), 1500u);
  EXPECT_LT(p->delivered(), 2600u);
}

TEST(Pipeline, BackPressureReachesTheSource) {
  PipelineBuilder b(fast_config());
  b.op("slow", micros(100));
  auto p = b.build();
  p->run_for(millis(50));
  // The source produces at 10M/s against a 10K/s stage: it must spend
  // almost all of its time blocked.
  EXPECT_GT(p->source_blocked(), millis(40));
}

TEST(Pipeline, OpenLoopSourceLimitsRate) {
  PipelineConfig cfg = fast_config();
  cfg.source_interval = micros(100);  // 10K tuples/s offered
  PipelineBuilder b(cfg);
  b.op("cheap", micros(1));
  auto p = b.build();
  p->run_for(millis(100));
  EXPECT_NEAR(static_cast<double>(p->delivered()), 1000.0, 60.0);
  EXPECT_LT(p->source_blocked(), millis(5));
}

TEST(Pipeline, ParallelStageDeliversInOrder) {
  PipelineBuilder b(fast_config());
  b.op("pre", micros(1));
  b.parallel("par", 4, micros(12),
             std::make_unique<RoundRobinPolicy>(4));
  b.op("post", micros(1));
  auto p = b.build();
  p->run_for(millis(50));
  EXPECT_GT(p->delivered(), 5000u);
  EXPECT_TRUE(p->order_ok());
  EXPECT_TRUE(p->stage_is_parallel(1));
  EXPECT_EQ(p->stage_processed(1), p->stage_processed(1));
}

TEST(Pipeline, ParallelStageScalesThroughput) {
  auto run = [](int width) {
    PipelineBuilder b(fast_config());
    b.parallel("par", width, micros(40),
               std::make_unique<RoundRobinPolicy>(width));
    auto p = b.build();
    p->run_for(millis(100));
    return p->delivered();
  };
  const std::uint64_t w1 = run(1);
  const std::uint64_t w4 = run(4);
  EXPECT_GT(w4, 3 * w1);
}

TEST(Pipeline, UnorderedParallelStageMayReorder) {
  // With parallel sinks and skewed replica speeds, order is not
  // guaranteed (that is the point of unordered regions).
  sim::LoadProfile load(2);
  load.add_step(0, 0, 20.0);
  PipelineBuilder b(fast_config());
  b.parallel("par", 2, micros(10),
             std::make_unique<RerouteOnBlockPolicy>(2),
             /*ordered=*/false, std::move(load));
  auto p = b.build();
  p->run_for(millis(50));
  EXPECT_GT(p->delivered(), 1000u);
  EXPECT_FALSE(p->order_ok());
}

TEST(Pipeline, LbBalancesEmbeddedParallelStage) {
  // One replica of the parallel stage is 20x loaded; the stage's own
  // LB-adaptive policy sheds it, and the pipeline runs far faster than
  // with round-robin.
  auto run = [](std::unique_ptr<SplitPolicy> policy) {
    sim::LoadProfile load(4);
    load.add_step(0, 0, 20.0);
    PipelineBuilder b(fast_config());
    b.op("pre", micros(1));
    b.parallel("par", 4, micros(20), std::move(policy), true,
               std::move(load));
    auto p = b.build();
    p->run_for(seconds(1));
    return p;
  };
  auto rr = run(std::make_unique<RoundRobinPolicy>(4));
  auto lb = run(std::make_unique<LoadBalancingPolicy>(4, ControllerConfig{}));
  EXPECT_GT(lb->delivered(), 2 * rr->delivered());
  EXPECT_LT(lb->stage_policy(1).weights()[0], 150);
  EXPECT_TRUE(lb->order_ok());
}

TEST(Pipeline, TwoParallelStages) {
  // Each parallel stage balances independently; ordering is restored at
  // each merger, so the end-to-end stream is ordered.
  sim::LoadProfile first_load(3);
  first_load.add_step(1, 0, 15.0);
  sim::LoadProfile second_load(3);
  second_load.add_step(2, 0, 15.0);
  PipelineBuilder b(fast_config());
  b.parallel("stage-a", 3, micros(15),
             std::make_unique<LoadBalancingPolicy>(3, ControllerConfig{}),
             true, std::move(first_load));
  b.parallel("stage-b", 3, micros(15),
             std::make_unique<LoadBalancingPolicy>(3, ControllerConfig{}),
             true, std::move(second_load));
  auto p = b.build();
  p->run_for(seconds(1));
  EXPECT_TRUE(p->order_ok());
  EXPECT_GT(p->delivered(), 10'000u);
  // Each stage shed its own loaded replica.
  EXPECT_LT(p->stage_policy(0).weights()[1], 200);
  EXPECT_LT(p->stage_policy(1).weights()[2], 200);
}

TEST(Pipeline, OpLoadProfileApplies) {
  sim::LoadProfile load(1);
  load.add_load_until(0, 50.0, millis(25));
  PipelineBuilder b(fast_config());
  b.op("bursty", micros(10), std::move(load));
  auto p = b.build();
  p->run_for(millis(25));
  const std::uint64_t during = p->delivered();
  p->run_for(millis(25));
  const std::uint64_t after = p->delivered() - during;
  EXPECT_GT(after, 10 * during);
}

TEST(Pipeline, StageCountersExposeBlocking) {
  sim::LoadProfile load(2);
  load.add_step(0, 0, 30.0);
  PipelineBuilder b(fast_config());
  b.parallel("par", 2, micros(10), std::make_unique<RoundRobinPolicy>(2),
             true, std::move(load));
  auto p = b.build();
  p->run_for(millis(100));
  const std::vector<DurationNs> blocked = p->stage_counters(0).sample();
  EXPECT_GT(blocked[0], 10 * std::max<DurationNs>(blocked[1], 1));
}


TEST(Pipeline, LatencySpansAllStages) {
  // Low-utilization open loop: end-to-end latency ~= the sum of stage
  // service times plus per-hop link latency; queueing adds little.
  PipelineConfig cfg = fast_config();
  cfg.source_interval = micros(200);  // trickle
  PipelineBuilder b(cfg);
  b.op("a", micros(10)).op("b", micros(20)).op("c", micros(10));
  auto p = b.build();
  p->run_for(millis(50));
  ASSERT_GT(p->latency().count(), 100u);
  // 3 service stages (40 us) + 3 channel hops of 1 us link latency
  // (the terminal sink has no channel).
  EXPECT_GE(p->latency().min(), micros(43));
  EXPECT_LE(p->latency().mean(), micros(60));
}

TEST(Pipeline, LatencyIncludesParallelRegionQueueing) {
  PipelineConfig cfg = fast_config();
  cfg.source_interval = micros(20);
  PipelineBuilder b(cfg);
  b.parallel("par", 2, micros(30), std::make_unique<RoundRobinPolicy>(2));
  auto p = b.build();
  p->run_for(millis(50));
  ASSERT_GT(p->latency().count(), 100u);
  EXPECT_GE(p->latency().min(), micros(31));
}

}  // namespace
}  // namespace slb::flow
