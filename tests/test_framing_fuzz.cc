// Fuzz-style hardening tests for the wire framing: truncated streams,
// corrupted length fields, hostile lengths, and randomized chunking must
// all decode deterministically to either the original frames or a clean
// corrupt() verdict — never unbounded allocation or garbage frames.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "transport/framing.h"
#include "util/rng.h"

namespace slb::net {
namespace {

std::vector<std::uint8_t> sample_stream(std::vector<Frame>* frames_out) {
  std::vector<Frame> frames;
  Frame a;
  a.seq = 0;
  a.payload = {1, 2, 3, 4, 5};
  frames.push_back(a);
  Frame b;
  b.seq = 1;  // empty payload
  frames.push_back(b);
  Frame c;
  c.seq = 2;
  c.payload.assign(300, 0xAB);
  frames.push_back(c);

  std::vector<std::uint8_t> bytes;
  for (const Frame& f : frames) encode_frame(f, bytes);
  const std::vector<std::uint8_t> gap_wire = gap_bytes(3, 7);
  bytes.insert(bytes.end(), gap_wire.begin(), gap_wire.end());
  {
    Frame gap;
    gap.seq = kGapSeq;
    // matches gap_bytes(3, 7)
    for (int i = 0; i < 8; ++i) {
      gap.payload.push_back(static_cast<std::uint8_t>(3ull >> (8 * i)));
    }
    for (int i = 0; i < 8; ++i) {
      gap.payload.push_back(static_cast<std::uint8_t>(7ull >> (8 * i)));
    }
    frames.push_back(gap);
  }
  const std::vector<std::uint8_t> fin = fin_bytes();
  bytes.insert(bytes.end(), fin.begin(), fin.end());
  Frame fin_frame;
  fin_frame.seq = kFinSeq;
  frames.push_back(fin_frame);

  if (frames_out != nullptr) *frames_out = frames;
  return bytes;
}

std::vector<Frame> decode_all(FrameDecoder& dec) {
  std::vector<Frame> out;
  Frame f;
  while (dec.next(f)) out.push_back(f);
  return out;
}

TEST(FramingFuzz, EveryTruncationDecodesAPrefixAndNeverInvents) {
  std::vector<Frame> expected;
  const std::vector<std::uint8_t> bytes = sample_stream(&expected);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(bytes.data(), cut);
    const std::vector<Frame> got = decode_all(dec);
    EXPECT_FALSE(dec.corrupt()) << "cut=" << cut;
    ASSERT_LE(got.size(), expected.size()) << "cut=" << cut;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, expected[i].seq) << "cut=" << cut;
      EXPECT_EQ(got[i].payload, expected[i].payload) << "cut=" << cut;
    }
    // Whatever was withheld stays buffered, bounded by what we fed.
    EXPECT_LE(dec.buffered_bytes(), cut) << "cut=" << cut;
  }
}

TEST(FramingFuzz, OversizedLengthFieldIsCleanCorruption) {
  std::vector<std::uint8_t> bytes;
  const std::uint32_t hostile =
      static_cast<std::uint32_t>(kMaxPayloadBytes) + 1;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(hostile >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) bytes.push_back(0);

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_TRUE(dec.corrupt());
  // The poisoned buffer was released, and further input is refused: a
  // hostile peer cannot make the decoder hoard memory.
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  const std::vector<std::uint8_t> more(4096, 0xFF);
  for (int i = 0; i < 1000; ++i) dec.feed(more.data(), more.size());
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  EXPECT_FALSE(dec.next(f));
}

TEST(FramingFuzz, MaxLengthFieldIsAcceptedOnceBytesArrive) {
  // Exactly kMaxPayloadBytes is legal: the bound rejects only the
  // impossible, not the merely large.
  Frame big;
  big.seq = 42;
  big.payload.assign(kMaxPayloadBytes, 0x5A);
  std::vector<std::uint8_t> bytes;
  encode_frame(big, bytes);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_FALSE(dec.corrupt());
  EXPECT_EQ(f.seq, 42u);
  EXPECT_EQ(f.payload.size(), kMaxPayloadBytes);
}

TEST(FramingFuzz, RandomChunkSplitsDecodeIdentically) {
  std::vector<Frame> expected;
  const std::vector<std::uint8_t> bytes = sample_stream(&expected);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    FrameDecoder dec;
    std::vector<Frame> got;
    std::size_t off = 0;
    Frame f;
    while (off < bytes.size()) {
      const std::size_t chunk = static_cast<std::size_t>(
          1 + rng.below(std::min<std::uint64_t>(64, bytes.size() - off)));
      dec.feed(bytes.data() + off, chunk);
      off += chunk;
      while (dec.next(f)) got.push_back(f);
    }
    ASSERT_EQ(got.size(), expected.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, expected[i].seq) << "seed=" << seed;
      EXPECT_EQ(got[i].payload, expected[i].payload) << "seed=" << seed;
    }
    EXPECT_EQ(dec.buffered_bytes(), 0u);
  }
}

TEST(FramingFuzz, RandomCorruptionNeverAllocatesUnboundedOrInvents) {
  std::vector<Frame> expected;
  const std::vector<std::uint8_t> clean = sample_stream(&expected);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> bytes = clean;
    // Flip a handful of random bytes (length fields included).
    const int flips = static_cast<int>(1 + rng.below(4));
    for (int i = 0; i < flips; ++i) {
      bytes[static_cast<std::size_t>(rng.below(bytes.size()))] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    Frame f;
    std::size_t frames = 0;
    while (dec.next(f)) {
      // Any surviving frame has an in-bounds payload.
      EXPECT_LE(f.payload.size(), kMaxPayloadBytes);
      ++frames;
    }
    // Buffered residue never exceeds the bytes fed; corruption either
    // truncates the stream or is flagged, both are clean outcomes.
    EXPECT_LE(dec.buffered_bytes(), bytes.size()) << "seed=" << seed;
    EXPECT_LE(frames, expected.size() + bytes.size() / kFrameHeaderBytes)
        << "seed=" << seed;
    if (dec.corrupt()) {
      EXPECT_EQ(dec.buffered_bytes(), 0u);
    }
  }
}

TEST(FramingFuzz, SingleBitFlipInPayloadIsDetectedByChecksum) {
  // Before the per-frame checksum, a payload bit flip decoded silently
  // into a wrong tuple. Now every single-bit error anywhere in the body
  // must surface as a clean corrupt() verdict with the buffer released.
  Frame f;
  f.seq = 7;
  f.payload = {0x10, 0x20, 0x30, 0x40, 0x50};
  std::vector<std::uint8_t> clean;
  encode_frame(f, clean);
  for (std::size_t byte = kFrameHeaderBytes; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = clean;
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      FrameDecoder dec;
      dec.feed(bytes.data(), bytes.size());
      Frame got;
      EXPECT_FALSE(dec.next(got)) << "byte=" << byte << " bit=" << bit;
      EXPECT_TRUE(dec.corrupt()) << "byte=" << byte << " bit=" << bit;
      EXPECT_EQ(dec.buffered_bytes(), 0u);
    }
  }
}

TEST(FramingFuzz, SingleBitFlipInSequenceIsDetectedByChecksum) {
  // The sequence number is covered by the checksum too: an undetected
  // seq flip would silently re-order or drop a tuple at the merger.
  Frame f;
  f.seq = 0x0123456789ABCDEFull;
  f.payload = {9, 8, 7};
  std::vector<std::uint8_t> clean;
  encode_frame(f, clean);
  for (std::size_t byte = 8; byte < kFrameHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = clean;
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      FrameDecoder dec;
      dec.feed(bytes.data(), bytes.size());
      Frame got;
      EXPECT_FALSE(dec.next(got)) << "byte=" << byte << " bit=" << bit;
      EXPECT_TRUE(dec.corrupt()) << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(FramingFuzz, CorruptFrameDoesNotPoisonEarlierCleanFrames) {
  // Frames decoded before the damaged one are delivered; corruption cuts
  // the stream off at the first bad frame, not retroactively.
  Frame a;
  a.seq = 1;
  a.payload = {1, 1, 1};
  Frame b;
  b.seq = 2;
  b.payload = {2, 2, 2};
  std::vector<std::uint8_t> bytes;
  encode_frame(a, bytes);
  const std::size_t second_start = bytes.size();
  encode_frame(b, bytes);
  bytes[second_start + kFrameHeaderBytes] ^= 0x01;  // damage b's payload
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame got;
  ASSERT_TRUE(dec.next(got));
  EXPECT_EQ(got.seq, 1u);
  EXPECT_EQ(got.payload, a.payload);
  EXPECT_FALSE(dec.next(got));
  EXPECT_TRUE(dec.corrupt());
}

TEST(FramingFuzz, AckFrameRoundTrip) {
  const std::vector<std::uint8_t> bytes = ack_bytes(987'654'321u);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_TRUE(dec.next(f));
  ASSERT_TRUE(f.is_ack());
  EXPECT_EQ(f.ack_value(), 987'654'321u);
  EXPECT_FALSE(f.is_fin());
  EXPECT_FALSE(f.is_gap());
  EXPECT_FALSE(f.is_hello());
}

TEST(FramingFuzz, GapFrameRoundTrip) {
  const std::vector<std::uint8_t> bytes = gap_bytes(1'000'000, 12345);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_TRUE(dec.next(f));
  ASSERT_TRUE(f.is_gap());
  EXPECT_EQ(f.gap_first(), 1'000'000u);
  EXPECT_EQ(f.gap_count(), 12'345u);
  EXPECT_FALSE(f.is_fin());
  EXPECT_FALSE(f.is_hello());
}

}  // namespace
}  // namespace slb::net
