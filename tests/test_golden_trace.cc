// Golden-trace regression test for the controller decision journal
// (DESIGN.md §8). A fixed-seed simulated run — 3 workers, adaptive LB
// with overload protection, load changes, a crash/recover fault — emits
// its decision journal, which must match the committed golden file
// byte-for-byte. Any change to the adaptation pipeline (observation
// smoothing, decay, clustering, solver, saturation detection) shows up
// here as a readable diff at the first divergent line.
//
// Regenerating after an *intentional* behavior change:
//   SLB_REGEN_GOLDEN=1 ./test_golden_trace
// then commit the updated tests/golden/decision_journal.jsonl.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/policies.h"
#include "obs/journal.h"
#include "sim/fault.h"
#include "sim/region.h"
#include "util/time.h"

namespace slb {
namespace {

constexpr const char* kGoldenPath =
    SLB_GOLDEN_DIR "/decision_journal.jsonl";

ControllerConfig golden_controller(double decay_factor = 0.9) {
  ControllerConfig cfg;
  cfg.decay_factor = decay_factor;
  cfg.enable_overload_protection = true;
  cfg.saturation.enter_periods = 3;
  cfg.saturation.exit_periods = 3;
  return cfg;
}

/// The fixed scenario. Everything here is deterministic: virtual time,
/// event-ordered faults, seeded policy. Returns the journal contents.
obs::DecisionJournal run_scenario(double decay_factor = 0.9) {
  sim::RegionConfig cfg;
  cfg.workers = 3;
  cfg.base_cost = micros(6);
  cfg.send_overhead = 500;
  cfg.sample_period = millis(5);
  cfg.admission_control = true;

  sim::LoadProfile load(cfg.workers);
  // Worker 0 slows down 3x mid-run, recovers later; a global burst
  // saturates the region long enough to trip the detector.
  load.add_step(0, millis(30), 3.0);
  load.add_step(0, millis(90), 1.0);
  for (int j = 0; j < cfg.workers; ++j) {
    load.add_step(j, millis(120), 6.0);
    load.add_step(j, millis(170), 1.0);
  }

  auto policy = std::make_unique<LoadBalancingPolicy>(
      cfg.workers, golden_controller(decay_factor));
  obs::DecisionJournal journal;
  policy->set_journal(&journal);

  sim::Region region(cfg, std::move(policy), load);
  region.inject_fault({sim::FaultKind::kWorkerCrash, 2, millis(60), 0});
  region.inject_fault({sim::FaultKind::kWorkerRecover, 2, millis(80), 0});
  region.start();
  region.run_for(millis(220));

  // Moving the journal out would leave the policy pointing at a dead
  // object if the region kept running, but the run is over: copy.
  obs::DecisionJournal out;
  for (const std::string& line : journal.lines()) out.append(line);
  return out;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(GoldenTrace, JournalIsNonTrivial) {
  const obs::DecisionJournal journal = run_scenario();
  // The scenario must actually exercise the pipeline: observations,
  // decay, solves, the fault path, and the saturation detector.
  EXPECT_GT(journal.entries(), 20u);
  auto contains = [&](std::string_view needle) {
    for (const std::string& l : journal.lines()) {
      if (l.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("\"ev\":\"observe\""));
  EXPECT_TRUE(contains("\"ev\":\"decay\""));
  EXPECT_TRUE(contains("\"ev\":\"solve\""));
  EXPECT_TRUE(contains("\"ev\":\"mark_down\""));
  EXPECT_TRUE(contains("\"ev\":\"mark_up\""));
  EXPECT_TRUE(contains("\"ev\":\"overload_enter\""));
}

TEST(GoldenTrace, TwoRunsAreByteIdentical) {
  const obs::DecisionJournal a = run_scenario();
  const obs::DecisionJournal b = run_scenario();
  ASSERT_EQ(a.entries(), b.entries());
  EXPECT_EQ(a.digest(), b.digest());
  for (std::size_t i = 0; i < a.lines().size(); ++i) {
    ASSERT_EQ(a.lines()[i], b.lines()[i]) << "first divergence at entry "
                                          << i;
  }
}

TEST(GoldenTrace, MatchesCommittedGolden) {
  const obs::DecisionJournal journal = run_scenario();

  if (const char* regen = std::getenv("SLB_REGEN_GOLDEN");
      regen != nullptr && *regen != '\0') {
    ASSERT_TRUE(journal.write_jsonl(kGoldenPath))
        << "cannot write " << kGoldenPath;
    GTEST_SKIP() << "regenerated " << kGoldenPath << " (digest "
                 << journal.digest_hex() << ") — commit it";
  }

  const std::vector<std::string> golden = read_lines(kGoldenPath);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << kGoldenPath
      << " — run with SLB_REGEN_GOLDEN=1 to create it";

  // Readable failure: report the first divergent entry, not a wall of
  // bytes. A digest mismatch with identical lines is impossible by
  // construction (digest is over the lines).
  const std::size_t n = std::min(golden.size(), journal.lines().size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(journal.lines()[i], golden[i])
        << "decision journal diverges from " << kGoldenPath
        << " at entry " << i << " — if the adaptation change is "
        << "intentional, regenerate with SLB_REGEN_GOLDEN=1";
  }
  ASSERT_EQ(journal.entries(), golden.size())
      << "journal length changed (golden " << golden.size() << " entries)";
}

TEST(GoldenTrace, CatchesPerturbedDecayFactor) {
  // The negative control: a 0.9 -> 0.8 decay-factor change must move the
  // journal. If this fails, the golden test is not actually sensitive to
  // the controller's decision inputs.
  const obs::DecisionJournal baseline = run_scenario(0.9);
  const obs::DecisionJournal perturbed = run_scenario(0.8);
  EXPECT_NE(baseline.digest(), perturbed.digest());
}

}  // namespace
}  // namespace slb
