// Tests for end-to-end tuple latency tracking (an extension: the paper
// motivates latency but reports only throughput).
#include <gtest/gtest.h>

#include <memory>

#include "sim/region.h"

namespace slb::sim {
namespace {

RegionConfig base_config(int workers, DurationNs base_cost) {
  RegionConfig cfg;
  cfg.workers = workers;
  cfg.base_cost = base_cost;
  cfg.send_buffer = 16;
  cfg.recv_buffer = 16;
  cfg.link_latency = micros(1);
  cfg.send_overhead = 100;
  cfg.sample_period = millis(5);
  return cfg;
}

TEST(Latency, LowerBoundedByServiceAndLink) {
  // Open-loop trickle: each tuple flows through an empty pipeline, so
  // latency ~= link latency + service time.
  RegionConfig cfg = base_config(1, micros(10));
  cfg.source_interval = micros(100);  // 10% utilization
  Region region(cfg, std::make_unique<RoundRobinPolicy>(1));
  region.run_for(millis(20));
  ASSERT_GT(region.latency().count(), 100u);
  EXPECT_GE(region.latency().min(), micros(11));
  EXPECT_LE(region.latency().mean(), micros(20));
}

TEST(Latency, GrowsWithQueueing) {
  // Closed loop saturates every buffer: latency ~= total occupancy /
  // throughput, far above the bare service time.
  RegionConfig cfg = base_config(1, micros(10));
  Region region(cfg, std::make_unique<RoundRobinPolicy>(1));
  region.run_for(millis(20));
  EXPECT_GT(region.latency().mean(), micros(100));
}

TEST(Latency, OpenLoopBacklogCountsTowardLatency) {
  // Offered load beyond capacity: the source backlog grows without bound
  // and tuple latency grows with it.
  RegionConfig cfg = base_config(1, micros(100));
  cfg.source_interval = micros(50);  // 2x overload
  Region region(cfg, std::make_unique<RoundRobinPolicy>(1));
  region.run_for(millis(20));
  const std::uint64_t backlog =
      region.splitter().source_backlog(region.now());
  EXPECT_GT(backlog, 150u);  // ~200 behind after 20 ms of 2x overload
  region.run_for(millis(20));
  EXPECT_GT(region.splitter().source_backlog(region.now()), backlog);
  EXPECT_GT(region.latency().max(), static_cast<double>(millis(5)));
}

TEST(Latency, SustainableOpenLoopHasBoundedBacklog) {
  RegionConfig cfg = base_config(2, micros(10));
  cfg.source_interval = micros(10);  // exactly half of 2-worker capacity
  Region region(cfg, std::make_unique<RoundRobinPolicy>(2));
  region.run_for(millis(50));
  EXPECT_LT(region.splitter().source_backlog(region.now()), 50u);
}

TEST(Latency, QuantilesAreOrdered) {
  Region region(base_config(2, micros(10)),
                std::make_unique<RoundRobinPolicy>(2));
  region.run_for(millis(50));
  const double p50 = region.latency_quantile(0.5);
  const double p99 = region.latency_quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
  EXPECT_GE(region.latency().max(), p99);
}

TEST(Latency, LbBeatsRrUnderImbalanceAtFixedOfferedLoad) {
  // Open loop at ~60% of the *balanced* capacity: round-robin cannot
  // sustain it (gated by the loaded worker) and its latency explodes;
  // LB re-balances and keeps latency bounded.
  auto run = [](std::unique_ptr<SplitPolicy> policy) {
    LoadProfile load(4);
    load.add_step(0, 0, 10.0);
    RegionConfig cfg = base_config(4, micros(10));
    cfg.source_interval = micros(5);  // 200K/s vs ~310K/s balanced cap
    Region region(cfg, std::move(policy), std::move(load));
    region.run_for(seconds(1));
    return region.latency_quantile(0.5);
  };
  const double rr_p50 = run(std::make_unique<RoundRobinPolicy>(4));
  const double lb_p50 =
      run(std::make_unique<LoadBalancingPolicy>(4, ControllerConfig{}));
  EXPECT_GT(rr_p50, 10.0 * lb_p50);
}

TEST(Latency, MidPipelineTuplesKeepTheirArrivalTime) {
  // Forwarded through a parallel region, created timestamps must ride
  // along (checked indirectly: flow-pipeline latency spans all stages).
  // Here: a region whose splitter re-stamps sequence numbers must not
  // reset `created` — emitted latency must exceed the upstream wait.
  RegionConfig cfg = base_config(1, micros(10));
  cfg.source_interval = micros(100);
  Region region(cfg, std::make_unique<RoundRobinPolicy>(1));
  region.run_for(millis(10));
  EXPECT_GT(region.latency().min(), 0.0);
}

}  // namespace
}  // namespace slb::sim
