// Tests for the pool-adjacent-violators isotonic regression, including
// property-based checks against the optimality conditions.
#include <gtest/gtest.h>

#include <vector>

#include "core/monotone_regression.h"
#include "util/rng.h"

namespace slb {
namespace {

TEST(Isotonic, EmptyInput) {
  EXPECT_TRUE(isotonic_fit({}).empty());
}

TEST(Isotonic, SingleValueUnchanged) {
  const std::vector<double> y{3.5};
  EXPECT_EQ(isotonic_fit(y), y);
}

TEST(Isotonic, AlreadyMonotoneUnchanged) {
  const std::vector<double> y{1, 2, 2, 3, 10};
  EXPECT_EQ(isotonic_fit(y), y);
}

TEST(Isotonic, SimpleViolationPools) {
  const std::vector<double> y{2, 1};
  const std::vector<double> fit = isotonic_fit(y);
  EXPECT_DOUBLE_EQ(fit[0], 1.5);
  EXPECT_DOUBLE_EQ(fit[1], 1.5);
}

TEST(Isotonic, DecreasingInputPoolsToMean) {
  const std::vector<double> y{5, 4, 3, 2, 1};
  const std::vector<double> fit = isotonic_fit(y);
  for (double v : fit) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Isotonic, WeightsShiftPooledMean) {
  // Heavy first point dominates the pooled block.
  const std::vector<double> y{4, 0};
  const std::vector<double> w{3, 1};
  const std::vector<double> fit = isotonic_fit(y, w);
  EXPECT_DOUBLE_EQ(fit[0], 3.0);
  EXPECT_DOUBLE_EQ(fit[1], 3.0);
}

TEST(Isotonic, KnownTextbookCase) {
  const std::vector<double> y{1, 3, 2, 4};
  const std::vector<double> fit = isotonic_fit(y);
  EXPECT_DOUBLE_EQ(fit[0], 1.0);
  EXPECT_DOUBLE_EQ(fit[1], 2.5);
  EXPECT_DOUBLE_EQ(fit[2], 2.5);
  EXPECT_DOUBLE_EQ(fit[3], 4.0);
}

TEST(Isotonic, IsNonDecreasingHelper) {
  EXPECT_TRUE(is_non_decreasing({}));
  EXPECT_TRUE(is_non_decreasing(std::vector<double>{1.0}));
  EXPECT_TRUE(is_non_decreasing(std::vector<double>{1, 1, 2}));
  EXPECT_FALSE(is_non_decreasing(std::vector<double>{1, 0.5}));
}

// ---- property-based checks ---------------------------------------------

class IsotonicProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsotonicProperty, OutputIsMonotone) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.below(64);
  std::vector<double> y(n);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.uniform(-10, 10);
    w[i] = rng.uniform(0.1, 5.0);
  }
  const std::vector<double> fit = isotonic_fit(y, w);
  ASSERT_EQ(fit.size(), n);
  EXPECT_TRUE(is_non_decreasing(fit));
}

TEST_P(IsotonicProperty, PreservesWeightedMean) {
  Rng rng(GetParam() ^ 0xabcdef);
  const std::size_t n = 2 + rng.below(32);
  std::vector<double> y(n);
  std::vector<double> w(n);
  double mean_num = 0.0;
  double mean_den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.uniform(0, 100);
    w[i] = rng.uniform(0.5, 2.0);
    mean_num += y[i] * w[i];
    mean_den += w[i];
  }
  const std::vector<double> fit = isotonic_fit(y, w);
  double fit_num = 0.0;
  for (std::size_t i = 0; i < n; ++i) fit_num += fit[i] * w[i];
  EXPECT_NEAR(fit_num / mean_den, mean_num / mean_den, 1e-9);
}

TEST_P(IsotonicProperty, Idempotent) {
  Rng rng(GetParam() ^ 0x1234);
  const std::size_t n = 1 + rng.below(40);
  std::vector<double> y(n);
  for (auto& v : y) v = rng.uniform(-5, 5);
  const std::vector<double> once = isotonic_fit(y);
  const std::vector<double> twice = isotonic_fit(once);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(twice[i], once[i], 1e-12);
}

TEST_P(IsotonicProperty, NoWorseThanAnyMonotoneCandidate) {
  // The PAVA fit must have weighted SSE no larger than a few heuristic
  // monotone candidates: the sorted input, a constant at the weighted
  // mean, and the running maximum.
  Rng rng(GetParam() ^ 0x9999);
  const std::size_t n = 2 + rng.below(24);
  std::vector<double> y(n);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.uniform(0, 10);
    w[i] = rng.uniform(0.5, 3.0);
  }
  auto sse = [&](const std::vector<double>& g) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += w[i] * (y[i] - g[i]) * (y[i] - g[i]);
    }
    return total;
  };
  const std::vector<double> fit = isotonic_fit(y, w);
  const double fit_sse = sse(fit);

  std::vector<double> sorted = y;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_LE(fit_sse, sse(sorted) + 1e-9);

  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += w[i] * y[i];
    den += w[i];
  }
  const std::vector<double> constant(n, num / den);
  EXPECT_LE(fit_sse, sse(constant) + 1e-9);

  std::vector<double> running = y;
  for (std::size_t i = 1; i < n; ++i) {
    running[i] = std::max(running[i], running[i - 1]);
  }
  EXPECT_LE(fit_sse, sse(running) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IsotonicProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace slb
