// Tests for dynamically shared hosts and multi-region clusters — the
// paper's Section 8 future work: several parallel regions whose purely
// local controllers adapt to each other's load through the hosts they
// share.
#include <gtest/gtest.h>

#include <memory>

#include "sim/region.h"
#include "sim/shared_host.h"

namespace slb::sim {
namespace {

// ------------------------------------------------------- SharedHostSet --

TEST(SharedHost, IdleHostHasUnitFactor) {
  SharedHostSet hosts({{1.0, 4}});
  EXPECT_EQ(hosts.busy(0), 0);
  EXPECT_DOUBLE_EQ(hosts.peek_factor(0), 1.0);
}

TEST(SharedHost, SpeedDividesFactor) {
  SharedHostSet hosts({{2.0, 4}});
  EXPECT_DOUBLE_EQ(hosts.peek_factor(0), 0.5);
}

TEST(SharedHost, OversubscriptionKicksInPastThreads) {
  SharedHostSet hosts({{1.0, 2}});
  EXPECT_DOUBLE_EQ(hosts.begin_service(0), 1.0);  // busy 1 of 2
  EXPECT_DOUBLE_EQ(hosts.begin_service(0), 1.0);  // busy 2 of 2
  EXPECT_DOUBLE_EQ(hosts.begin_service(0), 1.5);  // busy 3 of 2
  EXPECT_DOUBLE_EQ(hosts.begin_service(0), 2.0);  // busy 4 of 2
  EXPECT_EQ(hosts.busy(0), 4);
}

TEST(SharedHost, EndServiceReleasesSlots) {
  SharedHostSet hosts({{1.0, 1}});
  (void)hosts.begin_service(0);
  (void)hosts.begin_service(0);
  EXPECT_EQ(hosts.busy(0), 2);
  hosts.end_service(0);
  hosts.end_service(0);
  EXPECT_EQ(hosts.busy(0), 0);
  EXPECT_DOUBLE_EQ(hosts.peek_factor(0), 1.0);
}

TEST(SharedHost, HostsAreIndependent) {
  SharedHostSet hosts({{1.0, 1}, {1.0, 1}});
  (void)hosts.begin_service(0);
  (void)hosts.begin_service(0);
  EXPECT_EQ(hosts.busy(0), 2);
  EXPECT_EQ(hosts.busy(1), 0);
  EXPECT_DOUBLE_EQ(hosts.peek_factor(1), 1.0);
}

// --------------------------------------------------- worker integration --

RegionConfig small_region(int workers, DurationNs base_cost) {
  RegionConfig cfg;
  cfg.workers = workers;
  cfg.base_cost = base_cost;
  cfg.send_buffer = 16;
  cfg.recv_buffer = 16;
  cfg.link_latency = micros(1);
  cfg.send_overhead = 100;
  cfg.sample_period = millis(5);
  return cfg;
}

TEST(SharedRegion, WorkersPayTheSharedFactor) {
  // One worker alone on a 1-thread host processes at base cost; its
  // throughput halves when a synthetic co-tenant occupies the host.
  SharedHostSet hosts({{1.0, 1}});
  Region region(small_region(1, micros(10)),
                std::make_unique<RoundRobinPolicy>(1), {}, {}, nullptr,
                SharedPlacement{&hosts, {0}});
  region.run_for(millis(50));
  const std::uint64_t alone = region.emitted();
  // ~5000 tuples in 50 ms at 10 us each.
  EXPECT_GT(alone, 4000u);

  SharedHostSet contended({{1.0, 1}});
  (void)contended.begin_service(0);  // a permanent co-tenant
  Region busy_region(small_region(1, micros(10)),
                     std::make_unique<RoundRobinPolicy>(1), {}, {}, nullptr,
                     SharedPlacement{&contended, {0}});
  busy_region.run_for(millis(50));
  EXPECT_LT(busy_region.emitted(), alone * 6 / 10);
  EXPECT_GT(busy_region.emitted(), alone * 4 / 10);
}

// ---------------------------------------------------- two-region cluster --

struct Cluster {
  Simulator sim;
  SharedHostSet hosts;
  std::unique_ptr<Region> a;
  std::unique_ptr<Region> b;

  /// Region A: 4 workers, 2 on host 0 + 2 on host 1, LB-adaptive.
  /// Region B: 4 workers, all on host 0; heavy tuples so when it starts
  /// it swamps host 0.
  explicit Cluster(DurationNs b_cost)
      : hosts({{1.0, 4}, {1.0, 4}}) {
    a = std::make_unique<Region>(
        small_region(4, micros(10)),
        std::make_unique<LoadBalancingPolicy>(4, ControllerConfig{}), /*load=*/
        LoadProfile{}, HostModel{}, &sim,
        SharedPlacement{&hosts, {0, 0, 1, 1}});
    b = std::make_unique<Region>(
        small_region(4, b_cost), std::make_unique<RoundRobinPolicy>(4),
        LoadProfile{}, HostModel{}, &sim,
        SharedPlacement{&hosts, {0, 0, 0, 0}});
  }
};

TEST(MultiRegion, RegionsShareOneTimeline) {
  Cluster cluster(micros(10));
  cluster.a->start();
  cluster.b->start();
  cluster.sim.run_until(millis(20));
  EXPECT_GT(cluster.a->emitted(), 0u);
  EXPECT_GT(cluster.b->emitted(), 0u);
  EXPECT_EQ(cluster.a->now(), cluster.b->now());
}

TEST(MultiRegion, CoTenantLoadShiftsLocalWeights) {
  // Region B's 4 heavy workers sit on host 0 alongside region A's
  // workers 0 and 1. A's controller — which knows nothing about B —
  // should shift weight toward its workers on the uncontended host 1.
  Cluster cluster(micros(200));  // B's tuples are heavy: host 0 stays hot
  cluster.a->start();
  cluster.b->start();
  cluster.sim.run_until(seconds(2));

  const WeightVector& w = cluster.a->policy().weights();
  const Weight on_host0 = w[0] + w[1];
  const Weight on_host1 = w[2] + w[3];
  EXPECT_LT(on_host0, on_host1);
}

TEST(MultiRegion, QuietCoTenantLeavesWeightsEven) {
  // With B processing trivial tuples, host 0 is barely contended and A
  // should stay near an even split.
  Cluster cluster(micros(1));
  cluster.a->start();
  cluster.b->start();
  cluster.sim.run_until(seconds(2));
  const WeightVector& w = cluster.a->policy().weights();
  const Weight on_host0 = w[0] + w[1];
  EXPECT_NEAR(on_host0, 500, 150);
}

}  // namespace
}  // namespace slb::sim
