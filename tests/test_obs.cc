// Unit tests for the observability substrate (DESIGN.md §8): registry
// handles, log-bucketed histograms, snapshot/delta semantics, journal
// serialization + digest, and the JSON-lines exporter.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace slb::obs {
namespace {

// ---- Counter / Gauge ---------------------------------------------------

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

// ---- Histogram buckets -------------------------------------------------

TEST(Histogram, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

TEST(Histogram, FloorAndCeilAgreeWithIndex) {
  for (int k = 0; k < Histogram::kBuckets; ++k) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_floor(k)), k);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_ceil(k)), k);
  }
}

TEST(Histogram, CountSumMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(0);
  h.record(10);
  h.record(20);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h;
  // No samples: every quantile is 0, including NaN/out-of-range q.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record(100);
  // Single sample: all quantiles land inside its bucket [64, 127].
  for (double q : {0.0, 0.5, 1.0, -3.0, 7.0,
                   std::numeric_limits<double>::quiet_NaN()}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 64.0) << "q=" << q;
    EXPECT_LE(v, 127.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileOrderingAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);     // bucket [8,15]
  for (int i = 0; i < 100; ++i) h.record(1000);   // bucket [512,1023]
  EXPECT_LE(h.quantile(0.25), 15.0);
  EXPECT_GE(h.quantile(0.75), 512.0);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
}

TEST(Histogram, VisibleAcrossThreads) {
  // Single-writer contract: one thread records, another reads.
  Histogram h;
  std::thread writer([&h] {
    for (int i = 0; i < 10000; ++i) h.record(5);
  });
  writer.join();
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.sum(), 50000u);
}

// ---- Registry ----------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndDeduplicated) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  reg.gauge("g");
  reg.histogram("h");
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, SnapshotCapturesRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("c").inc(7);
  reg.gauge("g").set(-2);
  reg.histogram("h").record(5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].first, "c");
  EXPECT_EQ(snap.entries[1].first, "g");
  EXPECT_EQ(snap.entries[2].first, "h");
  EXPECT_EQ(snap.counter("c"), 7u);
  EXPECT_EQ(snap.find("g")->gauge, -2);
  EXPECT_EQ(snap.find("h")->count, 1u);
  EXPECT_EQ(snap.find("h")->sum, 5u);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsRegistry, SnapshotTrimsTrailingZeroBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  h.record(5);  // bucket 3
  const MetricsSnapshot snap = reg.snapshot();
  const MetricValue* v = snap.find("h");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->buckets.size(), 4u);  // buckets 0..3, trailing zeros cut
  EXPECT_EQ(v->buckets[3], 1u);
}

TEST(MetricsRegistry, DeltaSubtractsCountersAndBucketsKeepsGauges) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.inc(10);
  g.set(100);
  h.record(3);
  const MetricsSnapshot a = reg.snapshot();
  c.inc(5);
  g.set(42);
  h.record(3);
  h.record(100);
  const MetricsSnapshot b = reg.snapshot();
  const MetricsSnapshot d = delta(a, b);
  EXPECT_EQ(d.counter("c"), 5u);
  EXPECT_EQ(d.find("g")->gauge, 42);
  EXPECT_EQ(d.find("h")->count, 2u);
  EXPECT_EQ(d.find("h")->sum, 103u);
  EXPECT_EQ(d.find("h")->buckets[2], 1u);  // the second record(3)
}

// ---- JSON line builder -------------------------------------------------

TEST(JsonLine, SerializesAllTypesDeterministically) {
  const std::vector<int> xs = {1, 2, 3};
  const std::vector<double> rs = {0.5, 1.0};
  const std::vector<std::vector<int>> lists = {{0, 2}, {1}};
  const std::string line = JsonLine()
                               .str("s", "abc")
                               .num("i", std::int64_t{-4})
                               .num("u", std::uint64_t{7})
                               .real("r", 0.25)
                               .boolean("b", true)
                               .ints("xs", xs)
                               .reals("rs", rs)
                               .int_lists("ls", lists)
                               .finish();
  EXPECT_EQ(line,
            "{\"s\":\"abc\",\"i\":-4,\"u\":7,\"r\":0.25,\"b\":true,"
            "\"xs\":[1,2,3],\"rs\":[0.5,1],\"ls\":[[0,2],[1]]}");
}

TEST(JsonLine, NonFiniteDoublesBecomeNull) {
  const std::string line =
      JsonLine()
          .real("nan", std::numeric_limits<double>::quiet_NaN())
          .real("inf", std::numeric_limits<double>::infinity())
          .finish();
  EXPECT_EQ(line, "{\"nan\":null,\"inf\":null}");
}

TEST(FormatDouble, ShortestRoundTrip) {
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(-2.0), "-2");
  EXPECT_EQ(format_double(1e300), "1e+300");
}

// ---- DecisionJournal ---------------------------------------------------

TEST(DecisionJournal, DigestMatchesManualFnv) {
  DecisionJournal j;
  j.append("{\"a\":1}");
  j.append("{\"b\":2}");
  std::uint64_t expect = DecisionJournal::kFnvOffset;
  for (const char ch : std::string("{\"a\":1}\n{\"b\":2}\n")) {
    expect ^= static_cast<unsigned char>(ch);
    expect *= DecisionJournal::kFnvPrime;
  }
  EXPECT_EQ(j.digest(), expect);
  EXPECT_EQ(j.entries(), 2u);
}

TEST(DecisionJournal, IdenticalContentIdenticalDigest) {
  DecisionJournal a;
  DecisionJournal b;
  a.append("{\"x\":1}");
  b.append("{\"x\":1}");
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest_hex(), b.digest_hex());
  b.append("{\"y\":1}");
  EXPECT_NE(a.digest(), b.digest());
  b.clear();
  EXPECT_EQ(b.digest(), DecisionJournal::kFnvOffset);
  EXPECT_EQ(b.entries(), 0u);
}

TEST(DecisionJournal, WriteJsonlRoundTrips) {
  DecisionJournal j;
  j.append("{\"a\":1}");
  j.append("{\"b\":2}");
  const std::string path =
      testing::TempDir() + "/slb_test_journal.jsonl";
  ASSERT_TRUE(j.write_jsonl(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "{\"a\":1}\n{\"b\":2}\n");
  std::remove(path.c_str());
}

// ---- Exporter ----------------------------------------------------------

TEST(JsonlExporter, TickEmitsDeltasDumpEmitsSnapshot) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  const std::string path =
      testing::TempDir() + "/slb_test_export.jsonl";
  {
    JsonlExporter ex(&reg, path);
    ASSERT_TRUE(ex.ok());
    c.inc(5);
    ASSERT_TRUE(ex.tick(100));
    c.inc(2);
    ASSERT_TRUE(ex.tick(200));
    ASSERT_TRUE(ex.dump(300));
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  ASSERT_TRUE(std::getline(in, l1));
  ASSERT_TRUE(std::getline(in, l2));
  ASSERT_TRUE(std::getline(in, l3));
  EXPECT_EQ(l1, "{\"t\":100,\"kind\":\"delta\",\"metrics\":{\"c\":5}}");
  EXPECT_EQ(l2, "{\"t\":200,\"kind\":\"delta\",\"metrics\":{\"c\":2}}");
  EXPECT_EQ(l3, "{\"t\":300,\"kind\":\"snapshot\",\"metrics\":{\"c\":7}}");
  std::remove(path.c_str());
}

TEST(JsonlExporter, HistogramSparseBucketEncoding) {
  MetricsRegistry reg;
  reg.histogram("h").record(5);  // bucket 3
  const std::string line = to_json_line(reg.snapshot(), 0, "snapshot");
  EXPECT_NE(line.find("\"h\":{\"count\":1,\"sum\":5,\"buckets\":[[3,1]]}"),
            std::string::npos)
      << line;
}

TEST(JsonlExporter, BadPathReportsNotOk) {
  MetricsRegistry reg;
  JsonlExporter ex(&reg, "/nonexistent-dir-xyz/file.jsonl");
  EXPECT_FALSE(ex.ok());
  EXPECT_FALSE(ex.tick(0));
}

}  // namespace
}  // namespace slb::obs
