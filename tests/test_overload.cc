// Overload-protection tests (DESIGN.md §7) across the layers:
//   * SaturationDetector: hysteretic entry/exit, the evenness test that
//     separates saturation from feasible imbalance, deficit bounds;
//   * controller: frozen weights and the safe-mode mark_down fallback
//     while overloaded;
//   * policy: safe-mode pinning to an even live split;
//   * simulator region: watermark shedding with exact gap accounting,
//     closed-loop admission throttling, and the watchdog ladder;
//   * flow pipeline: the same protection ladder, enforced per parallel
//     stage by the shared control loop and actuated at the source.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "core/controller.h"
#include "core/policies.h"
#include "core/saturation.h"
#include "flow/pipeline.h"
#include "sim/region.h"

namespace slb {
namespace {

// --- SaturationDetector ----------------------------------------------

SaturationConfig fast_config() {
  SaturationConfig cfg;
  cfg.enter_periods = 3;
  cfg.exit_periods = 3;
  cfg.smoothing_alpha = 1.0;  // evenness on instantaneous rates
  return cfg;
}

TEST(SaturationDetector, EntersOnSaturatedEvenRatesWithHysteresis) {
  SaturationDetector det(fast_config());
  const std::vector<double> even = {0.24, 0.23, 0.23, 0.22};
  det.observe(even);
  det.observe(even);
  EXPECT_FALSE(det.overloaded());  // streak not complete
  det.observe(even);
  EXPECT_TRUE(det.overloaded());
  EXPECT_EQ(det.episodes(), 1);
}

TEST(SaturationDetector, ConcentratedBlockingDoesNotEnter) {
  // One connection soaking all the blocking is a gradient, not
  // saturation: the optimizer can still move weight off it.
  SaturationDetector det(fast_config());
  const std::vector<double> skewed = {0.95, 0.0, 0.0, 0.0};
  for (int i = 0; i < 50; ++i) det.observe(skewed);
  EXPECT_FALSE(det.overloaded());
  EXPECT_EQ(det.episodes(), 0);
}

TEST(SaturationDetector, RotatingDraftLeaderEntersViaSmoothing) {
  // Per-period blocking concentrates on one connection (drafting), but
  // the leader rotates: smoothed over a rotation cycle the spread is
  // even, which is the real saturation signature.
  SaturationConfig cfg;  // default smoothing_alpha = 0.05
  SaturationDetector det(cfg);
  for (int period = 0; period < 100; ++period) {
    std::vector<double> rates(4, 0.0);
    rates[static_cast<std::size_t>(period % 4)] = 0.93;
    det.observe(rates);
  }
  EXPECT_TRUE(det.overloaded());
}

TEST(SaturationDetector, ExitsAfterSustainedSlackOnly) {
  SaturationDetector det(fast_config());
  const std::vector<double> even = {0.24, 0.23, 0.23, 0.22};
  const std::vector<double> slack = {0.1, 0.1, 0.1, 0.1};
  for (int i = 0; i < 3; ++i) det.observe(even);
  ASSERT_TRUE(det.overloaded());
  // A single slack period is not recovery.
  det.observe(slack);
  det.observe(even);
  EXPECT_TRUE(det.overloaded());
  // Sustained slack is.
  det.observe(slack);
  det.observe(slack);
  det.observe(slack);
  EXPECT_FALSE(det.overloaded());
  EXPECT_EQ(det.capacity_deficit(), 0.0);
}

TEST(SaturationDetector, DeficitStaysInUnitInterval) {
  SaturationConfig cfg = fast_config();
  SaturationDetector det(cfg);
  EXPECT_EQ(det.capacity_deficit(), 0.0);
  // Aggregate above 1 (multi-connection sums can exceed it transiently)
  // must still clamp.
  const std::vector<double> hot = {0.5, 0.4, 0.4, 0.5};
  for (int i = 0; i < 10; ++i) det.observe(hot);
  ASSERT_TRUE(det.overloaded());
  EXPECT_GT(det.capacity_deficit(), 0.0);
  EXPECT_LE(det.capacity_deficit(), 1.0);
}

TEST(SaturationDetector, HostileRatesAreSanitized) {
  SaturationDetector det(fast_config());
  const std::vector<double> hostile = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(), -3.0, 0.5};
  for (int i = 0; i < 10; ++i) det.observe(hostile);
  // NaN/Inf/negative are treated as zero: concentrated, so no overload —
  // and no poisoned state either.
  EXPECT_FALSE(det.overloaded());
  EXPECT_EQ(det.capacity_deficit(), 0.0);
}

TEST(SaturationDetector, DownConnectionsAreExcluded) {
  SaturationDetector det(fast_config());
  const std::vector<double> rates = {0.31, 0.30, 0.0, 0.31};
  const std::vector<char> down = {0, 0, 1, 0};
  for (int i = 0; i < 3; ++i) {
    det.observe(rates, down);
  }
  // Without the mask the zero-rate connection 2 would fail evenness.
  EXPECT_TRUE(det.overloaded());
}

TEST(SaturationDetector, ResetClearsEverything) {
  SaturationDetector det(fast_config());
  const std::vector<double> even = {0.3, 0.3, 0.32};
  for (int i = 0; i < 3; ++i) det.observe(even);
  ASSERT_TRUE(det.overloaded());
  det.reset();
  EXPECT_FALSE(det.overloaded());
  EXPECT_EQ(det.capacity_deficit(), 0.0);
  EXPECT_EQ(det.periods_overloaded(), 0);
}

// --- controller freeze and safe-mode fallback ------------------------

ControllerConfig overload_controller() {
  ControllerConfig cfg;
  cfg.enable_overload_protection = true;
  cfg.saturation.smoothing_alpha = 1.0;
  cfg.saturation.enter_periods = 2;
  return cfg;
}

/// Drives `controller` with evenly spread near-total blocking until it
/// declares overload. Returns the cumulative-blocked vector at the end.
std::vector<DurationNs> drive_into_overload(LoadBalanceController& ctrl,
                                            int connections,
                                            TimeNs* now) {
  std::vector<DurationNs> blocked(static_cast<std::size_t>(connections), 0);
  for (int period = 1; period <= 10 && !ctrl.overloaded(); ++period) {
    for (auto& b : blocked) b += millis(10) * 23 / connections / 10;
    *now += millis(10);
    ctrl.update(*now, blocked);
  }
  return blocked;
}

TEST(ControllerOverload, FreezesWeightsWhileOverloaded) {
  LoadBalanceController ctrl(4, overload_controller());
  TimeNs now = 0;
  std::vector<DurationNs> blocked = drive_into_overload(ctrl, 4, &now);
  ASSERT_TRUE(ctrl.overloaded());
  const WeightVector frozen = ctrl.weights();

  // Feed strongly skewed blocking, which an active controller would act
  // on; frozen weights must not move.
  for (int period = 0; period < 10; ++period) {
    blocked[0] += millis(9);
    now += millis(10);
    ctrl.update(now, blocked);
  }
  EXPECT_TRUE(ctrl.overloaded());
  EXPECT_EQ(ctrl.weights(), frozen);
  EXPECT_GT(ctrl.capacity_deficit(), 0.0);
}

TEST(ControllerOverload, ProtectionOffNeverReportsOverload) {
  LoadBalanceController ctrl(4);  // defaults: protection disabled
  TimeNs now = 0;
  std::vector<DurationNs> blocked(4, 0);
  for (int period = 1; period <= 20; ++period) {
    for (auto& b : blocked) b += millis(10) * 23 / 40;
    now += millis(10);
    ctrl.update(now, blocked);
  }
  EXPECT_FALSE(ctrl.overloaded());
  EXPECT_EQ(ctrl.capacity_deficit(), 0.0);
}

TEST(ControllerOverload, MarkDownWhileOverloadedFallsBackToEvenSplit) {
  LoadBalanceController ctrl(4, overload_controller());
  TimeNs now = 0;
  drive_into_overload(ctrl, 4, &now);
  ASSERT_TRUE(ctrl.overloaded());

  ctrl.mark_down(1);
  const WeightVector& w = ctrl.weights();
  EXPECT_EQ(w[1], 0);
  EXPECT_EQ(std::accumulate(w.begin(), w.end(), Weight{0}), kWeightUnits);
  // Even over the three survivors (largest-remainder rounding: +-1).
  for (int j : {0, 2, 3}) {
    EXPECT_NEAR(w[static_cast<std::size_t>(j)], kWeightUnits / 3, 1)
        << "survivor " << j;
  }
}

TEST(ControllerOverload, SafeModeFallbackCanBeDisabled) {
  ControllerConfig cfg = overload_controller();
  cfg.safe_mode_on_overload_fault = false;
  LoadBalanceController ctrl(4, cfg);
  ctrl.set_weights({700, 100, 100, 100});
  TimeNs now = 0;
  drive_into_overload(ctrl, 4, &now);
  ASSERT_TRUE(ctrl.overloaded());
  ctrl.mark_down(1);
  // Proportional redistribution, not the even fallback: connection 0
  // keeps its dominant share.
  EXPECT_GT(ctrl.weights()[0], 600);
}

// --- policy safe mode ------------------------------------------------

TEST(PolicyOverload, SafeModePinsEvenSplitOverLiveConnections) {
  LoadBalancingPolicy policy(4, overload_controller());
  policy.on_channel_down(2);
  policy.enter_safe_mode();
  ASSERT_TRUE(policy.safe_mode());
  const WeightVector& w = policy.weights();
  EXPECT_EQ(w[2], 0);
  EXPECT_EQ(std::accumulate(w.begin(), w.end(), Weight{0}), kWeightUnits);
  for (int j : {0, 1, 3}) {
    EXPECT_NEAR(w[static_cast<std::size_t>(j)], kWeightUnits / 3, 1);
  }
  // Routing respects the pin: the downed connection is never picked.
  for (int i = 0; i < 300; ++i) EXPECT_NE(policy.pick_connection(), 2);

  // Safe mode tracks membership changes.
  policy.on_channel_up(2);
  EXPECT_NEAR(policy.weights()[2], kWeightUnits / 4, 1);

  policy.exit_safe_mode();
  EXPECT_FALSE(policy.safe_mode());
}

// --- simulator region ------------------------------------------------

sim::RegionConfig overloaded_region(bool open_loop) {
  sim::RegionConfig cfg;
  cfg.workers = 4;
  cfg.base_cost = micros(10);
  cfg.send_overhead = 200;
  cfg.sample_period = millis(5);
  if (open_loop) {
    // Offered load = 2x nominal capacity.
    cfg.source_interval = static_cast<DurationNs>(
        static_cast<double>(cfg.base_cost) / (cfg.workers * 2.0));
  }
  return cfg;
}

TEST(RegionOverload, SheddingBoundsBacklogAndKeepsAccounting) {
  sim::RegionConfig cfg = overloaded_region(/*open_loop=*/true);
  cfg.shed_high_watermark = 128;
  cfg.shed_low_watermark = 64;
  sim::Region region(
      cfg, std::make_unique<LoadBalancingPolicy>(
               4, overload_controller()));
  region.run_for(millis(500));

  EXPECT_GT(region.shed_tuples(), 0u);
  // Backlog stays at the watermark scale instead of growing all run.
  EXPECT_LE(region.splitter().source_backlog(region.now()),
            cfg.shed_high_watermark + 16);
  // Conservation: every sent tuple is emitted or demonstrably in flight
  // (no crashes here), and gaps only ever come from declared sheds.
  std::uint64_t in_flight = 0;
  for (int j = 0; j < 4; ++j) {
    in_flight += region.channel(j).occupancy();
    in_flight += region.merger().queue_size(j);
    if (region.worker(j).busy()) ++in_flight;
    if (region.worker(j).stalled()) ++in_flight;
  }
  EXPECT_EQ(region.splitter().total_sent(), region.emitted() + in_flight);
  EXPECT_LE(region.merger().gaps(), region.shed_tuples());
  EXPECT_GT(region.merger().gaps(), 0u);
  // Goodput stays near capacity: shedding protects the region, it does
  // not starve it. (Capacity = 4 workers / 10 us.)
  const double capacity =
      4.0 * kNanosPerSec / static_cast<double>(micros(10));
  const double goodput = static_cast<double>(region.emitted()) *
                         kNanosPerSec / static_cast<double>(millis(500));
  EXPECT_GT(goodput, 0.85 * capacity);
}

TEST(RegionOverload, NoSheddingMeansUnboundedBacklog) {
  sim::RegionConfig cfg = overloaded_region(/*open_loop=*/true);
  sim::Region region(
      cfg, std::make_unique<LoadBalancingPolicy>(
               4, overload_controller()));
  region.run_for(millis(500));
  EXPECT_EQ(region.shed_tuples(), 0u);
  // 2x overload for 500 ms at 10 us/tuple/4 workers: ~200k offered,
  // ~100k absorbable — the backlog holds the difference.
  EXPECT_GT(region.splitter().source_backlog(region.now()), 50'000u);
}

TEST(RegionOverload, ClosedLoopAdmissionThrottlesAndDeclares) {
  sim::RegionConfig cfg = overloaded_region(/*open_loop=*/false);
  cfg.admission_control = true;
  // Default (drafting-aware) saturation smoothing: inside a real region
  // the per-period blocking concentrates on a rotating leader, so the
  // instantaneous evenness used by the unit tests above never fires here.
  ControllerConfig ctrl;
  ctrl.enable_overload_protection = true;
  sim::Region region(cfg, std::make_unique<LoadBalancingPolicy>(4, ctrl));
  bool declared = false;
  double min_throttle_seen = 1.0;
  region.set_sample_hook([&](sim::Region& r) {
    declared = declared || r.policy().overload_state().overloaded;
    min_throttle_seen = std::min(min_throttle_seen, r.splitter().throttle());
  });
  region.run_for(millis(600));
  // Throttling relieves the blocking, the detector exits, load returns:
  // a limit cycle. Assert the cycle happened, not a particular phase.
  EXPECT_TRUE(declared);
  EXPECT_LT(min_throttle_seen, 1.0);
  EXPECT_GE(min_throttle_seen, cfg.min_throttle);
}

TEST(RegionOverload, WatchdogEscalatesToSafeModeAndStaysLive) {
  // Open-loop 2x overload with no admission control and no shedding
  // configured: stages 1 and 2 of the ladder are no-ops by construction,
  // so a persistent blocking budget violation must walk all the way to
  // safe mode — and the region must keep emitting once it gets there.
  sim::RegionConfig cfg = overloaded_region(/*open_loop=*/true);
  cfg.watchdog = true;
  cfg.watchdog_periods = 4;
  sim::Region region(cfg, std::make_unique<LoadBalancingPolicy>(4));
  region.run_for(millis(400));

  EXPECT_EQ(region.watchdog_stage(), 3);
  EXPECT_TRUE(region.policy().safe_mode());
  // Safe-mode WRR still routes: the region keeps emitting.
  EXPECT_GT(region.emitted(), 10'000u);
  const WeightVector& w = region.policy().weights();
  EXPECT_EQ(std::accumulate(w.begin(), w.end(), Weight{0}), kWeightUnits);
}

TEST(RegionOverload, WatchdogUnwindsAfterCalm) {
  // Open-loop source feasible after a burst: blocking stays high while
  // the burst lasts, then drains; the ladder must fully unwind.
  sim::RegionConfig cfg = overloaded_region(/*open_loop=*/true);
  cfg.source_interval = static_cast<DurationNs>(
      static_cast<double>(cfg.base_cost) / 4.0 * 1.6);  // 0.63x capacity
  cfg.watchdog = true;
  cfg.watchdog_periods = 4;
  cfg.shed_high_watermark = 256;
  cfg.shed_low_watermark = 128;
  sim::LoadProfile load(4);
  for (int j = 0; j < 4; ++j) load.add_load_until(j, 8.0, millis(150));
  // Round-robin keeps the post-burst phase quiet: an adaptive controller
  // re-explores periodically, and those transient skews can re-trip
  // stage 1 right at the measurement instant.
  sim::Region region(cfg, std::make_unique<RoundRobinPolicy>(4), load);
  bool escalated = false;
  region.set_sample_hook([&](sim::Region& r) {
    escalated = escalated || r.watchdog_stage() > 0;
  });
  region.run_for(millis(600));
  EXPECT_TRUE(escalated);
  EXPECT_EQ(region.watchdog_stage(), 0);
  EXPECT_FALSE(region.policy().safe_mode());
}

// --- flow pipeline ----------------------------------------------------
//
// The same ladder, driven through flow::Pipeline's per-stage control
// loops. Topology differs (the stage splitter is fed by an upstream
// channel, actuation lands on the pipeline's shared source), but the
// decisions are made by the identical control::RegionControlLoop.

flow::PipelineConfig overloaded_pipeline(bool open_loop) {
  flow::PipelineConfig cfg;
  cfg.source_overhead = 200;
  cfg.sample_period = millis(5);
  if (open_loop) {
    // Offered load = 2x the 4-way, 10 us/tuple stage capacity.
    cfg.source_interval =
        static_cast<DurationNs>(static_cast<double>(micros(10)) / 8.0);
  }
  return cfg;
}

TEST(PipelineOverload, WatchdogEscalatesToSafeModeAndStaysLive) {
  // Open-loop 2x overload with no admission control and no shedding:
  // stages 1 and 2 are no-ops by construction, so the persistent budget
  // violation must walk the stage's ladder all the way to safe mode —
  // and the pipeline must keep delivering once it gets there.
  flow::PipelineConfig cfg = overloaded_pipeline(/*open_loop=*/true);
  cfg.protection.watchdog = true;
  cfg.protection.watchdog_periods = 4;
  flow::PipelineBuilder builder(cfg);
  builder.parallel("score", 4, micros(10),
                   std::make_unique<LoadBalancingPolicy>(4));
  auto pipeline = builder.build();
  pipeline->run_for(millis(400));

  EXPECT_EQ(pipeline->stage_watchdog_stage(0), 3);
  EXPECT_TRUE(pipeline->stage_policy(0).safe_mode());
  EXPECT_GT(pipeline->delivered(), 10'000u);
  EXPECT_TRUE(pipeline->order_ok());
}

TEST(PipelineOverload, SourceSheddingKeepsGoodputAndOrdering) {
  flow::PipelineConfig cfg = overloaded_pipeline(/*open_loop=*/true);
  cfg.protection.shed_high_watermark = 128;
  cfg.protection.shed_low_watermark = 64;
  flow::PipelineBuilder builder(cfg);
  builder.parallel("score", 4, micros(10),
                   std::make_unique<LoadBalancingPolicy>(
                       4, overload_controller()));
  auto pipeline = builder.build();
  pipeline->run_for(millis(500));

  EXPECT_GT(pipeline->shed_tuples(), 0u);
  // Every shed sequence number became a gap in the stage merger, so
  // in-order delivery survives shedding.
  EXPECT_TRUE(pipeline->order_ok());
  // Goodput stays near capacity: shedding protects the pipeline, it
  // does not starve it. (Capacity = 4 workers / 10 us.)
  const double capacity =
      4.0 * kNanosPerSec / static_cast<double>(micros(10));
  const double goodput = static_cast<double>(pipeline->delivered()) *
                         kNanosPerSec / static_cast<double>(millis(500));
  EXPECT_GT(goodput, 0.80 * capacity);
}

TEST(PipelineOverload, ClosedLoopAdmissionThrottlesAndDeclares) {
  flow::PipelineConfig cfg = overloaded_pipeline(/*open_loop=*/false);
  cfg.protection.admission_control = true;
  ControllerConfig ctrl;
  ctrl.enable_overload_protection = true;
  flow::PipelineBuilder builder(cfg);
  builder.parallel("score", 4, micros(10),
                   std::make_unique<LoadBalancingPolicy>(4, ctrl));
  auto pipeline = builder.build();

  bool declared = false;
  double min_throttle_seen = 1.0;
  for (int step = 0; step < 120; ++step) {
    pipeline->run_for(millis(5));
    declared =
        declared || pipeline->stage_policy(0).overload_state().overloaded;
    min_throttle_seen =
        std::min(min_throttle_seen, pipeline->source_throttle());
  }
  // Same limit cycle as the standalone region: declare, throttle,
  // relieve, release. Assert the cycle happened, not a phase.
  EXPECT_TRUE(declared);
  EXPECT_LT(min_throttle_seen, 1.0);
  EXPECT_GE(min_throttle_seen, cfg.protection.min_throttle);
}

TEST(PipelineOverload, LegacyAdmissionFieldsStillWork) {
  // Pre-control-plane call sites set the flat fields; merged_protection
  // must honor them identically.
  flow::PipelineConfig cfg = overloaded_pipeline(/*open_loop=*/false);
  cfg.admission_control = true;  // deprecated alias
  const control::ProtectionConfig prot = cfg.resolved_protection();
  EXPECT_TRUE(prot.admission_control);
  EXPECT_EQ(prot.min_throttle, 0.25);
}

}  // namespace
}  // namespace slb
