// Tests for the splitter routing policies and weight rounding.
#include <gtest/gtest.h>

#include <vector>

#include "core/policies.h"

namespace slb {
namespace {

TEST(RoundRobin, CyclesThroughConnections) {
  RoundRobinPolicy rr(3);
  EXPECT_EQ(rr.pick_connection(), 0);
  EXPECT_EQ(rr.pick_connection(), 1);
  EXPECT_EQ(rr.pick_connection(), 2);
  EXPECT_EQ(rr.pick_connection(), 0);
}

TEST(RoundRobin, WeightsAreEven) {
  RoundRobinPolicy rr(3);
  EXPECT_EQ(rr.weights(), even_weights(3));
  EXPECT_FALSE(rr.reroute_on_block());
  EXPECT_EQ(rr.name(), "RR");
}

TEST(RoundRobin, IgnoresSamples) {
  RoundRobinPolicy rr(2);
  const std::vector<DurationNs> counters{seconds(1), 0};
  rr.on_sample(seconds(1), counters);
  rr.on_sample(seconds(2), counters);
  EXPECT_EQ(rr.weights(), even_weights(2));
}

TEST(Reroute, FlagsTransportRerouting) {
  RerouteOnBlockPolicy p(2);
  EXPECT_TRUE(p.reroute_on_block());
  EXPECT_EQ(p.name(), "RR-reroute");
}

TEST(LbPolicy, NameReflectsDecay) {
  ControllerConfig adaptive;
  adaptive.decay_factor = 0.9;
  EXPECT_EQ(LoadBalancingPolicy(2, adaptive).name(), "LB-adaptive");
  ControllerConfig statc;
  statc.decay_factor = 1.0;
  EXPECT_EQ(LoadBalancingPolicy(2, statc).name(), "LB-static");
}

TEST(LbPolicy, RoutesByControllerWeights) {
  LoadBalancingPolicy p(2);
  std::vector<DurationNs> counters{0, 0};
  p.on_sample(seconds(1), counters);  // baseline
  // Connection 0 blocked the whole period at its even weight.
  counters[0] = seconds(1);
  p.on_sample(seconds(2), counters);
  EXPECT_LT(p.weights()[0], 500);
  // Routing follows: over 1000 picks connection 0 gets its weight's share.
  int zero_picks = 0;
  for (int i = 0; i < kWeightUnits; ++i) {
    if (p.pick_connection() == 0) ++zero_picks;
  }
  EXPECT_EQ(zero_picks, p.weights()[0]);
}

TEST(Oracle, AppliesInitialPhaseImmediately) {
  OraclePolicy oracle(2, {{0, {3.0, 1.0}}});
  EXPECT_EQ(oracle.weights(), (WeightVector{750, 250}));
}

TEST(Oracle, SwitchesPhasesOnSchedule) {
  OraclePolicy oracle(2, {{0, {1.0, 1.0}}, {seconds(10), {1.0, 3.0}}});
  const std::vector<DurationNs> unused{0, 0};
  oracle.on_sample(seconds(5), unused);
  EXPECT_EQ(oracle.weights(), (WeightVector{500, 500}));
  oracle.on_sample(seconds(10), unused);
  EXPECT_EQ(oracle.weights(), (WeightVector{250, 750}));
}

TEST(Oracle, SkipsToLatestDuePhase) {
  OraclePolicy oracle(2, {{0, {1.0, 1.0}},
                          {seconds(10), {9.0, 1.0}},
                          {seconds(20), {1.0, 9.0}}});
  const std::vector<DurationNs> unused{0, 0};
  oracle.on_sample(seconds(30), unused);  // jumped past two phases
  EXPECT_EQ(oracle.weights(), (WeightVector{100, 900}));
}

TEST(Oracle, UnsortedScheduleIsSorted) {
  OraclePolicy oracle(2, {{seconds(10), {1.0, 3.0}}, {0, {1.0, 1.0}}});
  EXPECT_EQ(oracle.weights(), (WeightVector{500, 500}));
}

// ---- weights_from_shares -------------------------------------------------

TEST(WeightsFromShares, ExactProportions) {
  EXPECT_EQ(weights_from_shares({1.0, 1.0}), (WeightVector{500, 500}));
  EXPECT_EQ(weights_from_shares({3.0, 1.0}), (WeightVector{750, 250}));
}

TEST(WeightsFromShares, SumsToTotalDespiteRounding) {
  const WeightVector w = weights_from_shares({1.0, 1.0, 1.0});
  EXPECT_EQ(total_weight(w), kWeightUnits);
  for (Weight x : w) EXPECT_NEAR(x, 333, 1);
}

TEST(WeightsFromShares, ZeroShareGetsZeroWeight) {
  const WeightVector w = weights_from_shares({0.0, 2.0});
  EXPECT_EQ(w, (WeightVector{0, 1000}));
}

TEST(WeightsFromShares, UnnormalizedSharesAccepted) {
  EXPECT_EQ(weights_from_shares({10.0, 30.0}),
            weights_from_shares({1.0, 3.0}));
}

TEST(WeightsFromShares, ManyConnectionsStillExact) {
  std::vector<double> shares(64, 1.0);
  const WeightVector w = weights_from_shares(shares);
  EXPECT_EQ(total_weight(w), kWeightUnits);
  for (Weight x : w) EXPECT_NEAR(x, 15.6, 1.0);
}

TEST(WeightsFromShares, LargestRemainderWins) {
  // Shares 1:1:2 -> exact 250, 250, 500: no remainder case.
  // Shares 1:1:1:3 -> 166.7, 166.7, 166.7, 500 -> remainders promote the
  // first two .7s (ties by index).
  const WeightVector w = weights_from_shares({1, 1, 1, 3});
  EXPECT_EQ(total_weight(w), kWeightUnits);
  EXPECT_EQ(w[3], 500);
}

}  // namespace
}  // namespace slb
