// Tests for the minimax RAP solvers: Fox greedy vs the bisection solver
// vs brute force, constraint handling, multiplicities, and tie behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "core/rap.h"
#include "util/rng.h"

namespace slb {
namespace {

/// Builds a problem over explicit per-variable value tables.
RapProblem table_problem(std::vector<std::vector<double>> tables,
                         Weight total) {
  RapProblem p;
  p.total = total;
  p.vars.resize(tables.size());
  for (std::size_t j = 0; j < tables.size(); ++j) {
    p.vars[j].min = 0;
    p.vars[j].max = static_cast<Weight>(tables[j].size()) - 1;
  }
  p.eval = [tables = std::move(tables)](int j, Weight w) {
    return tables[static_cast<std::size_t>(j)][static_cast<std::size_t>(w)];
  };
  return p;
}

TEST(Fox, TrivialSingleVariable) {
  RapProblem p = table_problem({{0, 1, 2, 3, 4, 5}}, 5);
  const RapSolution s = solve_fox(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.weights, WeightVector{5});
  EXPECT_DOUBLE_EQ(s.objective, 5.0);
}

TEST(Fox, PrefersCheaperVariable) {
  // Variable 0 ramps fast, variable 1 is free until 3.
  RapProblem p = table_problem({{0, 10, 20, 30}, {0, 0, 0, 0}}, 3);
  const RapSolution s = solve_fox(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.weights, (WeightVector{0, 3}));
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Fox, BalancesLinearFunctions) {
  // f0(w) = 2w, f1(w) = w: optimum puts twice as much on variable 1.
  RapProblem p;
  p.total = 9;
  p.vars = {{0, 9, 1}, {0, 9, 1}};
  p.eval = [](int j, Weight w) {
    return j == 0 ? 2.0 * w : 1.0 * w;
  };
  const RapSolution s = solve_fox(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.weights[0], 3);
  EXPECT_EQ(s.weights[1], 6);
  EXPECT_DOUBLE_EQ(s.objective, 6.0);
}

TEST(Fox, RespectsMinimumBounds) {
  RapProblem p;
  p.total = 10;
  p.vars = {{4, 10, 1}, {0, 10, 1}};
  p.eval = [](int j, Weight w) { return j == 0 ? 100.0 * w : 1.0 * w; };
  const RapSolution s = solve_fox(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.weights[0], 4);  // pinned at its minimum despite high cost
  EXPECT_EQ(s.weights[1], 6);
}

TEST(Fox, RespectsMaximumBounds) {
  RapProblem p;
  p.total = 10;
  p.vars = {{0, 3, 1}, {0, 10, 1}};
  p.eval = [](int j, Weight w) { return j == 0 ? 0.0 : 1.0 * w; };
  const RapSolution s = solve_fox(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.weights[0], 3);  // capped even though it is free
  EXPECT_EQ(s.weights[1], 7);
}

TEST(Fox, InfeasibleWhenMinimaExceedTotal) {
  RapProblem p;
  p.total = 5;
  p.vars = {{4, 10, 1}, {4, 10, 1}};
  p.eval = [](int, Weight w) { return 1.0 * w; };
  const RapSolution s = solve_fox(p);
  EXPECT_FALSE(s.feasible);
}

TEST(Fox, InfeasibleWhenMaximaBelowTotal) {
  RapProblem p;
  p.total = 100;
  p.vars = {{0, 10, 1}, {0, 10, 1}};
  p.eval = [](int, Weight w) { return 1.0 * w; };
  const RapSolution s = solve_fox(p);
  EXPECT_FALSE(s.feasible);
  EXPECT_EQ(s.allocated, 20);  // best effort
}

TEST(Fox, IdenticalZeroFunctionsSpreadEvenly) {
  // The startup case: no blocking observed anywhere. The solver must not
  // starve any variable (regression test for the lexicographic tie-break
  // pathology found with the threaded runtime).
  RapProblem p;
  p.total = 1000;
  p.vars.assign(4, RapVariable{0, 1000, 1});
  p.eval = [](int, Weight) { return 0.0; };
  const RapSolution s = solve_fox(p);
  ASSERT_TRUE(s.feasible);
  for (Weight w : s.weights) EXPECT_EQ(w, 250);
}

TEST(Fox, ZeroTotalGivesAllZeros) {
  RapProblem p;
  p.total = 0;
  p.vars.assign(3, RapVariable{0, 10, 1});
  p.eval = [](int, Weight w) { return 1.0 * w; };
  const RapSolution s = solve_fox(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.weights, (WeightVector{0, 0, 0}));
}

TEST(Fox, MultiplicityConsumesResourcePerMember) {
  // One "cluster" of 3 identical members vs one singleton; all free.
  RapProblem p;
  p.total = 8;
  p.vars = {{0, 8, 3}, {0, 8, 1}};
  p.eval = [](int, Weight) { return 0.0; };
  const RapSolution s = solve_fox(p);
  EXPECT_EQ(3 * s.weights[0] + s.weights[1], s.allocated);
  EXPECT_LE(s.allocated, 8);
  EXPECT_GE(s.allocated, 8 - 2);  // leftover < min multiplicity would be 1..
  EXPECT_TRUE(s.feasible);
}

TEST(Fox, MultiplicityPrefersSameMarginalValue) {
  // Cluster of 2 with f(w)=w and singleton with f(w)=w: per-member
  // weights should end up roughly equal.
  RapProblem p;
  p.total = 9;
  p.vars = {{0, 9, 2}, {0, 9, 1}};
  p.eval = [](int, Weight w) { return 1.0 * w; };
  const RapSolution s = solve_fox(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.allocated, 9);
  EXPECT_EQ(2 * s.weights[0] + s.weights[1], 9);
  EXPECT_NEAR(s.weights[0], s.weights[1], 1);
}

TEST(Bisect, MatchesFoxOnSimpleInstance) {
  RapProblem p;
  p.total = 9;
  p.vars = {{0, 9, 1}, {0, 9, 1}};
  p.eval = [](int j, Weight w) { return j == 0 ? 2.0 * w : 1.0 * w; };
  const RapSolution fox = solve_fox(p);
  const RapSolution bis = solve_bisect(p);
  EXPECT_TRUE(bis.feasible);
  EXPECT_DOUBLE_EQ(bis.objective, fox.objective);
  EXPECT_EQ(bis.allocated, p.total);
}

TEST(Bisect, InfeasibleDetection) {
  RapProblem p;
  p.total = 50;
  p.vars = {{0, 10, 1}, {0, 10, 1}};
  p.eval = [](int, Weight w) { return 1.0 * w; };
  EXPECT_FALSE(solve_bisect(p).feasible);
}

// ---- randomized cross-validation ----------------------------------------

RapProblem random_monotone_problem(Rng& rng, int n, Weight domain,
                                   Weight total, bool with_bounds) {
  std::vector<std::vector<double>> tables;
  for (int j = 0; j < n; ++j) {
    std::vector<double> t(static_cast<std::size_t>(domain) + 1);
    double v = 0.0;
    for (auto& cell : t) {
      v += rng.uniform(0.0, 1.0) < 0.4 ? 0.0 : rng.uniform(0.0, 2.0);
      cell = v;
    }
    tables.push_back(std::move(t));
  }
  RapProblem p = table_problem(std::move(tables), total);
  if (with_bounds) {
    for (auto& v : p.vars) {
      v.min = static_cast<Weight>(rng.below(3));
      v.max =
          static_cast<Weight>(domain - static_cast<Weight>(rng.below(3)));
    }
  }
  return p;
}

class RapRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RapRandom, FoxMatchesBruteForceObjective) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.below(3));       // 2..4 vars
  const Weight domain = 4 + static_cast<Weight>(rng.below(5));  // 4..8
  const Weight total = static_cast<Weight>(rng.below(
      static_cast<std::uint64_t>(n * domain + 1)));
  RapProblem p = random_monotone_problem(rng, n, domain, total, true);

  Weight min_sum = 0;
  Weight max_sum = 0;
  for (const auto& v : p.vars) {
    min_sum += v.min;
    max_sum += v.max;
  }
  if (min_sum > total || max_sum < total) return;  // infeasible instance

  const RapSolution fox = solve_fox(p);
  ASSERT_TRUE(fox.feasible);
  const double brute = bruteforce_objective(p);
  EXPECT_NEAR(fox.objective, brute, 1e-9);
}

TEST_P(RapRandom, BisectMatchesFoxObjective) {
  Rng rng(GetParam() ^ 0xdeadbeef);
  const int n = 2 + static_cast<int>(rng.below(4));
  const Weight domain = 6 + static_cast<Weight>(rng.below(8));
  const Weight total = static_cast<Weight>(
      1 + rng.below(static_cast<std::uint64_t>(n * domain)));
  RapProblem p = random_monotone_problem(rng, n, domain, total, false);

  const RapSolution fox = solve_fox(p);
  const RapSolution bis = solve_bisect(p);
  ASSERT_EQ(fox.feasible, bis.feasible);
  if (fox.feasible) {
    EXPECT_NEAR(fox.objective, bis.objective, 1e-9);
    EXPECT_EQ(bis.allocated, p.total);
  }
}

TEST_P(RapRandom, SolutionsRespectConstraints) {
  Rng rng(GetParam() ^ 0x777);
  const int n = 2 + static_cast<int>(rng.below(6));
  const Weight domain = 10;
  const Weight total = static_cast<Weight>(
      rng.below(static_cast<std::uint64_t>(n * domain + 1)));
  RapProblem p = random_monotone_problem(rng, n, domain, total, true);
  for (const RapSolution& s : {solve_fox(p), solve_bisect(p)}) {
    if (!s.feasible) continue;
    Weight sum = 0;
    for (std::size_t j = 0; j < s.weights.size(); ++j) {
      EXPECT_GE(s.weights[j], p.vars[j].min);
      EXPECT_LE(s.weights[j], p.vars[j].max);
      sum += s.weights[j];
    }
    EXPECT_EQ(sum, total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RapRandom,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(RapScale, FullScaleInstanceSolvesQuickly) {
  // N=64 connections, R=1000 units: the production shape. Not a timing
  // assertion, just a "does not blow up" guard; the bench measures speed.
  RapProblem p;
  p.total = kWeightUnits;
  p.vars.assign(64, RapVariable{0, kWeightUnits, 1});
  p.eval = [](int j, Weight w) {
    return static_cast<double>(w) * (1.0 + 0.01 * j);
  };
  const RapSolution s = solve_fox(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.allocated, kWeightUnits);
  // Faster variables get more load.
  EXPECT_GT(s.weights.front(), s.weights.back());
}

}  // namespace
}  // namespace slb
