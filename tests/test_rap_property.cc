// Property-based cross-validation of the minimax RAP solvers (paper
// Section 5.2): ~1000 seeded random instances with monotone non-decreasing
// objective tables over small grids, checked against the brute-force
// minimax optimum. Fox's greedy and the bisection solver must both land on
// the optimal objective whenever increments are uniform (unit
// multiplicities, or one shared cluster size dividing the budget), stay
// bounded below by the optimum for mixed cluster sizes, agree with each
// other on feasibility, and respect every constraint.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rap.h"
#include "core/types.h"
#include "util/rng.h"

namespace slb {
namespace {

/// One random instance: per-variable monotone tables F_j over w in
/// [0, total], random bounds, optional multiplicities.
struct Instance {
  std::vector<std::vector<double>> tables;
  RapProblem problem;
};

/// Multiplicity regimes. kUniform keeps every variable at one shared
/// multiplicity c with c | total, which makes the clustered problem
/// isomorphic to a unit-multiplicity one (exact solvers stay exact).
/// kMixed draws independent multiplicities — there the integer shortfall
/// rule makes greedy/bisection heuristics, so only bounds are asserted.
enum class Mult { kUnit, kUniform, kMixed };

Instance make_instance(Rng& rng, Mult mult) {
  Instance inst;
  const int n = static_cast<int>(2 + rng.below(3));  // 2..4 vars
  Weight total = static_cast<Weight>(6 + rng.below(7));  // 6..12 units
  const int uniform_c =
      mult == Mult::kUniform ? static_cast<int>(1 + rng.below(3)) : 1;
  if (mult == Mult::kUniform) total *= uniform_c;  // keep c | total
  inst.tables.resize(static_cast<std::size_t>(n));
  inst.problem.vars.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    auto& table = inst.tables[static_cast<std::size_t>(j)];
    table.resize(static_cast<std::size_t>(total) + 1);
    // Monotone non-decreasing by construction: random non-negative steps,
    // occasionally zero (flat stretches exercise tie-breaking).
    double v = rng.uniform(0.0, 1.0);
    for (Weight w = 0; w <= total; ++w) {
      table[static_cast<std::size_t>(w)] = v;
      if (!rng.chance(0.3)) v += rng.uniform(0.0, 2.0);
    }
    RapVariable& var = inst.problem.vars[static_cast<std::size_t>(j)];
    var.min = static_cast<Weight>(rng.below(3));          // 0..2
    var.max = static_cast<Weight>(
        var.min + 1 + rng.below(static_cast<std::uint64_t>(total)));
    if (var.max > total) var.max = total;
    switch (mult) {
      case Mult::kUnit:
        var.multiplicity = 1;
        break;
      case Mult::kUniform:
        var.multiplicity = uniform_c;
        break;
      case Mult::kMixed:
        var.multiplicity = static_cast<int>(1 + rng.below(3));  // 1..3
        break;
    }
  }
  inst.problem.total = total;
  // Capture the tables by value: the instance is returned and the lambda
  // must not dangle into the pre-move object.
  inst.problem.eval = [tables = inst.tables](int j, Weight w) {
    return tables[static_cast<std::size_t>(j)][static_cast<std::size_t>(w)];
  };
  return inst;
}

/// Feasibility from the constraint system alone.
bool constraints_feasible(const RapProblem& p) {
  long lo = 0;
  long hi = 0;
  for (const RapVariable& v : p.vars) {
    lo += static_cast<long>(v.min) * v.multiplicity;
    hi += static_cast<long>(v.max) * v.multiplicity;
  }
  return lo <= p.total && p.total <= hi;
}

void check_solution(const RapProblem& p, const RapSolution& s,
                    std::uint64_t seed, const char* solver) {
  ASSERT_EQ(s.weights.size(), p.vars.size()) << solver << " seed " << seed;
  double objective = 0.0;
  Weight allocated = 0;
  for (std::size_t j = 0; j < p.vars.size(); ++j) {
    const RapVariable& v = p.vars[j];
    EXPECT_GE(s.weights[j], v.min) << solver << " seed " << seed;
    EXPECT_LE(s.weights[j], v.max) << solver << " seed " << seed;
    objective = std::max(
        objective, p.eval(static_cast<int>(j), s.weights[j]));
    allocated += s.weights[j] * v.multiplicity;
  }
  EXPECT_DOUBLE_EQ(s.objective, objective) << solver << " seed " << seed;
  EXPECT_EQ(s.allocated, allocated) << solver << " seed " << seed;
  if (s.feasible) {
    // Feasible solutions land on the budget exactly, or short of it by
    // less than the smallest multiplicity (the solvers' declared
    // contract when multiplicities do not divide the total evenly).
    int min_mult = std::numeric_limits<int>::max();
    for (const RapVariable& v : p.vars) {
      min_mult = std::min(min_mult, v.multiplicity);
    }
    EXPECT_LT(p.total - allocated, min_mult) << solver << " seed " << seed;
    EXPECT_LE(allocated, p.total) << solver << " seed " << seed;
  }
}

void run_property_suite(Mult mult, int instances, std::uint64_t seed_base) {
  int feasible_count = 0;
  for (int i = 0; i < instances; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i) + 1u;
    Rng rng(seed);
    Instance inst = make_instance(rng, mult);
    const RapProblem& p = inst.problem;

    const RapSolution fox = solve_fox(p);
    const RapSolution bisect = solve_bisect(p);

    if (mult != Mult::kMixed) {
      // Unit or uniform multiplicities with c | total: feasibility is
      // exactly the constraint system's interval test, and both solvers
      // must agree on it.
      EXPECT_EQ(fox.feasible, constraints_feasible(p)) << "seed " << seed;
      EXPECT_EQ(fox.feasible, bisect.feasible) << "seed " << seed;
    }
    check_solution(p, fox, seed, "fox");
    check_solution(p, bisect, seed, "bisect");

    if (!fox.feasible || !bisect.feasible) continue;
    ++feasible_count;

    const double best = bruteforce_objective(p);
    if (mult == Mult::kMixed) {
      // Mixed multiplicities: marginal-allocation greedy loses its
      // exchange-argument exactness when increments have different
      // sizes, and the brute force additionally reaches shortfall
      // assignments (total - used < min multiplicity) the exact-fill
      // solvers never consider. Only the optimality *bound* holds: no
      // achieved objective can beat the exhaustive optimum.
      EXPECT_LE(best, fox.objective + 1e-12) << "fox seed " << seed;
      EXPECT_LE(best, bisect.objective + 1e-12) << "bisect seed " << seed;
      continue;
    }

    // Unit or uniform multiplicities dividing the budget: both solvers
    // must hit the brute-force minimax optimum exactly (the brute force
    // enumerates the same grid, so the optima are directly comparable).
    EXPECT_DOUBLE_EQ(fox.objective, best) << "fox seed " << seed;
    EXPECT_DOUBLE_EQ(bisect.objective, best) << "bisect seed " << seed;
  }
  // The generator must actually exercise the interesting (feasible) path
  // most of the time, or the suite silently degrades to bounds checks.
  EXPECT_GT(feasible_count, instances / 2);
}

TEST(RapProperty, FoxAndBisectMatchBruteforceFlat) {
  run_property_suite(Mult::kUnit, 700, 0);
}

TEST(RapProperty, FoxAndBisectMatchBruteforceUniformClusters) {
  run_property_suite(Mult::kUniform, 200, 300000);
}

TEST(RapProperty, FoxAndBisectBoundedByBruteforceMixedClusters) {
  run_property_suite(Mult::kMixed, 300, 500000);
}

TEST(RapProperty, InfeasibleInstancesAreFlagged) {
  // Demand below the lower bounds and above the upper bounds.
  RapProblem p;
  p.total = 4;
  p.vars = {{3, 5, 1}, {3, 5, 1}};  // sum of mins = 6 > 4
  p.eval = [](int, Weight w) { return static_cast<double>(w); };
  EXPECT_FALSE(solve_fox(p).feasible);
  EXPECT_FALSE(solve_bisect(p).feasible);

  p.vars = {{0, 1, 1}, {0, 1, 1}};  // sum of maxes = 2 < 4
  EXPECT_FALSE(solve_fox(p).feasible);
  EXPECT_FALSE(solve_bisect(p).feasible);
}

}  // namespace
}  // namespace slb
