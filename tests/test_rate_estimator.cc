// Tests for BlockingRateEstimator: cumulative counters -> smoothed rates.
#include <gtest/gtest.h>

#include <vector>

#include "core/blocking_counter.h"
#include "core/rate_estimator.h"
#include "util/time.h"

namespace slb {
namespace {

TEST(BlockingCounter, AccumulatesAndResets) {
  BlockingCounter c;
  EXPECT_EQ(c.cumulative(), 0);
  c.add(100);
  c.add(50);
  EXPECT_EQ(c.cumulative(), 150);
  c.reset();
  EXPECT_EQ(c.cumulative(), 0);
}

TEST(BlockingCounterSet, SamplesAllConnections) {
  BlockingCounterSet set(3);
  set.at(0).add(10);
  set.at(2).add(30);
  const std::vector<DurationNs> s = set.sample();
  EXPECT_EQ(s, (std::vector<DurationNs>{10, 0, 30}));
  set.reset_all();
  EXPECT_EQ(set.sample(), (std::vector<DurationNs>{0, 0, 0}));
}

TEST(RateEstimator, FirstIngestOnlyBaselines) {
  BlockingRateEstimator est(2, 1.0);
  const std::vector<DurationNs> c{100, 200};
  est.ingest(seconds(1), c);
  EXPECT_FALSE(est.ready());
}

TEST(RateEstimator, ComputesRateFromDeltas) {
  BlockingRateEstimator est(2, 1.0);
  est.ingest(0, std::vector<DurationNs>{0, 0});
  // Over one second: connection 0 blocked 0.5 s, connection 1 blocked 0.
  est.ingest(seconds(1),
             std::vector<DurationNs>{seconds(1) / 2, 0});
  ASSERT_TRUE(est.ready());
  EXPECT_NEAR(est.rate(0), 0.5, 1e-12);
  EXPECT_NEAR(est.rate(1), 0.0, 1e-12);
}

TEST(RateEstimator, SmoothsAcrossPeriods) {
  BlockingRateEstimator est(1, 0.5);
  est.ingest(0, std::vector<DurationNs>{0});
  est.ingest(seconds(1), std::vector<DurationNs>{seconds(1)});  // rate 1.0
  est.ingest(seconds(2), std::vector<DurationNs>{seconds(1)});  // rate 0.0
  EXPECT_NEAR(est.rate(0), 0.5, 1e-12);
  EXPECT_NEAR(est.last_raw_rate(0), 0.0, 1e-12);
}

TEST(RateEstimator, CounterResetTreatedAsNewBaseline) {
  BlockingRateEstimator est(1, 1.0);
  est.ingest(0, std::vector<DurationNs>{seconds(5)});
  // The transport layer reset its counter; the new cumulative value is
  // *smaller*. The estimator must not produce a negative rate.
  est.ingest(seconds(1), std::vector<DurationNs>{millis(100)});
  ASSERT_TRUE(est.ready());
  EXPECT_GE(est.rate(0), 0.0);
  EXPECT_NEAR(est.rate(0), 0.1, 1e-9);
}

TEST(RateEstimator, IgnoresNonAdvancingTime) {
  BlockingRateEstimator est(1, 1.0);
  est.ingest(seconds(1), std::vector<DurationNs>{0});
  est.ingest(seconds(1), std::vector<DurationNs>{seconds(1)});  // same time
  EXPECT_FALSE(est.ready());
  est.ingest(seconds(2), std::vector<DurationNs>{seconds(1)});
  EXPECT_TRUE(est.ready());
  EXPECT_NEAR(est.rate(0), 1.0, 1e-12);
}

TEST(RateEstimator, ResetForgetsHistory) {
  BlockingRateEstimator est(1, 0.5);
  est.ingest(0, std::vector<DurationNs>{0});
  est.ingest(seconds(1), std::vector<DurationNs>{seconds(1)});
  est.reset();
  EXPECT_FALSE(est.ready());
  EXPECT_DOUBLE_EQ(est.rate(0), 0.0);
}

TEST(RateEstimator, ManyConnectionsIndependent) {
  const int n = 16;
  BlockingRateEstimator est(n, 1.0);
  std::vector<DurationNs> c(n, 0);
  est.ingest(0, c);
  for (int j = 0; j < n; ++j) c[static_cast<std::size_t>(j)] = j * millis(10);
  est.ingest(seconds(1), c);
  for (int j = 0; j < n; ++j) {
    EXPECT_NEAR(est.rate(j), 0.01 * j, 1e-12) << "connection " << j;
  }
}

}  // namespace
}  // namespace slb
