// Tests for the per-connection blocking-rate function F_j: raw-data
// smoothing, monotone fit, interpolation/extrapolation, knee detection,
// and the exploration decay.
#include <gtest/gtest.h>

#include "core/rate_function.h"
#include "util/rng.h"

namespace slb {
namespace {

TEST(RateFunction, FreshFunctionIsZeroEverywhere) {
  RateFunction f;
  EXPECT_DOUBLE_EQ(f.value(0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(500), 0.0);
  EXPECT_DOUBLE_EQ(f.value(kWeightUnits), 0.0);
  EXPECT_EQ(f.observed_points(), 0);
  EXPECT_EQ(f.service_rate(), kWeightUnits);
}

TEST(RateFunction, OriginAlwaysZero) {
  RateFunction f;
  f.observe(1, 0.9);
  EXPECT_DOUBLE_EQ(f.value(0), 0.0);
  EXPECT_GT(f.value(1), 0.0);
}

TEST(RateFunction, ObservationAtZeroWeightIgnored) {
  RateFunction f;
  f.observe(0, 5.0);
  EXPECT_EQ(f.observed_points(), 0);
  EXPECT_DOUBLE_EQ(f.value(0), 0.0);
}

TEST(RateFunction, SinglePointLinearInterpolationFromOrigin) {
  RateFunction f;
  f.observe(500, 0.8);
  EXPECT_NEAR(f.value(250), 0.4, 1e-9);
  EXPECT_NEAR(f.value(500), 0.8, 1e-9);
}

TEST(RateFunction, ExtrapolatesLastSlope) {
  RateFunction f;
  f.observe(400, 0.4);
  f.observe(500, 0.5);
  // Slope 0.001/unit beyond 500.
  EXPECT_NEAR(f.value(600), 0.6, 1e-6);
  EXPECT_NEAR(f.value(1000), 1.0, 1e-6);
}

TEST(RateFunction, InterpolatesBetweenPoints) {
  RateFunction f;
  f.observe(200, 0.2);
  f.observe(600, 1.0);
  EXPECT_NEAR(f.value(400), 0.6, 1e-9);
}

TEST(RateFunction, MixAlphaBlendsRepeatObservations) {
  RateFunctionConfig cfg;
  cfg.mix_alpha = 0.5;
  RateFunction f(cfg);
  f.observe(300, 1.0);
  f.observe(300, 0.0);
  EXPECT_NEAR(f.value(300), 0.5, 1e-9);
  EXPECT_EQ(f.observed_points(), 1);
}

TEST(RateFunction, FittedIsAlwaysMonotone) {
  Rng rng(42);
  RateFunction f;
  for (int i = 0; i < 200; ++i) {
    f.observe(static_cast<Weight>(1 + rng.below(kWeightUnits)),
              rng.uniform(0.0, 1.0));
  }
  const auto& fit = f.fitted();
  for (std::size_t i = 1; i < fit.size(); ++i) {
    EXPECT_GE(fit[i], fit[i - 1] - 1e-12);
  }
}

TEST(RateFunction, NonMonotoneRawDataIsForcedMonotone) {
  RateFunction f;
  f.observe(200, 0.9);  // high blocking at low weight
  f.observe(800, 0.1);  // low blocking at high weight: contradiction
  EXPECT_LE(f.value(200), f.value(800) + 1e-12);
}

TEST(RateFunction, ServiceRateIsFirstBlockingWeight) {
  RateFunction f;
  f.observe(300, 0.0, 1.0);
  f.observe(500, 0.6);
  // Zero until 300, then ramps up: the knee is just past 300.
  const Weight knee = f.service_rate();
  EXPECT_GT(knee, 300);
  EXPECT_LE(knee, 320);
}

TEST(RateFunction, ServiceRateOfSaturatedConnectionIsLow) {
  RateFunction f;
  f.observe(1, 0.9);  // blocks at 0.1% of the load
  EXPECT_EQ(f.service_rate(), 1);
}

TEST(RateFunction, DecayAboveReducesOnlyHigherWeights) {
  RateFunction f;
  f.observe(200, 0.4);
  f.observe(800, 0.8);
  const double at_200 = f.value(200);
  const double at_800 = f.value(800);
  f.decay_above(500, 0.5);
  EXPECT_NEAR(f.value(200), at_200, 1e-9);
  EXPECT_NEAR(f.value(800), at_800 * 0.5, 1e-9);
}

TEST(RateFunction, RepeatedDecayFlattensFunction) {
  RateFunction f;
  f.observe(100, 0.1);
  f.observe(900, 0.9);
  for (int i = 0; i < 200; ++i) f.decay_above(100, 0.9);
  // Beyond the held weight the function decays toward the value at the
  // held weight (monotone regression stops it from dipping below).
  EXPECT_LE(f.value(900), f.value(100) + 1e-6);
  EXPECT_GE(f.value(900), f.value(100) - 1e-6);
}

TEST(RateFunction, DecayDoesNothingWithoutHigherPoints) {
  RateFunction f;
  f.observe(100, 0.5);
  const double before = f.value(100);
  f.decay_above(100, 0.5);  // no raw point above 100
  EXPECT_DOUBLE_EQ(f.value(100), before);
}

TEST(RateFunction, ResetClearsEvidence) {
  RateFunction f;
  f.observe(500, 0.7);
  f.reset();
  EXPECT_EQ(f.observed_points(), 0);
  EXPECT_DOUBLE_EQ(f.value(500), 0.0);
}

TEST(RateFunction, LoadRawReplacesData) {
  RateFunction donor;
  donor.observe(400, 0.4);
  RateFunction f;
  f.observe(100, 0.9);
  f.load_raw(donor.raw());
  EXPECT_EQ(f.observed_points(), 1);
  EXPECT_NEAR(f.value(400), 0.4, 1e-9);
  EXPECT_LT(f.value(100), 0.2);  // old contradictory point gone
}

TEST(RateFunction, LoadRawDropsOriginEntry) {
  std::map<Weight, RawPoint> raw;
  raw[0] = RawPoint{5.0, 1.0};  // bogus origin evidence must be ignored
  raw[100] = RawPoint{0.1, 1.0};
  RateFunction f;
  f.load_raw(raw);
  EXPECT_EQ(f.observed_points(), 1);
  EXPECT_DOUBLE_EQ(f.value(0), 0.0);
}

TEST(RateFunction, PointWeightIsCapped) {
  RateFunctionConfig cfg;
  cfg.max_point_weight = 2.0;
  RateFunction f(cfg);
  for (int i = 0; i < 100; ++i) f.observe(300, 1.0);
  EXPECT_LE(f.raw().at(300).weight, 2.0);
}

TEST(RateFunction, ZeroSampleWeightObservationIgnored) {
  RateFunction f;
  f.observe(300, 1.0, 0.0);
  EXPECT_EQ(f.observed_points(), 0);
}

// Sweep: a function observed from a synthetic "true" knee function should
// recover the knee approximately, for a range of knee positions.
class KneeSweep : public ::testing::TestWithParam<Weight> {};

TEST_P(KneeSweep, RecoversKneeLocation) {
  const Weight true_knee = GetParam();
  RateFunction f;
  for (Weight w = 50; w <= kWeightUnits; w += 50) {
    const double rate =
        w <= true_knee ? 0.0
                       : 0.001 * static_cast<double>(w - true_knee);
    f.observe(w, rate);
  }
  EXPECT_NEAR(f.service_rate(), true_knee, 51);
}

INSTANTIATE_TEST_SUITE_P(Knees, KneeSweep,
                         ::testing::Values(100, 250, 400, 500, 700, 900));

}  // namespace
}  // namespace slb
