// Hostile-input hardening for the numeric core (DESIGN.md §7 satellite):
// backwards clocks into the rate estimator, NaN/Inf observations into the
// rate functions, and degenerate (all-identical / all-zero / non-finite)
// F_j landscapes into both RAP solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "core/rap.h"
#include "core/rate_estimator.h"
#include "core/rate_function.h"
#include "core/types.h"
#include "util/time.h"

namespace slb {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- BlockingRateEstimator -------------------------------------------

TEST(EstimatorRobustness, BackwardsClockRebaselinesInsteadOfPoisoning) {
  BlockingRateEstimator est(2, 0.5);
  std::vector<DurationNs> cum = {0, 0};
  est.ingest(millis(0), cum);
  cum = {millis(5), millis(2)};
  est.ingest(millis(10), cum);
  ASSERT_TRUE(est.ready());
  EXPECT_NEAR(est.rate(0), 0.5, 1e-9);

  // Clock jumps backwards (e.g. a substrate restart): the snapshot must
  // re-baseline, not produce negative/garbage rates.
  cum = {millis(6), millis(3)};
  est.ingest(millis(4), cum);
  EXPECT_GE(est.last_raw_rate(0), 0.0);
  EXPECT_TRUE(std::isfinite(est.rate(0)));

  // And the estimator keeps working from the new baseline.
  cum = {millis(8), millis(3)};
  est.ingest(millis(14), cum);
  EXPECT_NEAR(est.last_raw_rate(0), 0.2, 1e-9);
}

TEST(EstimatorRobustness, ZeroElapsedPeriodIsIgnored) {
  BlockingRateEstimator est(1, 0.5);
  std::vector<DurationNs> cum = {0};
  est.ingest(millis(0), cum);
  cum = {millis(5)};
  est.ingest(millis(10), cum);
  const double before = est.rate(0);
  // A duplicate timestamp must not divide by zero or change the estimate.
  cum = {millis(7)};
  est.ingest(millis(10), cum);
  EXPECT_EQ(est.rate(0), before);
  EXPECT_TRUE(std::isfinite(est.rate(0)));
}

// --- RateFunction -----------------------------------------------------

TEST(RateFunctionRobustness, NonFiniteAndNegativeObservationsAreDropped) {
  RateFunction clean;
  RateFunction dirty;
  clean.observe(500, 0.4);
  dirty.observe(500, 0.4);

  dirty.observe(600, kNaN);
  dirty.observe(700, kInf);
  dirty.observe(400, -0.5);
  dirty.observe(300, 0.2, kNaN);
  dirty.observe(300, 0.2, -1.0);
  dirty.observe(0, 0.2);                  // out-of-domain weight
  dirty.observe(kWeightUnits + 1, 0.2);   // out-of-domain weight

  // The garbage left no trace: both functions fit identically.
  EXPECT_EQ(dirty.observed_points(), clean.observed_points());
  for (Weight w = 0; w <= kWeightUnits; w += 100) {
    EXPECT_EQ(dirty.value(w), clean.value(w)) << "w=" << w;
    EXPECT_TRUE(std::isfinite(dirty.value(w)));
  }
}

// --- RAP solvers ------------------------------------------------------

RapProblem flat_problem(int n, double level) {
  RapProblem p;
  p.vars.assign(static_cast<std::size_t>(n), RapVariable{});
  p.eval = [level](int, Weight) { return level; };
  return p;
}

void expect_uniform(const RapSolution& s, int n, const char* which) {
  ASSERT_TRUE(s.feasible) << which;
  EXPECT_EQ(std::accumulate(s.weights.begin(), s.weights.end(), Weight{0}),
            kWeightUnits)
      << which;
  const Weight lo = kWeightUnits / n;
  for (Weight w : s.weights) {
    EXPECT_GE(w, lo) << which;
    EXPECT_LE(w, lo + 1) << which;
  }
}

TEST(RapRobustness, AllZeroFunctionsYieldUniformPoint) {
  // No gradient anywhere: the only defensible answer is the even split,
  // not "dump the whole budget on index 0".
  for (int n : {2, 3, 4, 7}) {
    const RapProblem p = flat_problem(n, 0.0);
    expect_uniform(solve_fox(p), n, "fox");
    expect_uniform(solve_bisect(p), n, "bisect");
  }
}

TEST(RapRobustness, AllIdenticalNonZeroFunctionsYieldUniformPoint) {
  const RapProblem p = flat_problem(4, 0.37);
  expect_uniform(solve_fox(p), 4, "fox");
  expect_uniform(solve_bisect(p), 4, "bisect");
}

TEST(RapRobustness, NanEvaluationsDoNotPoisonTheSolvers) {
  // A hostile F_j returning NaN/Inf must not trip UB in the heap/sort
  // comparators; the solver treats such evaluations as "worst possible"
  // and still returns a full, feasible allocation.
  RapProblem p;
  p.vars.assign(3, RapVariable{});
  p.eval = [](int j, Weight w) -> double {
    if (j == 1) return w > 300 ? kNaN : 0.1;
    if (j == 2) return w > 500 ? kInf : 0.0;
    return static_cast<double>(w) / kWeightUnits;
  };
  for (const RapSolution& s : {solve_fox(p), solve_bisect(p)}) {
    ASSERT_TRUE(s.feasible);
    EXPECT_EQ(
        std::accumulate(s.weights.begin(), s.weights.end(), Weight{0}),
        kWeightUnits);
    for (Weight w : s.weights) {
      EXPECT_GE(w, 0);
      EXPECT_LE(w, kWeightUnits);
    }
  }
}

TEST(RapRobustness, AllNanStillAllocatesEverything) {
  RapProblem p;
  p.vars.assign(4, RapVariable{});
  p.eval = [](int, Weight) { return kNaN; };
  for (const RapSolution& s : {solve_fox(p), solve_bisect(p)}) {
    ASSERT_TRUE(s.feasible);
    EXPECT_EQ(
        std::accumulate(s.weights.begin(), s.weights.end(), Weight{0}),
        kWeightUnits);
  }
}

TEST(RapRobustness, BruteforceAgreesOnDegenerateInstances) {
  RapProblem p = flat_problem(3, 0.25);
  p.total = 9;
  for (auto& v : p.vars) v.max = 9;
  EXPECT_EQ(bruteforce_objective(p), 0.25);
  const RapSolution fox = solve_fox(p);
  EXPECT_EQ(fox.objective, 0.25);
}

}  // namespace
}  // namespace slb
