// Integration tests for the threaded runtime over real loopback TCP.
//
// These run on whatever cores CI gives us, with worker threads spinning
// real integer multiplies — so the assertions are deliberately
// *directional* (ordering holds, blocking is measured, load balancing
// moves weight the right way) rather than quantitative. The simulator
// tests carry the quantitative claims.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/local_region.h"
#include "runtime/work.h"

namespace slb::rt {
namespace {

TEST(Work, SpinMultipliesIsDeterministic) {
  EXPECT_EQ(spin_multiplies(1, 1000), spin_multiplies(1, 1000));
  EXPECT_NE(spin_multiplies(1, 1000), spin_multiplies(2, 1000));
  EXPECT_NE(spin_multiplies(1, 1000), spin_multiplies(1, 1001));
}

TEST(Work, ZeroMultipliesIsIdentityish) {
  EXPECT_EQ(spin_multiplies(5, 0), 5u);
}

LocalRegionConfig fast_config(int workers) {
  LocalRegionConfig cfg;
  cfg.workers = workers;
  cfg.multiplies = 2000;
  cfg.payload_bytes = 32;
  cfg.sample_period = millis(50);
  return cfg;
}

TEST(LocalRegion, RoundRobinPreservesOrderAndCompletes) {
  LocalRegion region(fast_config(2), std::make_unique<RoundRobinPolicy>(2));
  const LocalRunStats stats = region.run(millis(500));
  EXPECT_GT(stats.sent, 100u);
  EXPECT_EQ(stats.emitted, stats.sent);
  EXPECT_TRUE(stats.order_ok);
}

TEST(LocalRegion, BlockingCountersAccumulateUnderOverload) {
  // One worker 100x loaded: the splitter must observe real blocking time
  // on at least one connection.
  LocalRegionConfig cfg = fast_config(2);
  cfg.load_events = {{0, 0, 100.0}};
  LocalRegion region(cfg, std::make_unique<RoundRobinPolicy>(2));
  const LocalRunStats stats = region.run(millis(800));
  ASSERT_EQ(stats.blocked.size(), 2u);
  EXPECT_GT(stats.blocked[0] + stats.blocked[1], millis(50));
  EXPECT_TRUE(stats.order_ok);
}

TEST(LocalRegion, LbShiftsWeightAwayFromLoadedWorker) {
  LocalRegionConfig cfg = fast_config(2);
  cfg.multiplies = 5000;
  cfg.load_events = {{0, 0, 100.0}};
  ControllerConfig cc;
  LocalRegion region(cfg,
                     std::make_unique<LoadBalancingPolicy>(2, cc));
  const LocalRunStats stats = region.run(seconds(2));
  EXPECT_TRUE(stats.order_ok);
  // Directional: the loaded connection must end below its even share.
  EXPECT_LT(stats.final_weights[0], 500);
  EXPECT_GT(stats.final_weights[1], 500);
}

TEST(LocalRegion, SampleHookFires) {
  LocalRegion region(fast_config(2), std::make_unique<RoundRobinPolicy>(2));
  int samples = 0;
  region.set_sample_hook([&](const LocalSample& s) {
    ++samples;
    EXPECT_EQ(s.weights.size(), 2u);
    EXPECT_EQ(s.block_rates.size(), 2u);
  });
  (void)region.run(millis(600));
  // Lower bound kept loose: on a heavily CPU-throttled machine a single
  // blocking send can straddle several sample periods.
  EXPECT_GE(samples, 1);
}

TEST(LocalRegion, RunIsOneShot) {
  LocalRegion region(fast_config(2), std::make_unique<RoundRobinPolicy>(2));
  (void)region.run(millis(50));
  EXPECT_THROW((void)region.run(millis(50)), std::logic_error);
}

TEST(LocalRegion, RerouteBaselineDivertsSomeTuples) {
  LocalRegionConfig cfg = fast_config(2);
  cfg.multiplies = 5000;
  cfg.socket_buffer_bytes = 8 * 1024;
  cfg.load_events = {{0, 0, 100.0}};
  LocalRegion region(cfg, std::make_unique<RerouteOnBlockPolicy>(2));
  const LocalRunStats stats = region.run(seconds(1));
  EXPECT_TRUE(stats.order_ok);
  EXPECT_GT(stats.rerouted, 0u);
  // Section 4.4: rerouting stays a small fraction of the traffic.
  EXPECT_LT(static_cast<double>(stats.rerouted),
            0.5 * static_cast<double>(stats.sent));
}


TEST(LocalRegion, TimedWorkModeRunsAndPreservesOrder) {
  // kTimed waits out the service time instead of computing, keeping the
  // demo usable on oversubscribed machines; semantics are unchanged.
  LocalRegionConfig cfg = fast_config(2);
  cfg.multiplies = 2'000'000;  // 2 ms of "service" per tuple
  cfg.work_mode = WorkMode::kTimed;
  LocalRegion region(cfg, std::make_unique<RoundRobinPolicy>(2));
  const LocalRunStats stats = region.run(millis(500));
  EXPECT_GT(stats.sent, 50u);
  EXPECT_EQ(stats.emitted, stats.sent);
  EXPECT_TRUE(stats.order_ok);
}

}  // namespace
}  // namespace slb::rt
