// Tests for the simulated TCP channel: latency, flow control, callbacks.
#include <gtest/gtest.h>

#include "sim/channel.h"

namespace slb::sim {
namespace {

Channel::Config small_config() {
  Channel::Config cfg;
  cfg.send_capacity = 2;
  cfg.recv_capacity = 2;
  cfg.latency = 100;
  return cfg;
}

TEST(Channel, DeliversAfterLatency) {
  Simulator sim;
  Channel ch(&sim, 0, small_config());
  ch.push_send(Tuple{7});
  EXPECT_TRUE(ch.recv_empty());
  sim.run_until(99);
  EXPECT_TRUE(ch.recv_empty());
  sim.run_until(100);
  ASSERT_FALSE(ch.recv_empty());
  EXPECT_EQ(ch.pop_recv().seq, 7u);
}

TEST(Channel, PreservesFifoOrder) {
  Simulator sim;
  Channel ch(&sim, 0, small_config());
  ch.push_send(Tuple{1});
  ch.push_send(Tuple{2});
  sim.run_until_idle();
  EXPECT_EQ(ch.pop_recv().seq, 1u);
  EXPECT_EQ(ch.pop_recv().seq, 2u);
}

TEST(Channel, RecvReadyCallbackFires) {
  Simulator sim;
  Channel ch(&sim, 0, small_config());
  int notified = 0;
  ch.set_on_recv_ready([&] { ++notified; });
  ch.push_send(Tuple{1});
  sim.run_until_idle();
  EXPECT_EQ(notified, 1);
}

TEST(Channel, FlowControlHoldsTuplesInSendBuffer) {
  // recv capacity 2: the 3rd+ tuples must wait in the send buffer until
  // the receiver pops.
  Simulator sim;
  Channel::Config cfg = small_config();
  cfg.send_capacity = 4;
  Channel ch(&sim, 0, cfg);
  for (std::uint64_t s = 0; s < 4; ++s) ch.push_send(Tuple{s});
  sim.run_until_idle();
  EXPECT_EQ(ch.recv_size(), 2u);
  EXPECT_EQ(ch.send_size(), 2u);
  EXPECT_EQ(ch.occupancy(), 4u);

  (void)ch.pop_recv();  // frees a slot; transfer resumes
  sim.run_until_idle();
  EXPECT_EQ(ch.recv_size(), 2u);
  EXPECT_EQ(ch.send_size(), 1u);
}

TEST(Channel, SendFullAndSpaceCallback) {
  Simulator sim;
  Channel::Config cfg = small_config();
  cfg.send_capacity = 1;
  cfg.recv_capacity = 1;
  Channel ch(&sim, 0, cfg);
  int space_events = 0;
  ch.set_on_send_space([&] { ++space_events; });

  ch.push_send(Tuple{0});  // transfers immediately (recv empty)
  EXPECT_GE(space_events, 1);
  ch.push_send(Tuple{1});  // recv side will be full; stays in send buffer
  sim.run_until_idle();
  EXPECT_TRUE(ch.send_full());

  const int before = space_events;
  (void)ch.pop_recv();  // lets the transfer start -> send space frees
  sim.run_until_idle();
  EXPECT_GT(space_events, before);
  EXPECT_FALSE(ch.send_full());
}

TEST(Channel, InFlightCountsTransfers) {
  Simulator sim;
  Channel ch(&sim, 0, small_config());
  ch.push_send(Tuple{0});
  EXPECT_EQ(ch.in_flight(), 1u);
  sim.run_until_idle();
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(Channel, PipelinesMultipleTransfers) {
  // Both tuples should be in flight simultaneously (no serialization on
  // the link) and arrive at the same time.
  Simulator sim;
  Channel ch(&sim, 0, small_config());
  ch.push_send(Tuple{0});
  ch.push_send(Tuple{1});
  EXPECT_EQ(ch.in_flight(), 2u);
  sim.run_until(100);
  EXPECT_EQ(ch.recv_size(), 2u);
}

}  // namespace
}  // namespace slb::sim
