// Tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event.h"

namespace slb::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  TimeNs seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run_until_idle();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, ZeroDelayEventsRunAtSameTime) {
  Simulator sim;
  int depth = 0;
  sim.schedule_at(7, [&] {
    sim.schedule_after(0, [&] {
      ++depth;
      EXPECT_EQ(sim.now(), 7);
    });
  });
  sim.run_until_idle();
  EXPECT_EQ(depth, 1);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);  // clock advances to the deadline
  sim.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtExactDeadlineRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(10, [&] { fired = true; });
  sim.run_until(10);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, StopInterruptsRunWhile) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run_while(100);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stop_requested());
  sim.run_while(100);  // resumes past the stop
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run_until_idle();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, EventsCanScheduleManyMore) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 1000) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_until_idle();
  EXPECT_EQ(count, 1000);
  EXPECT_EQ(sim.now(), 999);
}

}  // namespace
}  // namespace slb::sim
