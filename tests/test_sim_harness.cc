// Tests for the experiment harness: unit scaling, load/oracle
// construction, fixed-work runs, and the paper's qualitative orderings.
#include <gtest/gtest.h>

#include "sim/harness.h"

namespace slb::sim {
namespace {

TEST(Scale, TupleCostFromMultiplies) {
  Scale s;
  s.multiply_ns = 10.0;
  EXPECT_EQ(s.tuple_cost(1000), 10'000);
  EXPECT_EQ(s.tuple_cost(60'000), 600'000);
}

TEST(Scale, PaperSecondsRoundTrip) {
  Scale s;
  const TimeNs t = s.from_paper_seconds(12.5);
  EXPECT_NEAR(s.to_paper_seconds(t), 12.5, 1e-9);
}

TEST(Scale, BufferSizingClampsToRange) {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 100;  // 1 us tuples: target would exceed max
  RegionConfig cfg = build_region_config(spec);
  EXPECT_EQ(cfg.send_buffer, spec.scale.max_buffer);
  spec.base_multiplies = 1'000'000;  // 10 ms tuples: target below min
  cfg = build_region_config(spec);
  EXPECT_EQ(cfg.send_buffer, spec.scale.min_buffer);
}

TEST(Harness, PolicyNames) {
  EXPECT_EQ(policy_name(PolicyKind::kRoundRobin), "RR");
  EXPECT_EQ(policy_name(PolicyKind::kReroute), "RR-reroute");
  EXPECT_EQ(policy_name(PolicyKind::kLbStatic), "LB-static");
  EXPECT_EQ(policy_name(PolicyKind::kLbAdaptive), "LB-adaptive");
  EXPECT_EQ(policy_name(PolicyKind::kOracle), "Oracle*");
}

TEST(Harness, LoadProfileFromClasses) {
  ExperimentSpec spec;
  spec.workers = 4;
  spec.loads.push_back({{0, 1}, 10.0, 25.0});
  const LoadProfile p = build_load_profile(spec);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(p.at(0, spec.scale.from_paper_seconds(26)), 1.0);
  EXPECT_DOUBLE_EQ(p.at(2, 0), 1.0);
}

TEST(Harness, TrueCapacityReflectsLoadAndHosts) {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 1000;  // 10 us tuples -> 100K/s
  spec.loads.push_back({{0}, 10.0, 50.0});
  EXPECT_NEAR(true_capacity(spec, 0, 10.0), 10'000.0, 1.0);
  EXPECT_NEAR(true_capacity(spec, 0, 60.0), 100'000.0, 1.0);
  EXPECT_NEAR(true_capacity(spec, 1, 10.0), 100'000.0, 1.0);

  spec.hosts = HostModel({{2.0, 8}, {1.0, 8}}, {0, 1});
  EXPECT_NEAR(true_capacity(spec, 0, 60.0), 200'000.0, 1.0);
}

TEST(Harness, PermanentLoadNeverLifts) {
  ExperimentSpec spec;
  spec.workers = 1;
  spec.base_multiplies = 1000;
  spec.loads.push_back({{0}, 10.0, -1.0});
  EXPECT_NEAR(true_capacity(spec, 0, 1e6), 10'000.0, 1.0);
}

TEST(Harness, IdealWorkIntegratesPhases) {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 1000;  // 100K tuples/s per unloaded worker
  spec.duration_paper_s = 100.0;
  spec.loads.push_back({{0}, 10.0, 50.0});
  // Phase 1 (0-50 paper-s): 10K + 100K = 110K/s of virtual time. Phase 2:
  // 200K/s. Virtual seconds per paper second: 0.01.
  const double expected = (110e3 * 50 + 200e3 * 50) * 0.01;
  EXPECT_NEAR(static_cast<double>(ideal_work(spec)), expected,
              expected * 0.01);
}

TEST(Harness, OraclePolicyGetsCapacityProportionalWeights) {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 1000;
  spec.loads.push_back({{0}, 3.0, -1.0});  // worker 0 at 1/3 capacity
  auto policy = make_policy(PolicyKind::kOracle, spec);
  EXPECT_EQ(policy->weights(), (WeightVector{250, 750}));
}

TEST(Harness, MakeRegionWiresEverything) {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 1000;
  auto region = make_region(PolicyKind::kRoundRobin, spec);
  region->run_for(spec.scale.paper_second * 5);
  EXPECT_GT(region->emitted(), 0u);
}

TEST(Harness, FixedWorkRunCompletes) {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = 20.0;
  const std::uint64_t work = ideal_work(spec);
  const ExperimentResult r =
      run_fixed_work(PolicyKind::kRoundRobin, spec, work);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.emitted, work);
  EXPECT_GT(r.final_throughput_mtps, 0.0);
  // Two equal workers and an even split: RR should take roughly the
  // nominal duration (generous envelope).
  EXPECT_GT(r.exec_time_paper_s, 10.0);
  EXPECT_LT(r.exec_time_paper_s, 40.0);
}

TEST(Harness, AlternativesPreserveThePapersOrdering) {
  // Static 10x load on half the PEs (Figure 9 left, 4 PEs): Oracle* is
  // fastest; both LB variants land within a modest factor of it; RR is
  // far behind.
  ExperimentSpec spec;
  spec.workers = 4;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = 60.0;
  spec.loads.push_back({{0, 1}, 10.0, -1.0});
  const std::uint64_t work = ideal_work(spec);
  const auto results = run_alternatives(spec, work);
  ASSERT_EQ(results.size(), 4u);
  const double oracle = results[0].exec_time_paper_s;
  const double lb_static = results[1].exec_time_paper_s;
  const double lb_adaptive = results[2].exec_time_paper_s;
  const double rr = results[3].exec_time_paper_s;
  EXPECT_LT(oracle, lb_static);
  EXPECT_LT(oracle, lb_adaptive);
  EXPECT_LT(lb_static, 2.5 * oracle);
  EXPECT_LT(lb_adaptive, 2.5 * oracle);
  EXPECT_GT(rr, 1.5 * lb_static);
}

TEST(Harness, RerouteBarelyHelpsAtLowCostWithBoundedMerger) {
  // Section 4.4, low-cost half: with 1,000-multiply tuples and bounded
  // buffering all the way through the merger (the paper's transport), the
  // re-routing baseline makes "no discernible difference" vs RR. Both hit
  // the deadline here; what distinguishes failure from success is the
  // work completed.
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 1000;
  spec.duration_paper_s = 20.0;
  spec.merge_buffer = 64;  // block-at-the-merger transport
  spec.loads.push_back({{0}, 100.0, -1.0});
  const std::uint64_t work = ideal_work(spec);
  const ExperimentResult rr =
      run_fixed_work(PolicyKind::kRoundRobin, spec, work, 10.0);
  const ExperimentResult rrr =
      run_fixed_work(PolicyKind::kReroute, spec, work, 10.0);
  // Re-routing happens, but buys little extra progress (our per-tuple
  // re-route granularity is finer than the paper's transport, so we see
  // a somewhat larger effect than their "no discernible difference" —
  // see EXPERIMENTS.md); it remains nowhere near an actual fix.
  EXPECT_GT(rrr.rerouted, 0u);
  EXPECT_LT(static_cast<double>(rrr.emitted),
            1.5 * static_cast<double>(rr.emitted));
  const ExperimentResult oracle =
      run_fixed_work(PolicyKind::kOracle, spec, work, 10.0);
  EXPECT_GT(static_cast<double>(oracle.emitted),
            2.0 * static_cast<double>(rrr.emitted));
}

TEST(Harness, RerouteHelpsSomewhatAtHighCostWithBoundedMerger) {
  // Section 4.4, high-cost half: with 10,000-multiply tuples re-routing
  // yields a real but clearly insufficient improvement.
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 10'000;
  spec.duration_paper_s = 20.0;
  spec.merge_buffer = 64;
  spec.loads.push_back({{0}, 100.0, -1.0});
  const std::uint64_t work = ideal_work(spec);
  const ExperimentResult rr =
      run_fixed_work(PolicyKind::kRoundRobin, spec, work, 10.0);
  const ExperimentResult rrr =
      run_fixed_work(PolicyKind::kReroute, spec, work, 10.0);
  EXPECT_GT(static_cast<double>(rrr.emitted),
            1.15 * static_cast<double>(rr.emitted));
  // ...but far from the oracle's ideal distribution.
  const ExperimentResult oracle =
      run_fixed_work(PolicyKind::kOracle, spec, work, 10.0);
  EXPECT_GT(static_cast<double>(oracle.emitted),
            1.5 * static_cast<double>(rrr.emitted));
}

}  // namespace
}  // namespace slb::sim
