// Tests for the in-order merger: sequential semantics, gating, stalls.
#include <gtest/gtest.h>

#include <vector>

#include "sim/merger.h"

namespace slb::sim {
namespace {

TEST(Merger, EmitsInSequenceOrder) {
  Simulator sim;
  Merger m(&sim, 2, 16);
  std::vector<std::uint64_t> out;
  m.set_on_emit([&](const Tuple& t) { out.push_back(t.seq); });

  EXPECT_TRUE(m.try_push(0, Tuple{0}));
  EXPECT_TRUE(m.try_push(1, Tuple{1}));
  EXPECT_TRUE(m.try_push(0, Tuple{2}));
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(m.emitted(), 3u);
}

TEST(Merger, HoldsOutOfOrderTuples) {
  Simulator sim;
  Merger m(&sim, 2, 16);
  std::vector<std::uint64_t> out;
  m.set_on_emit([&](const Tuple& t) { out.push_back(t.seq); });

  EXPECT_TRUE(m.try_push(1, Tuple{1}));  // seq 0 still missing
  EXPECT_TRUE(m.try_push(1, Tuple{2}));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(m.try_push(0, Tuple{0}));  // unblocks everything
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(Merger, GatedBySlowestConnection) {
  // Fast connection 1 delivers many tuples, but none can leave until the
  // slow connection 0 supplies the gating sequence numbers: the paper's
  // Figure 3.
  Simulator sim;
  Merger m(&sim, 2, 64);
  // Splitter alternates: even seqs on 0, odd on 1. Connection 1 runs far
  // ahead.
  for (std::uint64_t s = 1; s < 20; s += 2) {
    EXPECT_TRUE(m.try_push(1, Tuple{s}));
  }
  EXPECT_EQ(m.emitted(), 0u);
  EXPECT_EQ(m.queue_size(1), 10u);

  EXPECT_TRUE(m.try_push(0, Tuple{0}));
  EXPECT_EQ(m.emitted(), 2u);  // 0 and 1
  EXPECT_TRUE(m.try_push(0, Tuple{2}));
  EXPECT_EQ(m.emitted(), 4u);
}

TEST(Merger, BoundedQueueRejectsWhenFull) {
  Simulator sim;
  Merger m(&sim, 2, 2);
  EXPECT_TRUE(m.try_push(1, Tuple{1}));
  EXPECT_TRUE(m.try_push(1, Tuple{2}));
  EXPECT_FALSE(m.try_push(1, Tuple{3}));  // full and gated on seq 0
}

TEST(Merger, SpaceCallbackFiresAfterDrain) {
  Simulator sim;
  Merger m(&sim, 2, 2);
  int pokes = 0;
  m.set_on_space(1, [&] { ++pokes; });
  EXPECT_TRUE(m.try_push(1, Tuple{1}));
  EXPECT_TRUE(m.try_push(1, Tuple{2}));
  EXPECT_TRUE(m.try_push(0, Tuple{0}));
  sim.run_until_idle();  // space notifications are zero-delay events
  EXPECT_EQ(pokes, 1);
  EXPECT_EQ(m.emitted(), 3u);
}

TEST(Merger, UnboundedCapacityNeverRejects) {
  Simulator sim;
  Merger m(&sim, 2, Merger::kUnbounded);
  for (std::uint64_t s = 1; s <= 10'000; ++s) {
    ASSERT_TRUE(m.try_push(1, Tuple{s}));
  }
  EXPECT_EQ(m.emitted(), 0u);
  EXPECT_TRUE(m.try_push(0, Tuple{0}));
  EXPECT_EQ(m.emitted(), 10'001u);
}

TEST(Merger, ExpectedSeqAdvances) {
  Simulator sim;
  Merger m(&sim, 1, 4);
  EXPECT_EQ(m.expected_seq(), 0u);
  EXPECT_TRUE(m.try_push(0, Tuple{0}));
  EXPECT_TRUE(m.try_push(0, Tuple{1}));
  EXPECT_EQ(m.expected_seq(), 2u);
}

TEST(Merger, ManyConnectionsRoundRobinOrder) {
  Simulator sim;
  const int n = 8;
  Merger m(&sim, n, 64);
  std::vector<std::uint64_t> out;
  m.set_on_emit([&](const Tuple& t) { out.push_back(t.seq); });
  // Deliver seqs in a scrambled-but-per-connection-FIFO pattern:
  // connection j gets seqs j, j+n, j+2n... delivered all at once, in
  // reverse connection order.
  for (int j = n - 1; j >= 0; --j) {
    for (std::uint64_t k = 0; k < 5; ++k) {
      ASSERT_TRUE(m.try_push(j, Tuple{static_cast<std::uint64_t>(j) + k * n}));
    }
  }
  ASSERT_EQ(out.size(), 40u);
  for (std::uint64_t s = 0; s < out.size(); ++s) EXPECT_EQ(out[s], s);
}

}  // namespace
}  // namespace slb::sim
