// Tests for the bounded FIFO used throughout the simulated pipeline.
#include <gtest/gtest.h>

#include <string>

#include "sim/queues.h"

namespace slb::sim {
namespace {

TEST(BoundedFifo, StartsEmpty) {
  BoundedFifo<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.free_slots(), 4u);
}

TEST(BoundedFifo, FifoOrder) {
  BoundedFifo<int> q(3);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedFifo, FullAtCapacity) {
  BoundedFifo<int> q(2);
  q.push(1);
  EXPECT_FALSE(q.full());
  q.push(2);
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.free_slots(), 0u);
}

TEST(BoundedFifo, TryPushRejectsWhenFull) {
  BoundedFifo<int> q(1);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedFifo, FrontPeeksWithoutRemoval) {
  BoundedFifo<std::string> q(2);
  q.push("a");
  EXPECT_EQ(q.front(), "a");
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedFifo, InterleavedPushPop) {
  BoundedFifo<int> q(2);
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (!q.full()) q.push(next_in++);
    EXPECT_EQ(q.pop(), next_out++);
  }
  EXPECT_EQ(next_in - next_out, static_cast<int>(q.size()));
}

TEST(BoundedFifo, MoveOnlyTypesSupported) {
  BoundedFifo<std::unique_ptr<int>> q(1);
  q.push(std::make_unique<int>(42));
  const std::unique_ptr<int> out = q.pop();
  EXPECT_EQ(*out, 42);
}

}  // namespace
}  // namespace slb::sim
