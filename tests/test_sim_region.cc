// Integration tests of the full simulated region: sequential semantics,
// back pressure, throughput equalization (paper Section 4.3), drafting
// (Section 4.2), and end-to-end adaptation.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "sim/region.h"

namespace slb::sim {
namespace {

RegionConfig small_region(int workers, DurationNs base_cost) {
  RegionConfig cfg;
  cfg.workers = workers;
  cfg.base_cost = base_cost;
  cfg.send_buffer = 16;
  cfg.recv_buffer = 16;
  cfg.link_latency = micros(1);
  cfg.send_overhead = 100;
  cfg.sample_period = millis(5);
  return cfg;
}

TEST(Region, EmitsEverythingInOrder) {
  // The merger's emitted count tracks the global expected sequence, so
  // emitted == splitter seq space implies order was preserved.
  Region region(small_region(3, micros(2)),
                std::make_unique<RoundRobinPolicy>(3));
  region.run_for(millis(50));
  EXPECT_GT(region.emitted(), 1000u);
  EXPECT_EQ(region.merger().expected_seq(), region.merger().emitted());
  // Everything sent has either been emitted or is still in flight inside
  // bounded buffers.
  const std::uint64_t in_flight =
      region.splitter().total_sent() - region.emitted();
  EXPECT_LE(in_flight, 3u * (16 + 16 + 16) + 16);
}

TEST(Region, PerConnectionThroughputMatchesWeights) {
  // Section 4.3: with a 3:1 weighted split, per-connection send counts
  // stay 3:1 even when the capacities are equal — throughput carries no
  // information.
  auto oracle = std::make_unique<OraclePolicy>(
      2, std::vector<OraclePolicy::Phase>{{0, {3.0, 1.0}}});
  Region region(small_region(2, micros(2)), std::move(oracle));
  region.run_for(millis(50));
  const double ratio = static_cast<double>(region.splitter().sent(0)) /
                       static_cast<double>(region.splitter().sent(1));
  EXPECT_NEAR(ratio, 3.0, 0.15);
}

TEST(Region, ThroughputGatedBySlowestWorker) {
  // One worker 10x slower, even split: the pipeline runs at roughly
  // 2 * (slow worker rate), far below the aggregate capacity.
  LoadProfile load(2);
  load.add_step(0, 0, 10.0);
  Region region(small_region(2, micros(10)),
                std::make_unique<RoundRobinPolicy>(2), std::move(load));
  region.run_for(millis(100));
  // Slow worker: 100us/tuple -> 10K/s -> both connections equalize:
  // ~20K tuples/s total -> ~2000 in 100ms (plus buffered drainage).
  const double tput =
      static_cast<double>(region.emitted()) / 0.1;  // tuples per second
  EXPECT_LT(tput, 30'000.0);
  EXPECT_GT(tput, 10'000.0);
}

TEST(Region, DraftingConcentratesBlocking) {
  // Equal capacities, heavy tuples, round-robin: blocking episodes should
  // concentrate on a draft leader rather than spreading evenly
  // (Section 4.2). We assert concentration: the most-blocked connection
  // has at least 3x the blocking time of the least-blocked one.
  Region region(small_region(3, micros(20)),
                std::make_unique<RoundRobinPolicy>(3));
  region.run_for(millis(200));
  const std::vector<DurationNs> blocked = region.counters().sample();
  const DurationNs most = *std::max_element(blocked.begin(), blocked.end());
  const DurationNs least = *std::min_element(blocked.begin(), blocked.end());
  EXPECT_GT(most, 3 * std::max<DurationNs>(least, 1));
}

TEST(Region, BlockingTimeConcentratesOnLoadedConnection) {
  // With one worker 100x more expensive and an eager merger, essentially
  // all of the splitter's blocked time lands on the loaded connection —
  // the signal the whole paper is built on (Sections 4.2/4.3).
  LoadProfile load(2);
  load.add_step(0, 0, 100.0);
  Region region(small_region(2, micros(1)),
                std::make_unique<RoundRobinPolicy>(2), std::move(load));
  region.run_for(millis(100));
  const std::vector<DurationNs> blocked = region.counters().sample();
  EXPECT_GT(blocked[0], 10 * std::max<DurationNs>(blocked[1], 1));
  // And the splitter is blocked most of the time overall (back pressure).
  EXPECT_GT(blocked[0] + blocked[1], millis(50));
}

TEST(Region, LbShedsLoadFromOverloadedWorker) {
  LoadProfile load(3);
  load.add_step(0, 0, 50.0);
  ControllerConfig cc;
  Region region(small_region(3, micros(5)),
                std::make_unique<LoadBalancingPolicy>(3, cc),
                std::move(load));
  region.run_for(seconds(1));  // 200 sample periods
  const WeightVector& w = region.policy().weights();
  EXPECT_LT(w[0], 120);
  EXPECT_GT(w[1], 300);
  EXPECT_GT(w[2], 300);
}

TEST(Region, LbBeatsRoundRobinUnderImbalance) {
  auto run = [](std::unique_ptr<SplitPolicy> policy) {
    LoadProfile load(4);
    load.add_step(0, 0, 20.0);
    load.add_step(1, 0, 20.0);
    Region region(small_region(4, micros(5)), std::move(policy),
                  std::move(load));
    region.run_for(seconds(1));
    return region.emitted();
  };
  const std::uint64_t rr = run(std::make_unique<RoundRobinPolicy>(4));
  const std::uint64_t lb =
      run(std::make_unique<LoadBalancingPolicy>(4, ControllerConfig{}));
  EXPECT_GT(lb, 2 * rr);
}

TEST(Region, LbRecoversAfterLoadRemoval) {
  LoadProfile load(2);
  load.add_load_until(0, 50.0, millis(100));
  ControllerConfig cc;
  cc.decay_factor = 0.9;
  Region region(small_region(2, micros(5)),
                std::make_unique<LoadBalancingPolicy>(2, cc),
                std::move(load));
  region.run_for(millis(100));
  const Weight w0_loaded = region.policy().weights()[0];
  EXPECT_LT(w0_loaded, 200);
  region.run_for(seconds(3));  // long recovery horizon
  EXPECT_GT(region.policy().weights()[0], 330);
}

TEST(Region, RunUntilEmittedStopsAtTarget) {
  Region region(small_region(2, micros(2)),
                std::make_unique<RoundRobinPolicy>(2));
  const RunResult r = region.run_until_emitted(5000, seconds(10));
  EXPECT_TRUE(r.reached_target);
  EXPECT_GE(r.emitted, 5000u);
  EXPECT_LE(r.emitted, 5010u);  // stops promptly
  EXPECT_LT(r.finish_time, seconds(1));
}

TEST(Region, RunUntilEmittedHonorsDeadline) {
  LoadProfile load(1);
  load.add_step(0, 0, 1000.0);  // practically frozen worker
  Region region(small_region(1, micros(100)),
                std::make_unique<RoundRobinPolicy>(1), std::move(load));
  const RunResult r = region.run_until_emitted(1'000'000, millis(10));
  EXPECT_FALSE(r.reached_target);
  EXPECT_EQ(r.finish_time, millis(10));
}

TEST(Region, SampleHookSeesPeriodicSnapshots) {
  Region region(small_region(2, micros(2)),
                std::make_unique<RoundRobinPolicy>(2));
  int calls = 0;
  region.set_sample_hook([&](Region& r) {
    ++calls;
    EXPECT_GT(r.now(), 0);
  });
  region.run_for(millis(50));
  EXPECT_EQ(calls, 10);  // 50ms / 5ms
}

TEST(Region, EmittedPerPeriodSumsToTotal) {
  Region region(small_region(2, micros(2)),
                std::make_unique<RoundRobinPolicy>(2));
  std::uint64_t sum = 0;
  region.set_sample_hook(
      [&](Region& r) { sum += r.emitted_last_period(); });
  region.run_for(millis(100));
  // The hook misses only the tuples emitted after the last sample tick.
  EXPECT_LE(sum, region.emitted());
  EXPECT_GE(sum + 2000, region.emitted());
}

TEST(Region, ZeroWeightConnectionStarves) {
  auto oracle = std::make_unique<OraclePolicy>(
      2, std::vector<OraclePolicy::Phase>{{0, {1.0, 0.0}}});
  Region region(small_region(2, micros(2)), std::move(oracle));
  region.run_for(millis(20));
  EXPECT_EQ(region.splitter().sent(1), 0u);
  EXPECT_GT(region.emitted(), 0u);  // pipeline flows through connection 0
}

}  // namespace
}  // namespace slb::sim
