// Tests for the simulated splitter: routing, blocking measurement, and
// the Section 4.4 re-routing baseline.
#include <gtest/gtest.h>

#include <memory>

#include "core/policies.h"
#include "sim/channel.h"
#include "sim/splitter.h"

namespace slb::sim {
namespace {

struct Rig {
  Simulator sim;
  std::vector<std::unique_ptr<Channel>> channels;
  BlockingCounterSet counters;
  std::unique_ptr<SplitPolicy> policy;
  std::unique_ptr<Splitter> splitter;

  Rig(int n, std::unique_ptr<SplitPolicy> p, std::size_t send_cap = 4,
      std::size_t recv_cap = 4)
      : counters(static_cast<std::size_t>(n)), policy(std::move(p)) {
    std::vector<Channel*> ptrs;
    for (int j = 0; j < n; ++j) {
      channels.push_back(std::make_unique<Channel>(
          &sim, j,
          Channel::Config{.send_capacity = send_cap,
                          .recv_capacity = recv_cap,
                          .latency = 10}));
      ptrs.push_back(channels.back().get());
    }
    splitter = std::make_unique<Splitter>(&sim, policy.get(), 100);
    splitter->wire(std::move(ptrs), &counters);
  }
};

TEST(Splitter, RoundRobinDistributesEvenly) {
  Rig rig(3, std::make_unique<RoundRobinPolicy>(3), 64, 64);
  rig.splitter->start();
  rig.sim.run_until(100 * 30);  // 30 sends' worth of overhead
  EXPECT_GE(rig.splitter->total_sent(), 24u);
  const std::uint64_t s0 = rig.splitter->sent(0);
  const std::uint64_t s1 = rig.splitter->sent(1);
  const std::uint64_t s2 = rig.splitter->sent(2);
  EXPECT_LE(std::max({s0, s1, s2}) - std::min({s0, s1, s2}), 1u);
}

TEST(Splitter, AssignsSequentialSeqs) {
  Rig rig(2, std::make_unique<RoundRobinPolicy>(2), 64, 64);
  rig.splitter->start();
  rig.sim.run_until(1000);
  // Pop everything from both receive buffers; the union of seqs must be
  // exactly 0..sent-1, and within one channel they must be increasing.
  std::vector<bool> seen(rig.splitter->total_sent(), false);
  for (auto& ch : rig.channels) {
    std::uint64_t prev = 0;
    bool first = true;
    while (!ch->recv_empty()) {
      const Tuple t = ch->pop_recv();
      ASSERT_LT(t.seq, seen.size());
      EXPECT_FALSE(seen[t.seq]);
      seen[t.seq] = true;
      if (!first) {
        EXPECT_GT(t.seq, prev);
      }
      prev = t.seq;
      first = false;
    }
  }
}

TEST(Splitter, BlocksWhenChannelFullAndRecordsTime) {
  // One channel, nothing ever consumes: send buffer (4) + recv buffer (4)
  // fill, then the splitter blocks forever.
  Rig rig(1, std::make_unique<RoundRobinPolicy>(1));
  rig.splitter->start();
  rig.sim.run_until(seconds(1));
  EXPECT_EQ(rig.splitter->total_sent(), 8u);
  EXPECT_TRUE(rig.splitter->blocked());
  EXPECT_EQ(rig.splitter->blocked_on(), 0);
  EXPECT_EQ(rig.splitter->blocks(0), 1u);
  // Blocking time is only charged when the block *ends*; release one slot.
  // The splitter sends exactly one more tuple and blocks again (the
  // consumer is still not consuming).
  (void)rig.channels[0]->pop_recv();
  rig.sim.run_until_idle();
  EXPECT_TRUE(rig.splitter->blocked());
  EXPECT_EQ(rig.splitter->total_sent(), 9u);
  // Blocked from t=~800 until the pop at t=1s: roughly the whole second.
  EXPECT_GT(rig.counters.at(0).cumulative(), seconds(1) / 2);
}

TEST(Splitter, ResumesAfterBlockedChannelDrains) {
  Rig rig(1, std::make_unique<RoundRobinPolicy>(1));
  rig.splitter->start();
  rig.sim.run_until(millis(1));
  ASSERT_TRUE(rig.splitter->blocked());
  // Drain one tuple every 10us for a while.
  for (int i = 0; i < 20; ++i) {
    rig.sim.schedule_after(micros(10) * (i + 1), [&] {
      if (!rig.channels[0]->recv_empty()) (void)rig.channels[0]->pop_recv();
    });
  }
  rig.sim.run_until(millis(2));
  EXPECT_GE(rig.splitter->total_sent(), 20u);
}

TEST(Splitter, WeightedPolicyRoutesProportionally) {
  auto oracle = std::make_unique<OraclePolicy>(
      2, std::vector<OraclePolicy::Phase>{{0, {3.0, 1.0}}});
  Rig rig(2, std::move(oracle), 1024, 1024);
  rig.splitter->start();
  rig.sim.run_until(100 * 400);  // 400 sends
  const double ratio = static_cast<double>(rig.splitter->sent(0)) /
                       static_cast<double>(rig.splitter->sent(1));
  EXPECT_NEAR(ratio, 3.0, 0.2);
}

TEST(Splitter, RerouteDivertsInsteadOfBlocking) {
  // Channel 0 never drains; with the re-routing baseline the splitter
  // sends channel 0's share to channel 1 instead of blocking.
  Rig rig(2, std::make_unique<RerouteOnBlockPolicy>(2), 2, 2);
  rig.splitter->start();
  // Keep channel 1 drained from the start: if channel 1 ever fills while
  // the splitter picks channel 0, the splitter commits to blocking on 0
  // and no amount of later draining reroutes it (exactly the "too little,
  // too late" property of Section 4.4).
  std::function<void()> drain = [&] {
    while (!rig.channels[1]->recv_empty()) (void)rig.channels[1]->pop_recv();
    rig.sim.schedule_after(50, drain);
  };
  rig.sim.schedule_after(0, drain);
  rig.sim.run_until(millis(1));
  EXPECT_FALSE(rig.splitter->blocked());
  EXPECT_GT(rig.splitter->rerouted(), 0u);
  EXPECT_EQ(rig.splitter->sent(0), 4u);  // only until its buffers filled
  EXPECT_GT(rig.splitter->sent(1), 100u);
}

TEST(Splitter, RerouteBlocksWhenAllChannelsFull) {
  Rig rig(2, std::make_unique<RerouteOnBlockPolicy>(2), 1, 1);
  rig.splitter->start();
  rig.sim.run_until(millis(1));
  EXPECT_TRUE(rig.splitter->blocked());
  EXPECT_EQ(rig.splitter->total_sent(), 4u);  // 2 per channel
}

TEST(Splitter, NonRerouteNeverDiverts) {
  Rig rig(2, std::make_unique<RoundRobinPolicy>(2), 1, 1);
  rig.splitter->start();
  rig.sim.run_until(millis(1));
  EXPECT_EQ(rig.splitter->rerouted(), 0u);
}

}  // namespace
}  // namespace slb::sim
