// Tests for the simulated worker PE: service times, load profiles, host
// factors, and merger stalls.
#include <gtest/gtest.h>

#include "sim/channel.h"
#include "sim/host.h"
#include "sim/load_profile.h"
#include "sim/merger.h"
#include "sim/worker.h"

namespace slb::sim {
namespace {

struct Rig {
  Simulator sim;
  Channel channel;
  Merger merger;
  LoadProfile load;
  HostModel hosts;
  Worker worker;

  explicit Rig(DurationNs base_cost, LoadProfile profile = LoadProfile(1),
               HostModel host_model = HostModel(),
               std::size_t merge_capacity = Merger::kUnbounded)
      : channel(&sim, 0, {.send_capacity = 64, .recv_capacity = 64,
                          .latency = 1}),
        merger(&sim, 1, merge_capacity),
        load(std::move(profile)),
        hosts(std::move(host_model)),
        worker(&sim, 0, base_cost, &load, &hosts) {
    worker.wire(&channel, &merger);
  }
};

TEST(LoadProfile, DefaultsToUnity) {
  LoadProfile p(2);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(1, seconds(100)), 1.0);
}

TEST(LoadProfile, StepsApplyAtTheirTime) {
  LoadProfile p(1);
  p.add_step(0, seconds(10), 5.0);
  EXPECT_DOUBLE_EQ(p.at(0, seconds(9)), 1.0);
  EXPECT_DOUBLE_EQ(p.at(0, seconds(10)), 5.0);
  EXPECT_DOUBLE_EQ(p.at(0, seconds(99)), 5.0);
}

TEST(LoadProfile, LoadUntilDropsBack) {
  LoadProfile p(1);
  p.add_load_until(0, 100.0, seconds(25));
  EXPECT_DOUBLE_EQ(p.at(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(p.at(0, seconds(24)), 100.0);
  EXPECT_DOUBLE_EQ(p.at(0, seconds(25)), 1.0);
}

TEST(LoadProfile, ChangeTimesCollected) {
  LoadProfile p(2);
  p.add_load_until(0, 10.0, seconds(5));
  p.add_step(1, seconds(7), 2.0);
  const std::vector<TimeNs> times = p.change_times();
  EXPECT_EQ(times, (std::vector<TimeNs>{0, seconds(5), seconds(7)}));
}

TEST(HostModel, TrivialModelIsUnity) {
  HostModel m;
  EXPECT_TRUE(m.trivial());
  EXPECT_DOUBLE_EQ(m.factor(0), 1.0);
  EXPECT_EQ(m.host_of(0), -1);
}

TEST(HostModel, SpeedDividesServiceTime) {
  HostModel m({{2.0, 8}}, {0});
  EXPECT_DOUBLE_EQ(m.factor(0), 0.5);
}

TEST(HostModel, OversubscriptionSlowsEveryPe) {
  // 16 PEs on an 8-thread host: everything takes 2x.
  std::vector<int> placement(16, 0);
  HostModel m({{1.0, 8}}, placement);
  for (int w = 0; w < 16; ++w) EXPECT_DOUBLE_EQ(m.factor(w), 2.0);
}

TEST(HostModel, MixedHosts) {
  // Worker 0 on a fast 16-thread host, workers 1-2 on a slow 2-thread
  // host (oversubscribed 1.5x).
  HostModel m({{2.0, 16}, {1.0, 2}}, {0, 1, 1});
  EXPECT_DOUBLE_EQ(m.factor(0), 0.5);
  EXPECT_DOUBLE_EQ(m.factor(1), 1.0);  // 2 PEs on 2 threads: no oversub
  EXPECT_EQ(m.host_of(0), 0);
  EXPECT_EQ(m.host_of(2), 1);
}

TEST(Worker, ProcessesAtBaseCost) {
  Rig rig(/*base_cost=*/1000);
  rig.channel.push_send(Tuple{0});
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.worker.processed(), 1u);
  EXPECT_EQ(rig.merger.emitted(), 1u);
  // Latency 1 + service 1000.
  EXPECT_EQ(rig.sim.now(), 1001);
}

TEST(Worker, ServiceTimeScalesWithLoad) {
  LoadProfile profile(1);
  profile.add_step(0, 0, 10.0);
  Rig rig(1000, profile);
  rig.channel.push_send(Tuple{0});
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.sim.now(), 10'001);
}

TEST(Worker, ServiceTimeScalesWithHostFactor) {
  Rig rig(1000, LoadProfile(1), HostModel({{2.0, 8}}, {0}));
  EXPECT_EQ(rig.worker.current_service_time(), 500);
}

TEST(Worker, ProcessesSequentiallyNotInParallel) {
  Rig rig(1000);
  rig.channel.push_send(Tuple{0});
  rig.channel.push_send(Tuple{1});
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.worker.processed(), 2u);
  EXPECT_EQ(rig.sim.now(), 2001);  // 1 latency + 2 x 1000 service
}

TEST(Worker, StallsWhenMergerQueueFull) {
  // Merger queue of 1, gated: seq 0 never arrives on connection 0 of a
  // 2-connection merger... build it manually.
  Simulator sim;
  Channel channel(&sim, 1,
                  {.send_capacity = 8, .recv_capacity = 8, .latency = 1});
  Merger merger(&sim, 2, 1);
  LoadProfile load(2);
  HostModel hosts;
  Worker worker(&sim, 1, 100, &load, &hosts);
  worker.wire(&channel, &merger);

  channel.push_send(Tuple{1});  // seq 1: gated behind missing seq 0
  channel.push_send(Tuple{3});
  sim.run_until_idle();
  EXPECT_TRUE(worker.stalled());
  EXPECT_EQ(merger.queue_size(1), 1u);

  // Supplying seq 0 on the other connection lets everything drain.
  EXPECT_TRUE(merger.try_push(0, Tuple{0}));
  EXPECT_TRUE(merger.try_push(0, Tuple{2}));
  sim.run_until_idle();
  EXPECT_FALSE(worker.stalled());
  EXPECT_EQ(merger.emitted(), 4u);
}

TEST(Worker, LoadChangeAppliesToNextTuple) {
  LoadProfile profile(1);
  profile.add_step(0, 2000, 10.0);  // load arrives at t=2000
  Rig rig(1000, profile);
  rig.channel.push_send(Tuple{0});
  rig.channel.push_send(Tuple{1});
  rig.channel.push_send(Tuple{2});
  rig.sim.run_until_idle();
  // t=1: arrival. Tuple 0: 1..1001 (1x). Tuple 1: 1001..2001 (starts
  // before the change: 1x). Tuple 2: starts at 2001 -> 10x -> ends 12001.
  EXPECT_EQ(rig.sim.now(), 12'001);
}

}  // namespace
}  // namespace slb::sim
