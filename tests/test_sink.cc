// Tests for the TupleSink abstraction: counting and channel-adapter
// sinks, merger downstream chaining, and open-loop splitter sources.
#include <gtest/gtest.h>

#include <memory>

#include "core/policies.h"
#include "sim/merger.h"
#include "sim/sink.h"
#include "sim/splitter.h"

namespace slb::sim {
namespace {

TEST(CountingSink, CountsAndNotifies) {
  CountingSink sink;
  std::uint64_t last = 0;
  sink.set_on_tuple([&](const Tuple& t) { last = t.seq; });
  EXPECT_TRUE(sink.offer(0, Tuple{7}));
  EXPECT_TRUE(sink.offer(3, Tuple{9}));
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(last, 9u);
}

TEST(ChannelSink, RefusesWhenChannelFull) {
  Simulator sim;
  Channel ch(&sim, 0, {.send_capacity = 2, .recv_capacity = 1, .latency = 10});
  ChannelSink sink(&ch);
  EXPECT_TRUE(sink.offer(0, Tuple{0}));  // goes straight in flight
  EXPECT_TRUE(sink.offer(0, Tuple{1}));
  EXPECT_TRUE(sink.offer(0, Tuple{2}));
  // recv cap 1 + in flight ... the send buffer (2) is now full.
  EXPECT_FALSE(sink.offer(0, Tuple{3}));
}

TEST(ChannelSink, SpaceCallbackFiresWhenChannelDrains) {
  Simulator sim;
  Channel ch(&sim, 0, {.send_capacity = 1, .recv_capacity = 1, .latency = 10});
  ChannelSink sink(&ch);
  int pokes = 0;
  sink.set_on_space(0, [&] { ++pokes; });
  EXPECT_TRUE(sink.offer(0, Tuple{0}));
  EXPECT_TRUE(sink.offer(0, Tuple{1}));   // sits in send buffer
  EXPECT_FALSE(sink.offer(0, Tuple{2}));  // full
  sim.run_until_idle();
  (void)ch.pop_recv();  // frees recv -> transfer starts -> send space
  sim.run_until_idle();
  EXPECT_GT(pokes, 0);
  EXPECT_TRUE(sink.offer(0, Tuple{2}));
}

TEST(MergerDownstream, OrderedDrainPausesOnFullDownstream) {
  Simulator sim;
  Merger merger(&sim, 1, 16);
  Channel out(&sim, 0, {.send_capacity = 2, .recv_capacity = 1, .latency = 5});
  ChannelSink out_sink(&out);
  merger.connect_downstream(&out_sink);

  for (std::uint64_t s = 0; s < 6; ++s) {
    ASSERT_TRUE(merger.try_push(0, Tuple{s}));
  }
  // Downstream holds recv 1 + in flight ... + send 2 = 3; the rest wait
  // inside the merger.
  EXPECT_EQ(merger.emitted(), 3u);

  sim.run_until_idle();
  (void)out.pop_recv();
  sim.run_until_idle();
  EXPECT_GT(merger.emitted(), 3u);
}

TEST(MergerDownstream, SequenceOrderSurvivesBackPressure) {
  Simulator sim;
  Merger merger(&sim, 2, 64);
  Channel out(&sim, 0, {.send_capacity = 1, .recv_capacity = 1, .latency = 1});
  ChannelSink out_sink(&out);
  merger.connect_downstream(&out_sink);

  // Feed seqs out of order across two connections.
  ASSERT_TRUE(merger.try_push(1, Tuple{1}));
  ASSERT_TRUE(merger.try_push(1, Tuple{3}));
  ASSERT_TRUE(merger.try_push(0, Tuple{0}));
  ASSERT_TRUE(merger.try_push(0, Tuple{2}));

  std::vector<std::uint64_t> seen;
  for (int rounds = 0; rounds < 10 && seen.size() < 4; ++rounds) {
    sim.run_until_idle();
    while (!out.recv_empty()) seen.push_back(out.pop_recv().seq);
    sim.run_until_idle();
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(MergerDownstream, UnorderedHonorsBackPressure) {
  Simulator sim;
  Merger merger(&sim, 1, 16, /*ordered=*/false);
  Channel out(&sim, 0, {.send_capacity = 1, .recv_capacity = 1, .latency = 1});
  ChannelSink out_sink(&out);
  merger.connect_downstream(&out_sink);

  for (std::uint64_t s = 0; s < 5; ++s) {
    ASSERT_TRUE(merger.try_push(0, Tuple{s}));
  }
  EXPECT_LT(merger.emitted(), 5u);  // downstream bounded
  // Drain downstream repeatedly; everything flows through eventually.
  for (int rounds = 0; rounds < 10; ++rounds) {
    sim.run_until_idle();
    while (!out.recv_empty()) (void)out.pop_recv();
    sim.run_until_idle();
  }
  EXPECT_EQ(merger.emitted(), 5u);
}

// ---- open-loop splitter source -------------------------------------------

struct SourceRig {
  Simulator sim;
  RoundRobinPolicy policy{1};
  BlockingCounterSet counters{1};
  std::unique_ptr<Channel> channel;
  std::unique_ptr<Splitter> splitter;

  explicit SourceRig(DurationNs interval) {
    channel = std::make_unique<Channel>(
        &sim, 0,
        Channel::Config{.send_capacity = 1024,
                        .recv_capacity = 1024,
                        .latency = 1});
    splitter = std::make_unique<Splitter>(&sim, &policy, /*overhead=*/100,
                                          interval);
    splitter->wire({channel.get()}, &counters);
  }
};

TEST(OpenLoopSource, RateLimitsSends) {
  SourceRig rig(micros(10));  // 100K tuples/s
  rig.splitter->start();
  rig.sim.run_until(millis(10));
  EXPECT_NEAR(static_cast<double>(rig.splitter->total_sent()), 1000.0, 20.0);
}

TEST(OpenLoopSource, ClosedLoopIsMuchFaster) {
  SourceRig rig(0);
  rig.splitter->start();
  rig.sim.run_until(millis(1));
  // Bounded only by the 100 ns overhead and the channel buffers.
  EXPECT_GE(rig.splitter->total_sent(), 2048u);
}

TEST(OpenLoopSource, ArrearsBurstAfterBlocking) {
  // A consumer that wakes up late: the source catches up on its backlog
  // at full speed instead of dropping it.
  Simulator sim;
  RoundRobinPolicy policy{1};
  BlockingCounterSet counters{1};
  Channel ch(&sim, 0, {.send_capacity = 4, .recv_capacity = 4, .latency = 1});
  Splitter splitter(&sim, &policy, 100, micros(10));
  splitter.wire({&ch}, &counters);
  splitter.start();
  sim.run_until(millis(5));  // buffers (8) fill, source falls behind
  EXPECT_EQ(splitter.total_sent(), 8u);
  // Drain everything; the source should burst well faster than 100K/s.
  std::function<void()> drain = [&] {
    while (!ch.recv_empty()) (void)ch.pop_recv();
    sim.schedule_after(micros(1), drain);
  };
  sim.schedule_after(0, drain);
  sim.run_until(millis(5) + micros(200));
  EXPECT_GT(splitter.total_sent(), 30u);  // >> 2 tuples of steady rate
}

}  // namespace
}  // namespace slb::sim
