// Tests for the per-period trace recorder used by the in-depth figures.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/trace.h"

namespace slb::sim {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.workers = 2;
  spec.base_multiplies = 1000;
  return spec;
}

TEST(Trace, RecordsOneRowPerPeriod) {
  const ExperimentSpec spec = small_spec();
  auto region = make_region(PolicyKind::kRoundRobin, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.paper_second * 10);
  ASSERT_EQ(trace.rows().size(), 10u);
  EXPECT_NEAR(trace.rows().front().paper_s, 1.0, 1e-9);
  EXPECT_NEAR(trace.rows().back().paper_s, 10.0, 1e-9);
}

TEST(Trace, RowsCarryWeightsAndRates) {
  const ExperimentSpec spec = small_spec();
  auto region = make_region(PolicyKind::kLbAdaptive, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.paper_second * 5);
  for (const TraceRow& row : trace.rows()) {
    ASSERT_EQ(row.weights.size(), 2u);
    ASSERT_EQ(row.block_rates.size(), 2u);
    EXPECT_EQ(total_weight(row.weights), kWeightUnits);
    for (double r : row.block_rates) EXPECT_GE(r, 0.0);
  }
}

TEST(Trace, ClusterColumnOnlyWhenClustering) {
  const ExperimentSpec spec = small_spec();
  auto region = make_region(PolicyKind::kLbAdaptive, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.paper_second * 3);
  for (const TraceRow& row : trace.rows()) {
    EXPECT_TRUE(row.cluster_of.empty());
  }
}

TEST(Trace, ClusterAssignmentsRecordedWhenEnabled) {
  ExperimentSpec spec;
  spec.workers = 8;
  spec.base_multiplies = 2000;
  spec.controller.enable_clustering = true;
  spec.controller.clustering_min_connections = 4;
  spec.loads.push_back({{0, 1, 2, 3}, 20.0, -1.0});
  auto region = make_region(PolicyKind::kLbAdaptive, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.paper_second * 30);
  bool saw_clusters = false;
  for (const TraceRow& row : trace.rows()) {
    if (row.cluster_of.empty()) continue;
    saw_clusters = true;
    ASSERT_EQ(row.cluster_of.size(), 8u);
    for (int c : row.cluster_of) EXPECT_GE(c, 0);
  }
  EXPECT_TRUE(saw_clusters);
}

TEST(Trace, WritesWellFormedCsv) {
  const ExperimentSpec spec = small_spec();
  auto region = make_region(PolicyKind::kRoundRobin, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.paper_second * 4);

  const std::string path = ::testing::TempDir() + "/slb_trace_test.csv";
  ASSERT_TRUE(trace.write_csv(path));
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "paper_s,w0,w1,rate0,rate1,emitted,shed,overloaded");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);
  std::remove(path.c_str());
}

TEST(Trace, RenderWeightsProducesOneLinePerStride) {
  const ExperimentSpec spec = small_spec();
  auto region = make_region(PolicyKind::kRoundRobin, spec);
  TraceRecorder trace(spec.scale);
  trace.attach(*region);
  region->run_for(spec.scale.paper_second * 20);
  const std::string text = trace.render_weights(10);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("t="), std::string::npos);
}

}  // namespace
}  // namespace slb::sim
