// Tests for the real transport layer: framing, sockets, and the
// blocking-instrumented sender (the paper's MSG_DONTWAIT mechanism).
#include <gtest/gtest.h>

#include <thread>

#include "core/blocking_counter.h"
#include "transport/framing.h"
#include "transport/instrumented_sender.h"
#include "transport/socket.h"

namespace slb::net {
namespace {

// ------------------------------------------------------------- framing --

TEST(Framing, EncodeDecodeRoundTrip) {
  Frame in;
  in.seq = 42;
  in.payload = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> wire;
  encode_frame(in, wire);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 5);

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_FALSE(dec.next(out));
}

TEST(Framing, EmptyPayload) {
  Frame in;
  in.seq = 7;
  std::vector<std::uint8_t> wire;
  encode_frame(in, wire);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out.seq, 7u);
  EXPECT_TRUE(out.payload.empty());
  EXPECT_FALSE(out.is_fin());
}

TEST(Framing, FinFrameDetected) {
  const std::vector<std::uint8_t> wire = fin_bytes();
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_TRUE(out.is_fin());
}

TEST(Framing, ByteAtATimeFeeding) {
  Frame in;
  in.seq = 0x1122334455667788ULL;
  in.payload.assign(33, 0xCD);
  std::vector<std::uint8_t> wire;
  encode_frame(in, wire);

  FrameDecoder dec;
  Frame out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(&wire[i], 1);
    EXPECT_FALSE(dec.next(out)) << "frame complete too early at byte " << i;
  }
  dec.feed(&wire.back(), 1);
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Framing, MultipleFramesInOneFeed) {
  std::vector<std::uint8_t> wire;
  for (std::uint64_t s = 0; s < 10; ++s) {
    Frame f;
    f.seq = s;
    f.payload.assign(static_cast<std::size_t>(s), 0xEE);
    encode_frame(f, wire);
  }
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  for (std::uint64_t s = 0; s < 10; ++s) {
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out.seq, s);
    EXPECT_EQ(out.payload.size(), s);
  }
  EXPECT_FALSE(dec.next(out));
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(Framing, CompactionKeepsStreamIntact) {
  // Push enough frames through to trigger internal compaction repeatedly.
  FrameDecoder dec;
  Frame out;
  std::vector<std::uint8_t> wire;
  std::uint64_t next_expected = 0;
  for (std::uint64_t s = 0; s < 2000; ++s) {
    wire.clear();
    Frame f;
    f.seq = s;
    f.payload.assign(16, static_cast<std::uint8_t>(s & 0xFF));
    encode_frame(f, wire);
    dec.feed(wire.data(), wire.size());
    while (dec.next(out)) {
      EXPECT_EQ(out.seq, next_expected++);
    }
  }
  EXPECT_EQ(next_expected, 2000u);
}

// -------------------------------------------------------------- sockets --

TEST(Socket, FdMoveSemantics) {
  Fd a(-1);
  EXPECT_FALSE(a.valid());
  Listener listener;
  Fd b = connect_loopback(listener.port());
  EXPECT_TRUE(b.valid());
  Fd c = std::move(b);
  EXPECT_TRUE(c.valid());
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move): testing move
}

TEST(Socket, LoopbackEchoExactBytes) {
  Listener listener;
  Fd client = connect_loopback(listener.port());
  Fd server = listener.accept_one();

  const char msg[] = "hello streaming world";
  write_all(client.get(), msg, sizeof(msg));
  char buf[sizeof(msg)] = {};
  ASSERT_TRUE(read_exact(server.get(), buf, sizeof(msg)));
  EXPECT_STREQ(buf, msg);
}

TEST(Socket, ReadExactReportsCleanEof) {
  Listener listener;
  Fd client = connect_loopback(listener.port());
  Fd server = listener.accept_one();
  client.reset();  // close
  char buf[4];
  EXPECT_FALSE(read_exact(server.get(), buf, sizeof(buf)));
}

TEST(Socket, OptionsApplyWithoutError) {
  Listener listener;
  Fd client = connect_loopback(listener.port());
  EXPECT_NO_THROW(set_nodelay(client.get()));
  EXPECT_NO_THROW(set_send_buffer(client.get(), 8192));
  EXPECT_NO_THROW(set_recv_buffer(client.get(), 8192));
}

// -------------------------------------------- instrumented blocking send --

TEST(InstrumentedSender, NoBlockingWhenReceiverKeepsUp) {
  Listener listener;
  Fd client = connect_loopback(listener.port());
  Fd server = listener.accept_one();

  BlockingCounter counter;
  InstrumentedSender sender(client.get(), &counter);

  std::thread reader([&] {
    std::vector<std::uint8_t> buf(64 * 1024);
    std::size_t total = 0;
    while (total < 1024 * 100) {
      const ssize_t n = ::read(server.get(), buf.data(), buf.size());
      if (n <= 0) break;
      total += static_cast<std::size_t>(n);
    }
  });
  std::vector<std::uint8_t> chunk(1024, 0x55);
  for (int i = 0; i < 100; ++i) sender.send_all(chunk.data(), chunk.size());
  reader.join();
  EXPECT_EQ(sender.block_events(), 0u);
  EXPECT_EQ(counter.cumulative(), 0);
}

TEST(InstrumentedSender, RecordsBlockingWhenReceiverStalls) {
  Listener listener;
  Fd client = connect_loopback(listener.port());
  Fd server = listener.accept_one();
  set_send_buffer(client.get(), 4 * 1024);
  set_recv_buffer(server.get(), 4 * 1024);

  BlockingCounter counter;
  InstrumentedSender sender(client.get(), &counter);

  // Reader sleeps first: the sender must fill the (small) kernel buffers
  // and then measurably block.
  std::thread reader([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::vector<std::uint8_t> buf(64 * 1024);
    std::size_t total = 0;
    while (total < 512 * 1024) {
      const ssize_t n = ::read(server.get(), buf.data(), buf.size());
      if (n <= 0) break;
      total += static_cast<std::size_t>(n);
    }
  });
  std::vector<std::uint8_t> chunk(4096, 0x77);
  for (int i = 0; i < 128; ++i) sender.send_all(chunk.data(), chunk.size());
  reader.join();
  EXPECT_GT(sender.block_events(), 0u);
  EXPECT_GT(counter.cumulative(), millis(20));
}

TEST(InstrumentedSender, TrySendReturnsZeroWhenFull) {
  Listener listener;
  Fd client = connect_loopback(listener.port());
  Fd server = listener.accept_one();
  set_send_buffer(client.get(), 4 * 1024);
  set_recv_buffer(server.get(), 4 * 1024);

  BlockingCounter counter;
  InstrumentedSender sender(client.get(), &counter);
  std::vector<std::uint8_t> chunk(4096, 0x33);
  // Nothing reads: eventually try_send must return 0 (EAGAIN).
  bool saw_zero = false;
  for (int i = 0; i < 1000 && !saw_zero; ++i) {
    saw_zero = sender.try_send(chunk.data(), chunk.size()) == 0;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_EQ(counter.cumulative(), 0);  // try_send never blocks
  (void)server;
}

}  // namespace
}  // namespace slb::net
