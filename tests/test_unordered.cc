// Tests for unordered regions (parallel sinks, Section 4.1 footnote) and
// the throughput-based policy extension — including a runnable proof of
// the paper's Section 4.3 claim: per-connection throughput is informative
// exactly when the ordered merge is absent.
#include <gtest/gtest.h>

#include <memory>

#include "sim/region.h"

namespace slb::sim {
namespace {

RegionConfig small_region(int workers, DurationNs base_cost, bool ordered) {
  RegionConfig cfg;
  cfg.workers = workers;
  cfg.base_cost = base_cost;
  cfg.send_buffer = 16;
  cfg.recv_buffer = 16;
  cfg.link_latency = micros(1);
  cfg.send_overhead = 100;
  cfg.sample_period = millis(5);
  cfg.ordered = ordered;
  return cfg;
}

TEST(UnorderedMerger, ReleasesImmediately) {
  Simulator sim;
  Merger m(&sim, 2, 4, /*ordered=*/false);
  EXPECT_FALSE(m.ordered());
  // Sequence 5 arrives before 0..4; an ordered merger would hold it.
  EXPECT_TRUE(m.try_push(1, Tuple{5}));
  EXPECT_EQ(m.emitted(), 1u);
  EXPECT_EQ(m.emitted_from(1), 1u);
  EXPECT_EQ(m.queue_size(1), 0u);
}

TEST(UnorderedMerger, NeverRejects) {
  Simulator sim;
  Merger m(&sim, 1, 1, /*ordered=*/false);
  for (std::uint64_t s = 100; s < 200; ++s) {
    ASSERT_TRUE(m.try_push(0, Tuple{s}));
  }
  EXPECT_EQ(m.emitted(), 100u);
}

TEST(OrderedMerger, TracksPerConnectionDeliveries) {
  Simulator sim;
  Merger m(&sim, 2, 16);
  EXPECT_TRUE(m.try_push(0, Tuple{0}));
  EXPECT_TRUE(m.try_push(1, Tuple{1}));
  EXPECT_TRUE(m.try_push(0, Tuple{2}));
  EXPECT_EQ(m.emitted_from(0), 2u);
  EXPECT_EQ(m.emitted_from(1), 1u);
}

TEST(UnorderedRegion, SplitterStillEnforcesItsMixWithoutRerouting) {
  // Subtle but important: removing the merge alone changes little,
  // because the single-threaded splitter blocks on the slow connection
  // either way and thereby enforces its round-robin input mix (the deep
  // version of Section 4.3).
  auto run = [](bool ordered) {
    LoadProfile load(2);
    load.add_step(0, 0, 50.0);
    Region region(small_region(2, micros(10), ordered),
                  std::make_unique<RoundRobinPolicy>(2), std::move(load));
    region.run_for(millis(100));
    return region.emitted();
  };
  const std::uint64_t ordered = run(true);
  const std::uint64_t unordered = run(false);
  EXPECT_NEAR(static_cast<double>(unordered), static_cast<double>(ordered),
              0.2 * static_cast<double>(ordered));
}

TEST(UnorderedRegion, RerouteSetsTheFastWorkersFree) {
  // With parallel sinks + transport-level re-routing, diverted tuples
  // exit freely: the region runs at aggregate capacity instead of
  // N x slowest.
  auto run = [](bool ordered) {
    LoadProfile load(2);
    load.add_step(0, 0, 50.0);
    RegionConfig cfg = small_region(2, micros(10), ordered);
    cfg.merge_buffer = 32;  // bounded: ordered regions choke re-routing
    Region region(cfg, std::make_unique<RerouteOnBlockPolicy>(2),
                  std::move(load));
    region.run_for(millis(100));
    return region.emitted();
  };
  const std::uint64_t ordered = run(true);
  const std::uint64_t unordered = run(false);
  EXPECT_GT(unordered, 3 * ordered);
}

TEST(UnorderedRegion, PerConnectionDeliveryRevealsCapacity) {
  // Without the merge and with re-routing, connection deliveries track
  // capacity (the slow connection delivers far less), not the weights.
  LoadProfile load(2);
  load.add_step(0, 0, 10.0);
  Region region(small_region(2, micros(10), /*ordered=*/false),
                std::make_unique<RerouteOnBlockPolicy>(2), std::move(load));
  region.run_for(millis(100));
  const std::uint64_t slow = region.merger().emitted_from(0);
  const std::uint64_t fast = region.merger().emitted_from(1);
  EXPECT_GT(fast, 5 * slow);
}

TEST(OrderedRegion, PerConnectionDeliveryMatchesWeightsNotCapacity) {
  // Section 4.3 as stated: with the merge, deliveries equal the weight
  // split even under a 10x capacity imbalance.
  LoadProfile load(2);
  load.add_step(0, 0, 10.0);
  Region region(small_region(2, micros(10), /*ordered=*/true),
                std::make_unique<RoundRobinPolicy>(2), std::move(load));
  region.run_for(millis(100));
  const double ratio =
      static_cast<double>(region.merger().emitted_from(0)) /
      static_cast<double>(region.merger().emitted_from(1));
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(ThroughputPolicy, BalancesUnorderedRegion) {
  LoadProfile load(2);
  load.add_step(0, 0, 10.0);
  Region region(small_region(2, micros(10), /*ordered=*/false),
                std::make_unique<ThroughputBalancedPolicy>(2),
                std::move(load));
  region.run_for(seconds(1));
  // True capacities are 1:10; the policy should end far from even.
  EXPECT_LT(region.policy().weights()[0], 250);
  EXPECT_GT(region.policy().weights()[1], 750);
}

TEST(ThroughputPolicy, MostlyBlindInOrderedRegionWithBoundedMerger) {
  // In an ordered region with bounded buffering, re-routing is choked
  // (Section 4.4) and deliveries approximately mirror the input mix
  // (Section 4.3), so the policy ends far from the true 1:10 capacity
  // split that the unordered case finds.
  LoadProfile load(2);
  load.add_step(0, 0, 10.0);
  RegionConfig cfg = small_region(2, micros(10), /*ordered=*/true);
  cfg.merge_buffer = 32;
  Region region(cfg, std::make_unique<ThroughputBalancedPolicy>(2),
                std::move(load));
  region.run_for(seconds(1));
  EXPECT_GT(region.policy().weights()[0], 300);
}

TEST(ThroughputPolicy, LbStillWorksOnUnorderedRegion) {
  // The blocking-rate scheme is signal-compatible with both region kinds.
  LoadProfile load(2);
  load.add_step(0, 0, 10.0);
  Region region(small_region(2, micros(10), /*ordered=*/false),
                std::make_unique<LoadBalancingPolicy>(2, ControllerConfig{}),
                std::move(load));
  region.run_for(seconds(1));
  EXPECT_LT(region.policy().weights()[0], 250);
}

TEST(ThroughputPolicy, NameAndDefaults) {
  ThroughputBalancedPolicy p(3);
  EXPECT_EQ(p.name(), "TP-balance");
  EXPECT_EQ(total_weight(p.weights()), kWeightUnits);
  EXPECT_TRUE(p.reroute_on_block());  // needed for deliveries to inform
  ThroughputBalancedPolicy no_reroute(3, 0.5, false);
  EXPECT_FALSE(no_reroute.reroute_on_block());
}

TEST(ThroughputPolicy, IgnoresEmptyPeriods) {
  ThroughputBalancedPolicy p(2);
  const std::vector<std::uint64_t> zero{0, 0};
  p.on_throughput(seconds(1), zero);
  p.on_throughput(seconds(2), zero);  // no deliveries at all
  EXPECT_EQ(p.weights(), even_weights(2));
}

}  // namespace
}  // namespace slb::sim
