// Unit tests for the utility layer: EWMA, RNG, running stats, CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/ewma.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace slb {
namespace {

// ---------------------------------------------------------------- time --

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(millis(3), 3'000'000);
  EXPECT_EQ(micros(7), 7'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_EQ(seconds_f(0.5), 500'000'000);
}

TEST(Time, MonotonicNowAdvances) {
  const TimeNs a = monotonic_now();
  const TimeNs b = monotonic_now();
  EXPECT_GE(b, a);
}

// ---------------------------------------------------------------- ewma --

TEST(Ewma, FirstSampleInitializesDirectly) {
  Ewma e(0.25);
  EXPECT_FALSE(e.initialized());
  e.add(8.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
}

TEST(Ewma, MixesWithAlpha) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, AlphaOneTracksLastSample) {
  Ewma e(1.0);
  e.add(3.0);
  e.add(-7.0);
  EXPECT_DOUBLE_EQ(e.value(), -7.0);
}

TEST(Ewma, ResetForgets) {
  Ewma e(0.5);
  e.add(4.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
  e.add(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

// ----------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --------------------------------------------------------------- stats --

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
}

TEST(SampleSet, MeanMatches) {
  SampleSet s;
  for (int i = 1; i <= 9; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(SampleSet, SingleElement) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
}

TEST(RunningStats, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, VarianceNeverNegative) {
  // Catastrophic cancellation regime: large offset, tiny spread. Welford's
  // m2 can drift a hair below zero; variance()/stddev() must clamp.
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e15 + (i % 2 == 0 ? 1e-3 : -1e-3));
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
}

TEST(SampleSet, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSet, OutOfRangeAndNanQuantilesClamp) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1.0);   // clamps to q=0
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 10.0);   // clamps to q=1
  EXPECT_DOUBLE_EQ(s.quantile(std::numeric_limits<double>::quiet_NaN()),
                   1.0);                     // NaN treated as q=0
}

TEST(SampleSet, QuantileAfterLateAddResorts) {
  SampleSet s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(0.5);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
}

// ----------------------------------------------------------------- csv --

TEST(Csv, EscapePassesPlainText) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(Csv, EscapeQuotesSpecials) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/slb_csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.header({"a", "b"});
    csv.row(std::vector<double>{1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1.5,2");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slb
