// Tests for the smooth weighted round-robin router.
#include <gtest/gtest.h>

#include <vector>

#include "core/wrr.h"
#include "util/rng.h"

namespace slb {
namespace {

std::vector<int> pick_counts(SmoothWrr& wrr, int picks) {
  std::vector<int> counts(static_cast<std::size_t>(wrr.connections()), 0);
  for (int i = 0; i < picks; ++i) {
    const int j = wrr.pick();
    EXPECT_GE(j, 0);
    EXPECT_LT(j, wrr.connections());
    ++counts[static_cast<std::size_t>(j)];
  }
  return counts;
}

TEST(SmoothWrr, DefaultIsEvenSplit) {
  SmoothWrr wrr(4);
  const std::vector<int> counts = pick_counts(wrr, 4000);
  for (int c : counts) EXPECT_EQ(c, 1000);
}

TEST(SmoothWrr, ExactProportionsOverOneCycle) {
  SmoothWrr wrr(3);
  wrr.set_weights({500, 300, 200});
  const std::vector<int> counts = pick_counts(wrr, 1000);
  EXPECT_EQ(counts[0], 500);
  EXPECT_EQ(counts[1], 300);
  EXPECT_EQ(counts[2], 200);
}

TEST(SmoothWrr, ZeroWeightNeverPicked) {
  SmoothWrr wrr(3);
  wrr.set_weights({600, 0, 400});
  const std::vector<int> counts = pick_counts(wrr, 2000);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[0], 1200);
  EXPECT_EQ(counts[2], 800);
}

TEST(SmoothWrr, AllZeroFallsBackToRoundRobin) {
  SmoothWrr wrr(3);
  wrr.set_weights({0, 0, 0});
  EXPECT_EQ(wrr.pick(), 0);
  EXPECT_EQ(wrr.pick(), 1);
  EXPECT_EQ(wrr.pick(), 2);
  EXPECT_EQ(wrr.pick(), 0);
}

TEST(SmoothWrr, SingleConnection) {
  SmoothWrr wrr(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(wrr.pick(), 0);
}

TEST(SmoothWrr, InterleavesRatherThanBursts) {
  // With weights 2:1:1 the dominant connection must never be picked three
  // times in a row — that is the "smooth" property (nginx-style).
  SmoothWrr wrr(3);
  wrr.set_weights({500, 250, 250});
  int run = 0;
  int max_run = 0;
  int prev = -1;
  for (int i = 0; i < 4000; ++i) {
    const int j = wrr.pick();
    run = (j == prev) ? run + 1 : 1;
    max_run = std::max(max_run, run);
    prev = j;
  }
  EXPECT_LE(max_run, 2);
}

TEST(SmoothWrr, PrefixDeviationBounded) {
  // At every prefix of the pick sequence, the count of connection j must
  // stay within connections() picks of the ideal fraction.
  SmoothWrr wrr(4);
  const WeightVector w{400, 300, 200, 100};
  wrr.set_weights(w);
  std::vector<int> counts(4, 0);
  for (int i = 1; i <= 2000; ++i) {
    ++counts[static_cast<std::size_t>(wrr.pick())];
    for (int j = 0; j < 4; ++j) {
      const double ideal =
          static_cast<double>(i) * w[static_cast<std::size_t>(j)] / 1000.0;
      EXPECT_NEAR(counts[static_cast<std::size_t>(j)], ideal, 4.0)
          << "prefix " << i << " connection " << j;
    }
  }
}

TEST(SmoothWrr, WeightChangeTakesEffect) {
  SmoothWrr wrr(2);
  wrr.set_weights({1000, 0});
  (void)pick_counts(wrr, 10);
  wrr.set_weights({0, 1000});
  const std::vector<int> counts = pick_counts(wrr, 10);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 10);
}

TEST(SmoothWrr, WeightChangeDoesNotBurst) {
  // After shifting weight toward connection 1, it must not receive a long
  // compensating burst from stale credit.
  SmoothWrr wrr(2);
  wrr.set_weights({900, 100});
  (void)pick_counts(wrr, 1000);
  wrr.set_weights({500, 500});
  int longest_run_1 = 0;
  int run = 0;
  for (int i = 0; i < 200; ++i) {
    if (wrr.pick() == 1) {
      ++run;
      longest_run_1 = std::max(longest_run_1, run);
    } else {
      run = 0;
    }
  }
  EXPECT_LE(longest_run_1, 3);
}

class WrrProportions : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WrrProportions, RandomWeightsRouteProportionally) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.below(15));
  WeightVector w(static_cast<std::size_t>(n), 0);
  Weight remaining = kWeightUnits;
  for (int j = 0; j < n - 1; ++j) {
    const Weight x = static_cast<Weight>(
        rng.below(static_cast<std::uint64_t>(remaining) + 1));
    w[static_cast<std::size_t>(j)] = x;
    remaining -= x;
  }
  w[static_cast<std::size_t>(n - 1)] = remaining;

  SmoothWrr wrr(n);
  wrr.set_weights(w);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < kWeightUnits; ++i) {
    ++counts[static_cast<std::size_t>(wrr.pick())];
  }
  for (int j = 0; j < n; ++j) {
    EXPECT_EQ(counts[static_cast<std::size_t>(j)],
              w[static_cast<std::size_t>(j)])
        << "connection " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WrrProportions,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace slb
