// Chaos soak: seeded randomized fault + overload schedules against the
// invariants the rest of the repo promises (ISSUE/DESIGN.md §7).
//
// Each seed expands — through the repo's own deterministic xoshiro256++
// — into a random region shape, an external-load schedule with overload
// bursts, a crash/recover/stall schedule, and (sometimes) an open-loop
// source with shedding watermarks. The run then has to keep every
// invariant:
//
//   * conservation: every sequence number is emitted, a declared gap
//     (crash loss or shed), or demonstrably in flight;
//   * ordered prefix-with-gaps: the merger never regresses;
//   * simplex-feasible weights at every sample (non-negative, summing to
//     kWeightUnits, zero on downed channels);
//   * progress: the region keeps emitting unless every worker is dead;
//   * determinism (sim): the same seed replays to the same signature.
//
// Usage:
//   chaos_soak [--seed S] [--seeds K] [--mode sim|rt|both]
//              [--duration-ms D] [--verify-replay] [--metrics-out PATH]
//              [--delivery gap-skip|at-least-once]
//
// Runs K seeds starting at S (default 3 starting at 1) and exits
// non-zero on the first invariant violation. `--verify-replay` runs each
// sim seed twice and compares signatures. `--metrics-out` streams each
// sim run's registry as JSON lines (per-sample deltas plus an end-of-run
// snapshot, DESIGN.md §8). `--delivery at-least-once` runs the same plan
// space with replay/ack recovery armed and swaps the loss-tolerant
// invariants for the exactly-once ones (zero gaps beyond sheds, sink
// sees every sequence once; DESIGN.md §10). The short fixed-seed ctest
// variants live in tools/CMakeLists.txt.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/policies.h"
#include "core/types.h"
#include "delivery/delivery.h"
#include "obs/export.h"
#include "runtime/local_region.h"
#include "sim/chaos.h"
#include "sim/region.h"
#include "util/rng.h"
#include "util/time.h"

namespace slb {
namespace {

int failures = 0;

void check(bool ok, std::uint64_t seed, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL seed=%" PRIu64 ": %s\n", seed, what);
}

ControllerConfig protected_controller() {
  ControllerConfig cfg;
  cfg.enable_overload_protection = true;
  cfg.saturation.enter_periods = 3;
  cfg.saturation.exit_periods = 3;
  return cfg;
}

// --- simulator soak ----------------------------------------------------

// Plan generation lives in sim/chaos.{h,cc} so the randomized invariant
// tests replay the exact same plan space; chaos_soak is now just the
// driver around it.

struct SimOutcome {
  std::vector<std::uint64_t> signature;
  bool invariants_ok = true;
};

SimOutcome run_sim_once(std::uint64_t seed, DurationNs duration,
                        const std::string& metrics_out, bool alo) {
  sim::ChaosPlan plan = sim::make_chaos_plan(seed, duration);
  if (alo) {
    plan.region.delivery.mode = delivery::DeliveryMode::kAtLeastOnce;
    plan.region.delivery.ack_stall_periods = 6;
  }
  const int workers = plan.region.workers;
  sim::Region region(plan.region,
                     std::make_unique<LoadBalancingPolicy>(
                         workers, protected_controller()),
                     plan.load);
  for (const sim::FaultEvent& f : plan.faults) region.inject_fault(f);

  std::unique_ptr<obs::JsonlExporter> exporter;
  if (!metrics_out.empty()) {
    // One file per run, appended across seeds: per-sample deltas plus an
    // end-of-run snapshot.
    exporter = std::make_unique<obs::JsonlExporter>(
        &region.metrics(), metrics_out, /*append=*/true);
    if (!exporter->ok()) {
      std::fprintf(stderr, "chaos soak: cannot open %s\n",
                   metrics_out.c_str());
      exporter.reset();
    }
  }

  SimOutcome out;
  std::uint64_t prev_gaps = 0;
  bool weights_ok = true;
  bool gaps_monotone = true;
  region.set_sample_hook([&](sim::Region& r) {
    const WeightVector& w = r.policy().weights();
    Weight sum = 0;
    for (Weight x : w) {
      if (x < 0) weights_ok = false;
      sum += x;
    }
    if (sum != kWeightUnits) weights_ok = false;
    const std::uint64_t gaps = r.merger().gaps();
    if (gaps < prev_gaps) gaps_monotone = false;
    prev_gaps = gaps;
    if (exporter) exporter->tick(r.now());
  });

  std::uint64_t emitted_mid = 0;
  region.start();
  region.run_for(duration / 2);
  emitted_mid = region.emitted();
  region.run_for(duration - duration / 2);
  if (exporter) exporter->dump(region.now());

  check(weights_ok, seed, "sim: weights left the simplex");
  check(gaps_monotone, seed, "sim: merger gap count regressed");

  // Conservation: every *sent* tuple is emitted, lost to a crash, or
  // demonstrably somewhere in the region right now. Shed tuples never
  // entered a channel; they consumed sequence numbers and surface as
  // merger gaps instead.
  std::uint64_t in_flight = 0;
  int live = 0;
  for (int j = 0; j < workers; ++j) {
    in_flight += region.channel(j).occupancy();
    in_flight += region.merger().queue_size(j);
    if (region.worker(j).busy()) ++in_flight;
    if (region.worker(j).stalled()) ++in_flight;
    if (!region.worker(j).down()) ++live;
  }
  // Replays parked in the merger's out-of-order pool are in flight but
  // invisible to queue_size (always zero under GapSkip).
  in_flight += region.merger().pooled();
  if (alo) {
    // Transmission-space conservation (DESIGN.md §10): every push into a
    // channel — fresh or replayed — is released, a discarded duplicate /
    // late arrival, lost with a crash (replay queues hold copies of lost
    // transmissions, so they are not a separate term), or in flight.
    check(region.splitter().total_sent() + region.splitter().retransmits() ==
              region.emitted() + region.lost_tuples() +
              region.merger().dup_discards() +
              region.merger().late_discards() + in_flight,
          seed,
          "sim: ALO conservation (sent + retransmits == emitted + "
          "discards + lost + in-flight)");
    // Exactly-once at the sink: the only declared gaps are sheds.
    check(region.merger().gaps() <= region.shed_tuples(), seed,
          "sim: ALO lost sequences (gaps beyond sheds)");
  } else {
    check(region.splitter().total_sent() ==
              region.emitted() + region.lost_tuples() + in_flight,
          seed, "sim: conservation (sent == emitted + lost + in-flight)");
    check(region.merger().gaps() <=
              region.lost_tuples() + region.shed_tuples(),
          seed, "sim: gaps exceed declared losses + sheds");
  }
  check(region.emitted() > 0, seed, "sim: nothing emitted at all");
  if (live > 0) {
    check(region.emitted() > emitted_mid, seed,
          "sim: no progress in the second half despite live workers");
  }

  out.invariants_ok = failures == 0;
  out.signature.push_back(region.emitted());
  out.signature.push_back(region.splitter().total_sent());
  out.signature.push_back(region.shed_tuples());
  out.signature.push_back(region.lost_tuples());
  out.signature.push_back(region.merger().gaps());
  out.signature.push_back(region.splitter().failovers());
  out.signature.push_back(region.splitter().retransmits());
  out.signature.push_back(region.merger().dup_discards());
  out.signature.push_back(
      static_cast<std::uint64_t>(region.watchdog_stage()));
  for (int j = 0; j < workers; ++j) {
    out.signature.push_back(region.splitter().sent(j));
    out.signature.push_back(region.worker(j).processed());
    out.signature.push_back(
        static_cast<std::uint64_t>(region.policy().weights()[j]));
  }
  return out;
}

void run_sim_seed(std::uint64_t seed, DurationNs duration,
                  bool verify_replay, const std::string& metrics_out,
                  bool alo) {
  const SimOutcome first = run_sim_once(seed, duration, metrics_out, alo);
  if (verify_replay) {
    const SimOutcome second =
        run_sim_once(seed, duration, metrics_out, alo);
    check(first.signature == second.signature, seed,
          "sim: replay diverged (same seed, different signature)");
  }
  std::printf("  sim  seed=%-6" PRIu64 " emitted=%-9" PRIu64
              " shed=%-7" PRIu64 " lost=%-5" PRIu64 " gaps=%-7" PRIu64
              " %s\n",
              seed, first.signature[0], first.signature[2],
              first.signature[3], first.signature[4],
              failures == 0 ? "ok" : "FAIL");
}

// --- runtime soak ------------------------------------------------------

void run_rt_seed(std::uint64_t seed, DurationNs duration, bool alo) {
  Rng rng(seed);
  rt::LocalRegionConfig cfg;
  if (alo) {
    cfg.delivery.mode = delivery::DeliveryMode::kAtLeastOnce;
    cfg.delivery.ack_stall_periods = 6;
  }
  const int workers = static_cast<int>(2 + rng.below(3));  // 2..4
  cfg.workers = workers;
  cfg.multiplies = 2000;
  cfg.work_mode = rt::WorkMode::kTimed;
  cfg.payload_bytes = 32;
  cfg.sample_period = millis(50);
  cfg.merger_gap_timeout = millis(200);
  cfg.protection.admission_control = true;
  cfg.protection.watchdog = true;
  cfg.protection.watchdog_periods = 4;

  std::uint64_t expected_kills = 0;
  if (rng.chance(0.7)) {
    const int victim = static_cast<int>(rng.below(workers));
    const DurationNs at =
        millis(static_cast<long>(150 + rng.below(300)));
    cfg.failure_events.push_back({at, victim, /*restart=*/false});
    ++expected_kills;
    if (rng.chance(0.7)) {
      cfg.failure_events.push_back(
          {at + millis(static_cast<long>(250 + rng.below(250))), victim,
           /*restart=*/true});
    }
  }
  // Overload burst: every worker slowed together for a stretch.
  if (rng.chance(0.8)) {
    const DurationNs at =
        millis(static_cast<long>(100 + rng.below(200)));
    const DurationNs until =
        at + millis(static_cast<long>(200 + rng.below(300)));
    const double mult = rng.uniform(3.0, 8.0);
    for (int j = 0; j < workers; ++j) {
      cfg.load_events.push_back({at, j, mult});
      cfg.load_events.push_back({until, j, 1.0});
    }
  }
  if (rng.chance(0.5)) {
    // Open loop at ~2x nominal capacity (kTimed: 1 ns per multiply),
    // with shedding armed.
    cfg.source_interval = static_cast<DurationNs>(
        cfg.multiplies / (2.0 * workers));
    cfg.protection.shed_high_watermark = 256;
    cfg.protection.shed_low_watermark = 128;
  }

  rt::LocalRegion region(
      cfg, std::make_unique<LoadBalancingPolicy>(workers,
                                                 protected_controller()));
  bool weights_ok = true;
  region.set_sample_hook([&](const rt::LocalSample& s) {
    Weight sum = 0;
    for (Weight x : s.weights) {
      if (x < 0) weights_ok = false;
      sum += x;
    }
    if (sum != kWeightUnits) weights_ok = false;
  });
  const rt::LocalRunStats stats = region.run(duration);

  check(stats.order_ok, seed,
        "rt: order/conservation violated (emitted + gaps != sent + shed "
        "or out-of-order emission)");
  check(stats.emitted + stats.gaps == stats.sent + stats.shed, seed,
        "rt: emitted + gaps != sent + shed");
  check(weights_ok, seed, "rt: weights left the simplex");
  check(stats.emitted > 0, seed, "rt: nothing emitted at all");
  check(stats.channel_failures >= expected_kills, seed,
        "rt: scheduled kill not observed as a channel failure");
  if (alo) {
    // Exactly-once at the sink: no sequence lost (the only gaps are
    // sheds, which never entered a channel) and no duplicate released —
    // order_ok above already proves strict order, and every duplicate
    // the replays manufactured was discarded before release.
    check(stats.gaps == stats.shed, seed,
          "rt: ALO lost sequences (gaps beyond sheds)");
    check(stats.emitted == stats.sent, seed,
          "rt: ALO sink missed or duplicated sequences");
    check(stats.dup_discards <= stats.retransmits, seed,
          "rt: more duplicates discarded than frames retransmitted");
  }
  std::printf("  rt   seed=%-6" PRIu64 " sent=%-9" PRIu64 " emitted=%-9"
              PRIu64 " shed=%-7" PRIu64 " gaps=%-5" PRIu64 " retx=%-5"
              PRIu64 " %s\n",
              seed, stats.sent, stats.emitted, stats.shed, stats.gaps,
              stats.retransmits, failures == 0 ? "ok" : "FAIL");
}

}  // namespace
}  // namespace slb

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int seeds = 3;
  std::string mode = "both";
  long duration_ms = 0;  // 0 = per-mode default
  bool verify_replay = false;
  std::string metrics_out;
  std::string delivery = "gap-skip";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value" spellings.
    std::string inline_value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
    }
    auto value = [&]() -> std::string {
      if (!inline_value.empty()) return inline_value;
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--delivery") {
      delivery = value();
    } else if (arg == "--seed") {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seeds" || arg == "--runs") {
      seeds = std::atoi(value().c_str());
    } else if (arg == "--mode") {
      mode = value();
    } else if (arg == "--duration-ms") {
      duration_ms = std::atol(value().c_str());
    } else if (arg == "--verify-replay") {
      verify_replay = true;
    } else if (arg == "--metrics-out") {
      metrics_out = value();
    } else {
      std::fprintf(stderr,
                   "usage: chaos_soak [--seed S] [--seeds K] "
                   "[--mode sim|rt|both] [--duration-ms D] "
                   "[--verify-replay] [--metrics-out PATH] "
                   "[--delivery gap-skip|at-least-once]\n");
      return 2;
    }
  }
  const bool alo = delivery == "at-least-once" || delivery == "alo";
  if (!alo && delivery != "gap-skip") {
    std::fprintf(stderr, "chaos soak: unknown --delivery '%s'\n",
                 delivery.c_str());
    return 2;
  }

  std::printf("chaos soak: %d seed(s) from %" PRIu64 ", mode=%s, "
              "delivery=%s%s\n",
              seeds, seed, mode.c_str(),
              alo ? "at-least-once" : "gap-skip",
              verify_replay ? ", replay-verified" : "");
  for (int k = 0; k < seeds; ++k) {
    const std::uint64_t s = seed + static_cast<std::uint64_t>(k);
    if (mode == "sim" || mode == "both") {
      slb::run_sim_seed(
          s, slb::millis(duration_ms > 0 ? duration_ms : 400),
          verify_replay, metrics_out, alo);
    }
    if (mode == "rt" || mode == "both") {
      slb::run_rt_seed(
          s, slb::millis(duration_ms > 0 ? duration_ms : 1200), alo);
    }
  }
  if (slb::failures > 0) {
    std::fprintf(stderr, "chaos soak: %d invariant violation(s)\n",
                 slb::failures);
    return 1;
  }
  std::printf("chaos soak: all invariants held\n");
  return 0;
}
