#!/usr/bin/env python3
"""Render the bench harness's CSV traces as figures (matplotlib).

Usage:
    python3 tools/plot_traces.py [bench_results_dir] [output_dir]

Produces, for whichever CSVs exist:
    fig02.png          cumulative blocking time + blocking rate
    fig05.png          blocking-rate series per fixed split
    fig08_top.png      weight trajectories (3 PEs, 100x load until t/8)
    fig08_bottom.png   weight trajectories (3 PEs, equal capacity)
    fig11_top.png      fast/slow host weight trajectories
    fig12_weights.png  mean weight per load class over time (64 channels)
    fig12_heatmap.png  the clustering heatmap (channel x time, cluster id)

matplotlib is optional for the repository (nothing else depends on it);
the benches themselves print their tables without it.
"""
import csv
import os
import sys


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def columns(rows, prefix):
    n = 0
    while f"{prefix}{n}" in rows[0]:
        n += 1
    return n


def main():
    indir = sys.argv[1] if len(sys.argv) > 1 else "bench_results"
    outdir = sys.argv[2] if len(sys.argv) > 2 else indir
    os.makedirs(outdir, exist_ok=True)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        # Validation mode: no plots, but confirm every trace parses.
        print("matplotlib not available; validating CSVs only")
        for name in sorted(os.listdir(indir)):
            if not name.endswith(".csv"):
                continue
            rows = load(os.path.join(indir, name))
            cols = len(rows[0]) if rows else 0
            print(f"  {name}: {len(rows)} rows x {cols} columns")
        return

    def save(fig, name):
        path = os.path.join(outdir, name)
        fig.tight_layout()
        fig.savefig(path, dpi=130)
        print(f"wrote {path}")

    p = os.path.join(indir, "fig02.csv")
    if os.path.exists(p):
        rows = load(p)
        t = [float(r["paper_s"]) for r in rows]
        fig, (a, b) = plt.subplots(2, 1, figsize=(6, 5), sharex=True)
        a.plot(t, [float(r["cumulative_blocked_s"]) for r in rows])
        a.set_ylabel("cumulative blocked (s)")
        b.plot(t, [float(r["blocking_rate"]) for r in rows])
        b.set_ylabel("blocking rate")
        b.set_xlabel("paper seconds")
        a.set_title("Figure 2: cumulative blocking time and rate")
        save(fig, "fig02.png")

    p = os.path.join(indir, "fig05.csv")
    if os.path.exists(p):
        rows = load(p)
        fig, ax = plt.subplots(figsize=(6, 4))
        for split in sorted({r["split_w1"] for r in rows}, reverse=True):
            series = [r for r in rows if r["split_w1"] == split]
            ax.plot([float(r["paper_s"]) for r in series],
                    [float(r["blocking_rate_conn1"]) for r in series],
                    label=f"{float(split) / 10:.0f}%")
        ax.set_xlabel("paper seconds")
        ax.set_ylabel("blocking rate, connection 1")
        ax.legend(title="conn-1 share")
        ax.set_title("Figure 5: blocking rate under fixed splits")
        save(fig, "fig05.png")

    for name, title in [
        ("fig08_top", "Figure 8 top: one PE 100x loaded until t/8"),
        ("fig08_bottom", "Figure 8 bottom: equal capacity"),
        ("fig11_top", "Figure 11 top: fast vs slow host"),
    ]:
        p = os.path.join(indir, f"{name}.csv")
        if not os.path.exists(p):
            continue
        rows = load(p)
        n = columns(rows, "w")
        t = [float(r["paper_s"]) for r in rows]
        fig, ax = plt.subplots(figsize=(7, 4))
        for j in range(n):
            ax.plot(t, [float(r[f"w{j}"]) for r in rows],
                    label=f"connection {j}")
        ax.set_xlabel("paper seconds")
        ax.set_ylabel("allocation weight (0.1% units)")
        ax.legend()
        ax.set_title(title)
        save(fig, f"{name}.png")

    p = os.path.join(indir, "fig12.csv")
    if os.path.exists(p):
        rows = load(p)
        n = columns(rows, "w")
        t = [float(r["paper_s"]) for r in rows]

        def class_of(j):
            return 0 if j < 20 else (1 if j < 40 else 2)

        fig, ax = plt.subplots(figsize=(7, 4))
        labels = ["100x (20 ch)", "5x (20 ch)", "unloaded (24 ch)"]
        sizes = [20, 20, 24]
        for cls in range(3):
            mean = [
                sum(float(r[f"w{j}"]) for j in range(n)
                    if class_of(j) == cls) / sizes[cls]
                for r in rows
            ]
            ax.plot(t, mean, label=labels[cls])
        ax.set_xlabel("paper seconds")
        ax.set_ylabel("mean weight per channel (0.1% units)")
        ax.legend()
        ax.set_title("Figure 12: mean allocation weight per load class")
        save(fig, "fig12_weights.png")

        if f"cluster0" in rows[0]:
            grid = [[float(r[f"cluster{j}"]) for j in range(n)]
                    for r in rows]
            fig, ax = plt.subplots(figsize=(7, 5))
            ax.imshow(grid, aspect="auto", interpolation="nearest",
                      cmap="tab20")
            ax.set_xlabel("channel")
            ax.set_ylabel("time (periods, t=0 at top)")
            ax.set_title("Figure 12: clustering heatmap")
            save(fig, "fig12_heatmap.png")


if __name__ == "__main__":
    main()
